//! Slotted-page record layout for heap pages.
//!
//! Layout within one [`PAGE_SIZE`] buffer:
//!
//! ```text
//! 0..2   number of slots (u16 LE)
//! 2..4   free-space offset: first unused byte after the record area
//! 4..    record bytes, growing upward
//! ...    free space
//! end    slot directory, growing downward: 4 bytes per slot
//!        (record offset u16 LE, record length u16 LE)
//! ```
//!
//! Records are never moved; a deleted slot is tombstoned by setting its
//! length to [`DEAD`]. This matches the classic textbook layout and
//! keeps record ids ([`cdpd_types::Rid`]) stable for the lifetime of the
//! page — a property the B+-tree relies on, since it stores rids.

use crate::pager::PAGE_SIZE;

const HEADER: usize = 4;
const SLOT_BYTES: usize = 4;
/// Tombstone length marking a deleted slot.
pub const DEAD: u16 = u16::MAX;

fn read_u16(buf: &[u8; PAGE_SIZE], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

fn write_u16(buf: &mut [u8; PAGE_SIZE], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Number of slots on the page (including tombstones).
pub fn slot_count(buf: &[u8; PAGE_SIZE]) -> u16 {
    read_u16(buf, 0)
}

fn free_offset(buf: &[u8; PAGE_SIZE]) -> u16 {
    let off = read_u16(buf, 2);
    // A zeroed page has free_offset 0; treat it as freshly formatted.
    off.max(HEADER as u16)
}

/// Bytes of free space remaining (accounting for the slot directory
/// entry a new record would need).
pub fn free_space(buf: &[u8; PAGE_SIZE]) -> usize {
    let dir_start = PAGE_SIZE - slot_count(buf) as usize * SLOT_BYTES;
    dir_start.saturating_sub(free_offset(buf) as usize)
}

/// True if a record of `len` bytes fits.
pub fn fits(buf: &[u8; PAGE_SIZE], len: usize) -> bool {
    free_space(buf) >= len + SLOT_BYTES
}

/// Insert a record, returning its slot number, or `None` if it does not
/// fit. Records of length ≥ [`DEAD`] are rejected (`None`) since that
/// length is the tombstone sentinel.
pub fn insert(buf: &mut [u8; PAGE_SIZE], record: &[u8]) -> Option<u16> {
    if record.len() >= DEAD as usize || !fits(buf, record.len()) {
        return None;
    }
    let slot = slot_count(buf);
    let off = free_offset(buf);
    buf[off as usize..off as usize + record.len()].copy_from_slice(record);
    let dir = PAGE_SIZE - (slot as usize + 1) * SLOT_BYTES;
    write_u16(buf, dir, off);
    write_u16(buf, dir + 2, record.len() as u16);
    write_u16(buf, 0, slot + 1);
    write_u16(buf, 2, off + record.len() as u16);
    Some(slot)
}

/// The record in `slot`, or `None` if the slot is out of range or dead.
pub fn get(buf: &[u8; PAGE_SIZE], slot: u16) -> Option<&[u8]> {
    if slot >= slot_count(buf) {
        return None;
    }
    let dir = PAGE_SIZE - (slot as usize + 1) * SLOT_BYTES;
    let off = read_u16(buf, dir) as usize;
    let len = read_u16(buf, dir + 2);
    if len == DEAD {
        return None;
    }
    Some(&buf[off..off + len as usize])
}

/// Overwrite a live slot's record in place. Succeeds only when the new
/// record is no longer than the old one (records never move); returns
/// false otherwise (caller should delete + reinsert). The slot keeps
/// its offset; its length shrinks to the new record's.
pub fn update(buf: &mut [u8; PAGE_SIZE], slot: u16, record: &[u8]) -> bool {
    if slot >= slot_count(buf) || record.len() >= DEAD as usize {
        return false;
    }
    let dir = PAGE_SIZE - (slot as usize + 1) * SLOT_BYTES;
    let off = read_u16(buf, dir) as usize;
    let len = read_u16(buf, dir + 2);
    if len == DEAD || record.len() > len as usize {
        return false;
    }
    buf[off..off + record.len()].copy_from_slice(record);
    write_u16(buf, dir + 2, record.len() as u16);
    true
}

/// Tombstone a slot. Returns true if the slot existed and was live.
/// The record bytes are not reclaimed (no compaction), matching the
/// "delete is cheap, space returns at reorganization" model the cost
/// model assumes for DROP-less heaps.
pub fn delete(buf: &mut [u8; PAGE_SIZE], slot: u16) -> bool {
    if slot >= slot_count(buf) {
        return false;
    }
    let dir = PAGE_SIZE - (slot as usize + 1) * SLOT_BYTES;
    if read_u16(buf, dir + 2) == DEAD {
        return false;
    }
    write_u16(buf, dir + 2, DEAD);
    true
}

/// Iterate live records as `(slot, bytes)`.
pub fn iter(buf: &[u8; PAGE_SIZE]) -> impl Iterator<Item = (u16, &[u8])> {
    (0..slot_count(buf)).filter_map(move |s| get(buf, s).map(|r| (s, r)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> [u8; PAGE_SIZE] {
        [0u8; PAGE_SIZE]
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut p = page();
        let s0 = insert(&mut p, b"hello").unwrap();
        let s1 = insert(&mut p, b"world!").unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(get(&p, 0), Some(&b"hello"[..]));
        assert_eq!(get(&p, 1), Some(&b"world!"[..]));
        assert_eq!(get(&p, 2), None);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = page();
        let rec = [7u8; 100];
        let mut n = 0;
        while insert(&mut p, &rec).is_some() {
            n += 1;
        }
        // 104 bytes per record (100 + 4 slot) into 8188 usable.
        assert_eq!(n, (PAGE_SIZE - HEADER) / 104);
        assert!(!fits(&p, 100));
        // A smaller record may still fit.
        assert!(free_space(&p) < 104);
    }

    #[test]
    fn delete_tombstones() {
        let mut p = page();
        insert(&mut p, b"a").unwrap();
        insert(&mut p, b"b").unwrap();
        assert!(delete(&mut p, 0));
        assert!(!delete(&mut p, 0), "double delete is a no-op");
        assert!(!delete(&mut p, 9), "out of range");
        assert_eq!(get(&p, 0), None);
        let live: Vec<_> = iter(&p).collect();
        assert_eq!(live, vec![(1u16, &b"b"[..])]);
    }

    #[test]
    fn update_in_place() {
        let mut p = page();
        insert(&mut p, b"hello world").unwrap();
        insert(&mut p, b"second").unwrap();
        assert!(update(&mut p, 0, b"HELLO"));
        assert_eq!(get(&p, 0), Some(&b"HELLO"[..]));
        assert_eq!(get(&p, 1), Some(&b"second"[..]), "neighbour untouched");
        // Larger record cannot go in place.
        assert!(!update(&mut p, 0, b"this is far too long"));
        // Dead or missing slots cannot be updated.
        delete(&mut p, 0);
        assert!(!update(&mut p, 0, b"x"));
        assert!(!update(&mut p, 9, b"x"));
    }

    #[test]
    fn zeroed_page_is_empty() {
        let p = page();
        assert_eq!(slot_count(&p), 0);
        assert_eq!(iter(&p).count(), 0);
        assert_eq!(free_space(&p), PAGE_SIZE - HEADER);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = page();
        assert!(insert(&mut p, &vec![0u8; PAGE_SIZE]).is_none());
    }
}

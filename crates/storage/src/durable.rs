//! File-backed pager state: the checksummed data file, the ping-pong
//! header pair, and the recovered-state plumbing shared by
//! [`crate::Pager::open_durable`], commit, and checkpoint.
//!
//! A durable pager owns four files inside one [`crate::Vfs`] namespace:
//!
//! * `data` — page slot `i` at byte offset `i * PAGE_SIZE`, page-aligned;
//! * `sums` — 16 bytes per page: `crc64` of the page image plus a
//!   written flag, kept out of `data` so page I/O stays aligned and a
//!   never-written slot is distinguishable from a zero page;
//! * `wal` — the write-ahead log ([`crate::wal`]);
//! * `hdr.0` / `hdr.1` — ping-pong checkpoint headers. Checkpoints
//!   alternate slots, so a torn header write always leaves the previous
//!   checkpoint's header intact; recovery adopts the valid header with
//!   the highest sequence number and replays the WAL on top of it.
//!
//! Crash-ordering invariants (enforced by the pager, verified by the
//! kill-at-any-point suite):
//!
//! 1. a page reaches `data` only after the commit that produced it is
//!    in the WAL (write-ahead rule) — so every potentially torn `data`
//!    or `sums` write is shadowed by a WAL page image at recovery;
//! 2. the WAL is truncated only after the new header is fsynced — so a
//!    crash anywhere inside a checkpoint recovers from either the old
//!    header plus the full WAL or the new header plus a WAL whose stale
//!    transactions are skipped by sequence number.

use crate::crc::{crc64, crc64_begin, crc64_finish, crc64_update};
use crate::pager::{Page, PAGER_SHARDS, PAGE_SIZE};
use crate::vfs::{Vfs, VfsFile};
use crate::wal::WalWriter;
use cdpd_types::{Error, PageId, Result};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

pub(crate) const FILE_DATA: &str = "data";
pub(crate) const FILE_SUMS: &str = "sums";
pub(crate) const FILE_WAL: &str = "wal";
pub(crate) const FILE_HDR: [&str; 2] = ["hdr.0", "hdr.1"];

const HDR_MAGIC: &[u8; 8] = b"CDPDHDR1";
const SUM_ENTRY: u64 = 16;
const SUM_WRITTEN: u64 = 1;

/// Tuning knobs for a durable pager.
#[derive(Clone, Debug)]
pub struct DurableOptions {
    /// Target resident pages in the pager's cache; clean pages past the
    /// budget are evicted clock-LRU per stripe, dirty pages are pinned
    /// until the next checkpoint. `0` means unbounded (everything stays
    /// resident, like the in-memory pager).
    pub cache_pages: usize,
    /// Group-commit factor: fsync the WAL every `n`-th commit. `1`
    /// fsyncs every commit (the recovery suite's setting — every
    /// acknowledged commit is durable).
    pub group_commit: usize,
    /// Auto-checkpoint once the WAL grows past this many bytes; `0`
    /// disables auto-checkpointing (callers checkpoint explicitly).
    pub checkpoint_wal_bytes: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            cache_pages: 0,
            group_commit: 1,
            checkpoint_wal_bytes: 16 * 1024 * 1024,
        }
    }
}

/// Cumulative durable-tier counters, readable at any time (the
/// physical ledger — logical I/O stays in [`crate::IoStats`]).
///
/// Each field mirrors a `cdpd-obs` tracked counter incremented at the
/// same call site (`storage.wal.appends` / `.commits` / `.fsyncs`,
/// `storage.writeback.pages`, `storage.checkpoint.completed`,
/// `storage.backend.fetches`), so per-pager deltas reconcile exactly
/// with the registry — property-tested in `tests/obs_ledger.rs`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DurableStats {
    /// WAL page frames appended.
    pub wal_appends: u64,
    /// WAL commit frames appended.
    pub wal_commits: u64,
    /// WAL fsyncs issued (group commit batches these).
    pub wal_fsyncs: u64,
    /// Pages written back to the data file by checkpoints.
    pub writeback_pages: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Physical page fetches from the data file (cache misses).
    pub backend_fetches: u64,
}

impl DurableStats {
    /// Counter increase from `earlier` to `self`.
    pub fn delta(self, earlier: DurableStats) -> DurableStats {
        DurableStats {
            wal_appends: self.wal_appends - earlier.wal_appends,
            wal_commits: self.wal_commits - earlier.wal_commits,
            wal_fsyncs: self.wal_fsyncs - earlier.wal_fsyncs,
            writeback_pages: self.writeback_pages - earlier.writeback_pages,
            checkpoints: self.checkpoints - earlier.checkpoints,
            backend_fetches: self.backend_fetches - earlier.backend_fetches,
        }
    }
}

/// The committed allocation state carried by commit frames and headers.
#[derive(Clone, Default)]
pub(crate) struct CommittedMeta {
    pub(crate) next: u32,
    pub(crate) free: Vec<Vec<PageId>>,
    pub(crate) app_meta: Vec<u8>,
}

pub(crate) fn encode_meta(meta: &CommittedMeta) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&meta.next.to_le_bytes());
    out.extend_from_slice(&(meta.free.len() as u32).to_le_bytes());
    for list in &meta.free {
        out.extend_from_slice(&(list.len() as u32).to_le_bytes());
        for id in list {
            out.extend_from_slice(&id.raw().to_le_bytes());
        }
    }
    out.extend_from_slice(&(meta.app_meta.len() as u64).to_le_bytes());
    out.extend_from_slice(&meta.app_meta);
    out
}

pub(crate) fn decode_meta(bytes: &[u8]) -> Result<CommittedMeta> {
    let corrupt = || Error::Corrupt("short pager commit metadata".into());
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Result<&[u8]> {
        let s = bytes.get(*off..*off + n).ok_or_else(corrupt)?;
        *off += n;
        Ok(s)
    };
    let next = u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("4 bytes"));
    let lists = u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("4 bytes")) as usize;
    if lists != PAGER_SHARDS {
        return Err(Error::Corrupt(format!(
            "pager metadata has {lists} free lists, expected {PAGER_SHARDS}"
        )));
    }
    let mut free = Vec::with_capacity(lists);
    for _ in 0..lists {
        let n = u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("4 bytes")) as usize;
        let mut list = Vec::with_capacity(n);
        for _ in 0..n {
            list.push(PageId(u32::from_le_bytes(
                take(&mut off, 4)?.try_into().expect("4 bytes"),
            )));
        }
        free.push(list);
    }
    let app_len = u64::from_le_bytes(take(&mut off, 8)?.try_into().expect("8 bytes")) as usize;
    let app_meta = take(&mut off, app_len)?.to_vec();
    if off != bytes.len() {
        return Err(Error::Corrupt("trailing bytes in pager metadata".into()));
    }
    Ok(CommittedMeta {
        next,
        free,
        app_meta,
    })
}

/// A parsed checkpoint header.
pub(crate) struct Header {
    pub(crate) ckpt_no: u64,
    pub(crate) seq: u64,
    pub(crate) meta: CommittedMeta,
}

pub(crate) fn encode_header(ckpt_no: u64, seq: u64, meta: &CommittedMeta) -> Vec<u8> {
    let body = encode_meta(meta);
    let mut out = Vec::with_capacity(8 + 8 + 8 + 4 + body.len() + 8);
    out.extend_from_slice(HDR_MAGIC);
    out.extend_from_slice(&ckpt_no.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    let crc = crc64_finish(crc64_update(crc64_begin(), &out));
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parse one header file; `None` if missing, torn, or corrupt (the
/// caller falls back to the other slot).
pub(crate) fn read_header(file: &dyn VfsFile) -> Option<Header> {
    let mut fixed = [0u8; 28];
    if file.read_at(0, &mut fixed).ok()? < fixed.len() || &fixed[..8] != HDR_MAGIC {
        return None;
    }
    let body_len = u32::from_le_bytes(fixed[24..28].try_into().expect("4 bytes")) as usize;
    let total = 28 + body_len + 8;
    let mut bytes = vec![0u8; total];
    if file.read_at(0, &mut bytes).ok()? < total {
        return None;
    }
    let (body, crc_bytes) = bytes.split_at(total - 8);
    let crc = u64::from_le_bytes(crc_bytes.try_into().expect("8 bytes"));
    if crc64_finish(crc64_update(crc64_begin(), body)) != crc {
        return None;
    }
    let ckpt_no = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
    let seq = u64::from_le_bytes(body[16..24].try_into().expect("8 bytes"));
    let meta = decode_meta(&body[28..]).ok()?;
    Some(Header { ckpt_no, seq, meta })
}

/// The durable half of a pager: file handles, WAL writer, and the
/// physical-I/O ledger.
pub(crate) struct Durable {
    pub(crate) data: Box<dyn VfsFile>,
    pub(crate) sums: Box<dyn VfsFile>,
    pub(crate) hdr: [Box<dyn VfsFile>; 2],
    pub(crate) wal: Mutex<WalWriter>,
    pub(crate) opts: DurableOptions,
    /// Sequence number of the last committed transaction.
    pub(crate) seq: AtomicU64,
    /// Checkpoints taken over the pager's life (drives header ping-pong).
    pub(crate) ckpt_no: AtomicU64,
    /// Snapshot of the last committed state (what a checkpoint headers).
    pub(crate) committed: Mutex<CommittedMeta>,
    /// Serializes whole commits: dirty-page collection, sequence-number
    /// assignment, WAL append, and committed-meta publication must be
    /// one atomic unit even when several sessions commit concurrently
    /// (the engine orders mutation vs. commit with its own phase lock;
    /// this mutex makes `Pager::commit` itself safe regardless).
    pub(crate) commit_serial: Mutex<()>,
    pub(crate) wal_appends: AtomicU64,
    pub(crate) wal_commits: AtomicU64,
    pub(crate) wal_fsyncs: AtomicU64,
    pub(crate) writeback_pages: AtomicU64,
    pub(crate) checkpoints: AtomicU64,
    pub(crate) backend_fetches: AtomicU64,
}

impl Durable {
    /// Per-stripe resident-page budget implied by the cache option.
    pub(crate) fn stripe_capacity(&self) -> usize {
        if self.opts.cache_pages == 0 {
            usize::MAX
        } else {
            self.opts.cache_pages.div_ceil(PAGER_SHARDS).max(1)
        }
    }

    /// Physically fetch page `id` from the data file, verifying its
    /// checksum; a slot never written back reads as a blank page.
    pub(crate) fn fetch(&self, id: PageId) -> Result<Page> {
        let mut sum = [0u8; SUM_ENTRY as usize];
        let n = self.sums.read_at(id.raw() as u64 * SUM_ENTRY, &mut sum)?;
        if n < sum.len() {
            // Slot beyond the sums file: allocated but never checkpointed.
            return Ok(Arc::new([0u8; PAGE_SIZE]));
        }
        let crc = u64::from_le_bytes(sum[..8].try_into().expect("8 bytes"));
        let flags = u64::from_le_bytes(sum[8..].try_into().expect("8 bytes"));
        if flags & SUM_WRITTEN == 0 {
            return Ok(Arc::new([0u8; PAGE_SIZE]));
        }
        let mut page = [0u8; PAGE_SIZE];
        let n = self
            .data
            .read_at(id.raw() as u64 * PAGE_SIZE as u64, &mut page)?;
        if n < PAGE_SIZE {
            return Err(Error::Corrupt(format!(
                "page {id} truncated in data file ({n} of {PAGE_SIZE} bytes)"
            )));
        }
        if crc64(&page) != crc {
            return Err(Error::Corrupt(format!("page {id} checksum mismatch")));
        }
        Ok(Arc::new(page))
    }

    /// Write one page image (and its checksum entry) back to the data
    /// file. Not fsynced — the checkpoint fsyncs both files once after
    /// the whole writeback pass.
    pub(crate) fn write_back(&self, id: PageId, page: &Page) -> Result<()> {
        self.data
            .write_at(id.raw() as u64 * PAGE_SIZE as u64, &page[..])?;
        let mut sum = [0u8; SUM_ENTRY as usize];
        sum[..8].copy_from_slice(&crc64(&page[..]).to_le_bytes());
        sum[8..].copy_from_slice(&SUM_WRITTEN.to_le_bytes());
        self.sums.write_at(id.raw() as u64 * SUM_ENTRY, &sum)?;
        Ok(())
    }
}

/// Outcome of opening a durable pager: the recovered pager plus the
/// application metadata blob of the last committed transaction.
pub struct DurableOpen {
    /// The recovered pager.
    pub pager: crate::Pager,
    /// Application metadata from the newest committed transaction (the
    /// engine's serialized catalog), empty for a fresh database.
    pub app_meta: Vec<u8>,
    /// Sequence number of the newest committed transaction (0 for a
    /// fresh database).
    pub committed_seq: u64,
}

/// Decide how to start from what the VFS holds: a valid header (normal
/// recovery), nothing at all (fresh database), or corruption.
pub(crate) fn recover_base(vfs: &dyn Vfs) -> Result<Option<Header>> {
    let mut best: Option<Header> = None;
    for name in FILE_HDR {
        if !vfs.exists(name) {
            continue;
        }
        if let Some(h) = read_header(&*vfs.open(name)?) {
            if best
                .as_ref()
                .is_none_or(|b| (h.seq, h.ckpt_no) >= (b.seq, b.ckpt_no))
            {
                best = Some(h);
            }
        }
    }
    if best.is_some() {
        return Ok(best);
    }
    // No valid header. If any durable evidence of a real database
    // exists — a non-empty data file, or a committed WAL transaction —
    // refuse to silently reinitialize; only a blank namespace (or one
    // whose very first header write was torn before anything committed,
    // which leaves the other files present but empty) is treated as
    // fresh.
    if vfs.exists(FILE_DATA) && vfs.open(FILE_DATA)?.len()? > 0 {
        return Err(Error::Corrupt(
            "no valid pager header but a data file exists".into(),
        ));
    }
    if vfs.exists(FILE_WAL) {
        let (txns, _) = crate::wal::scan(&*vfs.open(FILE_WAL)?)?;
        if !txns.is_empty() {
            return Err(Error::Corrupt(
                "no valid pager header but the WAL holds committed transactions".into(),
            ));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    #[test]
    fn meta_roundtrip() {
        let meta = CommittedMeta {
            next: 42,
            free: (0..PAGER_SHARDS)
                .map(|s| (0..s).map(|i| PageId((s * 16 + i) as u32)).collect())
                .collect(),
            app_meta: b"catalog bytes".to_vec(),
        };
        let decoded = decode_meta(&encode_meta(&meta)).unwrap();
        assert_eq!(decoded.next, 42);
        assert_eq!(decoded.free.len(), PAGER_SHARDS);
        assert_eq!(decoded.free[3].len(), 3);
        assert_eq!(decoded.app_meta, b"catalog bytes");
    }

    #[test]
    fn meta_rejects_garbage() {
        assert!(decode_meta(b"").is_err());
        assert!(decode_meta(&[0u8; 6]).is_err());
        let meta = CommittedMeta {
            next: 1,
            free: vec![Vec::new(); PAGER_SHARDS],
            app_meta: Vec::new(),
        };
        let mut bytes = encode_meta(&meta);
        bytes.push(0); // trailing byte
        assert!(decode_meta(&bytes).is_err());
    }

    #[test]
    fn header_roundtrip_and_corruption() {
        let vfs = MemVfs::new();
        let meta = CommittedMeta {
            next: 7,
            free: vec![Vec::new(); PAGER_SHARDS],
            app_meta: b"app".to_vec(),
        };
        let bytes = encode_header(3, 19, &meta);
        vfs.open("hdr.0").unwrap().write_at(0, &bytes).unwrap();
        let h = read_header(&*vfs.open("hdr.0").unwrap()).unwrap();
        assert_eq!(h.ckpt_no, 3);
        assert_eq!(h.seq, 19);
        assert_eq!(h.meta.next, 7);
        assert_eq!(h.meta.app_meta, b"app");

        // A single flipped byte anywhere invalidates the header.
        for pos in [0usize, 9, 20, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 1;
            vfs.overwrite("hdr.0", bad);
            assert!(read_header(&*vfs.open("hdr.0").unwrap()).is_none());
        }
        // Torn (short) header.
        vfs.overwrite("hdr.0", bytes[..bytes.len() / 2].to_vec());
        assert!(read_header(&*vfs.open("hdr.0").unwrap()).is_none());
    }
}

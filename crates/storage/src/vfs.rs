//! Virtual file system: the seam between the durable pager and the
//! bytes it persists.
//!
//! The durable tier ([`crate::Pager::open_durable`]) talks to storage
//! exclusively through [`Vfs`]/[`VfsFile`], so the same WAL, checkpoint,
//! and recovery code runs against three backends:
//!
//! * [`DiskVfs`] — real files in a directory (production);
//! * [`MemVfs`] — named in-memory byte buffers shared between opens,
//!   so tests can "crash" a database (drop it) and reopen the surviving
//!   bytes without touching the real file system;
//! * `FaultyVfs` (in `cdpd-testkit`) — a wrapper that injects a
//!   process-kill at the N-th mutating operation, optionally tearing
//!   the final write, which is what drives the crash-recovery property
//!   suite.
//!
//! All offsets are absolute; files grow implicitly on writes past the
//! end (zero-filled gaps), like POSIX files.

use cdpd_types::{Error, Result};
use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// One open file: positioned reads/writes plus durability control.
///
/// Handles are internally synchronized (`&self` everywhere) so a pager
/// can read pages back while its WAL handle appends.
#[allow(clippy::len_without_is_empty)] // fallible len; an is_empty would hide the error
pub trait VfsFile: Send + Sync {
    /// Read up to `buf.len()` bytes at `off`, returning the count
    /// actually read (short at end-of-file, 0 past it).
    fn read_at(&self, off: u64, buf: &mut [u8]) -> Result<usize>;
    /// Write all of `data` at `off`, extending the file (zero-filling
    /// any gap) when it ends past the current length.
    fn write_at(&self, off: u64, data: &[u8]) -> Result<()>;
    /// Force written bytes to stable storage (fsync).
    fn sync(&self) -> Result<()>;
    /// Current length in bytes.
    fn len(&self) -> Result<u64>;
    /// Truncate (or zero-extend) to exactly `len` bytes.
    fn truncate(&self, len: u64) -> Result<()>;
}

/// A namespace of files the durable pager stores its state in.
pub trait Vfs: Send + Sync {
    /// Open `name`, creating it empty if it does not exist.
    fn open(&self, name: &str) -> Result<Box<dyn VfsFile>>;
    /// Whether `name` currently exists.
    fn exists(&self, name: &str) -> bool;
    /// Remove `name`. Removing a missing file is not an error.
    fn delete(&self, name: &str) -> Result<()>;
}

// ---------------------------------------------------------------------------
// Disk

/// [`Vfs`] over a real directory: file `name` lives at `root/name`.
pub struct DiskVfs {
    root: PathBuf,
}

impl DiskVfs {
    /// Open (creating if needed) the directory `root` as a VFS root.
    pub fn new(root: impl Into<PathBuf>) -> Result<DiskVfs> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DiskVfs { root })
    }

    /// The directory backing this VFS.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path_of(&self, name: &str) -> Result<PathBuf> {
        if name.is_empty() || name.contains('/') || name.contains('\\') || name.contains("..") {
            return Err(Error::InvalidArgument(format!(
                "bad vfs file name {name:?}"
            )));
        }
        Ok(self.root.join(name))
    }
}

impl Vfs for DiskVfs {
    fn open(&self, name: &str) -> Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.path_of(name)?)?;
        Ok(Box::new(DiskFile {
            file: Mutex::new(file),
        }))
    }

    fn exists(&self, name: &str) -> bool {
        self.path_of(name).map(|p| p.exists()).unwrap_or(false)
    }

    fn delete(&self, name: &str) -> Result<()> {
        match std::fs::remove_file(self.path_of(name)?) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

struct DiskFile {
    // Seek-based positioning keeps this portable; the lock serializes
    // handle use, which is fine for a single-writer pager whose reads
    // go through the page cache.
    file: Mutex<std::fs::File>,
}

impl VfsFile for DiskFile {
    fn read_at(&self, off: u64, buf: &mut [u8]) -> Result<usize> {
        let mut file = self.file.lock().expect("vfs lock poisoned");
        file.seek(SeekFrom::Start(off))?;
        let mut total = 0;
        while total < buf.len() {
            match file.read(&mut buf[total..]) {
                Ok(0) => break,
                Ok(n) => total += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(total)
    }

    fn write_at(&self, off: u64, data: &[u8]) -> Result<()> {
        let mut file = self.file.lock().expect("vfs lock poisoned");
        file.seek(SeekFrom::Start(off))?;
        file.write_all(data)?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.lock().expect("vfs lock poisoned").sync_all()?;
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self
            .file
            .lock()
            .expect("vfs lock poisoned")
            .metadata()?
            .len())
    }

    fn truncate(&self, len: u64) -> Result<()> {
        self.file.lock().expect("vfs lock poisoned").set_len(len)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Memory

type MemStore = Arc<Mutex<HashMap<String, Arc<Mutex<Vec<u8>>>>>>;

/// In-memory [`Vfs`]: named byte buffers shared between clones.
///
/// Cloning a `MemVfs` clones a *handle* to the same store, so a test
/// can open a durable pager on one clone, drop the pager (the
/// process-model "crash"), and reopen from another clone — exactly the
/// bytes that were written survive. [`MemVfs::snapshot`] and
/// [`MemVfs::overwrite`] give corruption tests direct access to a
/// file's raw content.
#[derive(Clone, Default)]
pub struct MemVfs {
    files: MemStore,
}

impl MemVfs {
    /// An empty in-memory namespace.
    pub fn new() -> MemVfs {
        MemVfs::default()
    }

    /// Copy of `name`'s current bytes, if it exists.
    pub fn snapshot(&self, name: &str) -> Option<Vec<u8>> {
        self.files
            .lock()
            .expect("vfs lock poisoned")
            .get(name)
            .map(|f| f.lock().expect("vfs lock poisoned").clone())
    }

    /// Replace `name`'s bytes wholesale (creating it if missing) — the
    /// corruption-injection hook used by negative recovery tests.
    pub fn overwrite(&self, name: &str, bytes: Vec<u8>) {
        let file = Arc::clone(
            self.files
                .lock()
                .expect("vfs lock poisoned")
                .entry(name.to_owned())
                .or_default(),
        );
        *file.lock().expect("vfs lock poisoned") = bytes;
    }
}

impl Vfs for MemVfs {
    fn open(&self, name: &str) -> Result<Box<dyn VfsFile>> {
        let file = Arc::clone(
            self.files
                .lock()
                .expect("vfs lock poisoned")
                .entry(name.to_owned())
                .or_default(),
        );
        Ok(Box::new(MemFile { bytes: file }))
    }

    fn exists(&self, name: &str) -> bool {
        self.files
            .lock()
            .expect("vfs lock poisoned")
            .contains_key(name)
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.files.lock().expect("vfs lock poisoned").remove(name);
        Ok(())
    }
}

struct MemFile {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl VfsFile for MemFile {
    fn read_at(&self, off: u64, buf: &mut [u8]) -> Result<usize> {
        let bytes = self.bytes.lock().expect("vfs lock poisoned");
        let off = off as usize;
        if off >= bytes.len() {
            return Ok(0);
        }
        let n = buf.len().min(bytes.len() - off);
        buf[..n].copy_from_slice(&bytes[off..off + n]);
        Ok(n)
    }

    fn write_at(&self, off: u64, data: &[u8]) -> Result<()> {
        let mut bytes = self.bytes.lock().expect("vfs lock poisoned");
        let off = off as usize;
        let end = off + data.len();
        if bytes.len() < end {
            bytes.resize(end, 0);
        }
        bytes[off..end].copy_from_slice(data);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.bytes.lock().expect("vfs lock poisoned").len() as u64)
    }

    fn truncate(&self, len: u64) -> Result<()> {
        self.bytes
            .lock()
            .expect("vfs lock poisoned")
            .resize(len as usize, 0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(vfs: &dyn Vfs) {
        let f = vfs.open("a").unwrap();
        assert_eq!(f.len().unwrap(), 0);
        f.write_at(0, b"hello").unwrap();
        f.write_at(8, b"world").unwrap(); // gap is zero-filled
        assert_eq!(f.len().unwrap(), 13);
        let mut buf = [0u8; 13];
        assert_eq!(f.read_at(0, &mut buf).unwrap(), 13);
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(&buf[5..8], &[0, 0, 0]);
        assert_eq!(&buf[8..], b"world");
        // Short read at the tail, empty read past the end.
        let mut buf = [0u8; 8];
        assert_eq!(f.read_at(10, &mut buf).unwrap(), 3);
        assert_eq!(f.read_at(100, &mut buf).unwrap(), 0);
        f.truncate(5).unwrap();
        assert_eq!(f.len().unwrap(), 5);
        f.sync().unwrap();
        assert!(vfs.exists("a"));
        assert!(!vfs.exists("b"));
        vfs.delete("a").unwrap();
        vfs.delete("never-existed").unwrap();
    }

    #[test]
    fn mem_semantics() {
        exercise(&MemVfs::new());
    }

    #[test]
    fn disk_semantics() {
        let dir = std::env::temp_dir().join(format!("cdpd-vfs-test-{}", std::process::id()));
        let vfs = DiskVfs::new(&dir).unwrap();
        exercise(&vfs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_clones_share_bytes() {
        let a = MemVfs::new();
        let b = a.clone();
        a.open("x").unwrap().write_at(0, b"persisted").unwrap();
        let f = b.open("x").unwrap();
        let mut buf = [0u8; 9];
        assert_eq!(f.read_at(0, &mut buf).unwrap(), 9);
        assert_eq!(&buf, b"persisted");
        assert_eq!(b.snapshot("x").unwrap(), b"persisted");
        b.overwrite("x", vec![1, 2, 3]);
        assert_eq!(a.snapshot("x").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn disk_rejects_escaping_names() {
        let dir = std::env::temp_dir().join(format!("cdpd-vfs-esc-{}", std::process::id()));
        let vfs = DiskVfs::new(&dir).unwrap();
        assert!(vfs.open("../evil").is_err());
        assert!(vfs.open("a/b").is_err());
        assert!(vfs.open("").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

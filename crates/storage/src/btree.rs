use crate::codec::{decode_rid, encode_key, encode_rid, RID_LEN};
use crate::pager::{Page, Pager, PAGE_SIZE};
use cdpd_types::{Error, PageId, Result, Rid, Value};
use std::sync::Arc;

/// A paged B+-tree index over memcomparable keys.
///
/// Entry keys are `encode_key(values) ++ encode_rid(rid)`: appending the
/// record id makes every stored key unique, so duplicate *values* never
/// straddle a node boundary ambiguously and a prefix seek (e.g. probing
/// a composite index `I(a,b)` with just `a = 7`) lands on the first
/// matching entry with no duplicate-handling special cases.
///
/// Like the heap, every read operation takes `&self` over the
/// lock-striped pager — concurrent seeks and scans on one tree never
/// block each other — while structural mutation (`insert`/`delete`)
/// requires `&mut self`.
///
/// Supported operations: point/prefix [`BTree::seek`], full leftmost
/// scans ([`BTree::scan_all`], used by index-only plans), incremental
/// [`BTree::insert`] with node splits, [`BTree::delete`] (tombstone-free
/// removal, no rebalancing — like PostgreSQL, underfull nodes are
/// tolerated and reclaimed only by a rebuild), and sorted
/// [`BTree::bulk_load`] used by `CREATE INDEX`.
///
/// Every node access goes through the shared [`Pager`], so seeks cost
/// `height` logical reads, full leaf scans cost `leaf_count` reads, and
/// bulk loads cost one write per built page — exactly the accounting the
/// cost model predicts.
pub struct BTree {
    pager: Arc<Pager>,
    root: PageId,
    height: u32,
    pages: Vec<PageId>,
    leaf_count: u64,
    entry_count: u64,
}

const LEAF: u8 = 1;
const INTERNAL: u8 = 2;
const LEAF_HDR: usize = 7; // tag + count u16 + next u32
const INT_HDR: usize = 7; // tag + count u16 + child0 u32
/// Bulk-load fill fraction: leaves are packed to ~90% so a freshly built
/// index absorbs some inserts before splitting, like real systems.
const FILL_NUM: usize = 9;
const FILL_DEN: usize = 10;

fn rd_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

fn rd_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// A decoded node, used on mutation paths only; read paths walk page
/// bytes directly to stay allocation-free.
enum OwnedNode {
    Leaf {
        entries: Vec<Vec<u8>>,
        next: Option<PageId>,
    },
    Internal {
        keys: Vec<Vec<u8>>,
        children: Vec<PageId>,
    },
}

impl OwnedNode {
    fn decode(page: &[u8; PAGE_SIZE]) -> Result<OwnedNode> {
        match page[0] {
            LEAF => {
                let count = rd_u16(page, 1) as usize;
                let next = match rd_u32(page, 3) {
                    0 => None,
                    n => Some(PageId(n - 1)),
                };
                let mut entries = Vec::with_capacity(count);
                let mut off = LEAF_HDR;
                for _ in 0..count {
                    let klen = rd_u16(page, off) as usize;
                    off += 2;
                    entries.push(page[off..off + klen].to_vec());
                    off += klen;
                }
                Ok(OwnedNode::Leaf { entries, next })
            }
            INTERNAL => {
                let count = rd_u16(page, 1) as usize;
                let mut children = Vec::with_capacity(count + 1);
                children.push(PageId(rd_u32(page, 3)));
                let mut keys = Vec::with_capacity(count);
                let mut off = INT_HDR;
                for _ in 0..count {
                    let klen = rd_u16(page, off) as usize;
                    off += 2;
                    keys.push(page[off..off + klen].to_vec());
                    off += klen;
                    children.push(PageId(rd_u32(page, off)));
                    off += 4;
                }
                Ok(OwnedNode::Internal { keys, children })
            }
            t => Err(Error::Corrupt(format!("unknown btree node tag {t}"))),
        }
    }

    fn encode(&self) -> [u8; PAGE_SIZE] {
        let mut buf = [0u8; PAGE_SIZE];
        match self {
            OwnedNode::Leaf { entries, next } => {
                buf[0] = LEAF;
                buf[1..3].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                let next_enc = next.map_or(0, |p| p.raw() + 1);
                buf[3..7].copy_from_slice(&next_enc.to_le_bytes());
                let mut off = LEAF_HDR;
                for e in entries {
                    buf[off..off + 2].copy_from_slice(&(e.len() as u16).to_le_bytes());
                    off += 2;
                    buf[off..off + e.len()].copy_from_slice(e);
                    off += e.len();
                }
            }
            OwnedNode::Internal { keys, children } => {
                buf[0] = INTERNAL;
                buf[1..3].copy_from_slice(&(keys.len() as u16).to_le_bytes());
                buf[3..7].copy_from_slice(&children[0].raw().to_le_bytes());
                let mut off = INT_HDR;
                for (k, c) in keys.iter().zip(&children[1..]) {
                    buf[off..off + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    off += 2;
                    buf[off..off + k.len()].copy_from_slice(k);
                    off += k.len();
                    buf[off..off + 4].copy_from_slice(&c.raw().to_le_bytes());
                    off += 4;
                }
            }
        }
        buf
    }

    fn encoded_size(&self) -> usize {
        match self {
            OwnedNode::Leaf { entries, .. } => {
                LEAF_HDR + entries.iter().map(|e| 2 + e.len()).sum::<usize>()
            }
            OwnedNode::Internal { keys, .. } => {
                INT_HDR + keys.iter().map(|k| 2 + k.len() + 4).sum::<usize>()
            }
        }
    }
}

/// Full entry key: memcomparable values followed by the rid.
fn full_key(values: &[Value], rid: Rid) -> Vec<u8> {
    let mut key = encode_key(values);
    encode_rid(rid, &mut key);
    key
}

impl BTree {
    /// Create an empty tree (a single empty leaf) on `pager`.
    pub fn create(pager: Arc<Pager>) -> Result<BTree> {
        let root = pager.allocate();
        let leaf = OwnedNode::Leaf {
            entries: Vec::new(),
            next: None,
        };
        pager.write(root, Arc::new(leaf.encode()))?;
        Ok(BTree {
            pager,
            root,
            height: 1,
            pages: vec![root],
            leaf_count: 1,
            entry_count: 0,
        })
    }

    /// Build a tree from entries **sorted by `(values, rid)`**.
    ///
    /// Leaves are packed left to right at ~90% fill, then internal
    /// levels are built bottom-up; cost is one page write per built
    /// page. This is the fast path used by `CREATE INDEX` after an
    /// external sort of the heap.
    ///
    /// # Errors
    /// Returns [`Error::InvalidArgument`] if the input is not sorted or
    /// contains duplicate `(values, rid)` pairs.
    pub fn bulk_load<I>(pager: Arc<Pager>, entries: I) -> Result<BTree>
    where
        I: IntoIterator<Item = (Vec<Value>, Rid)>,
    {
        let _span = cdpd_obs::span!("btree.bulk_load");
        let budget = PAGE_SIZE * FILL_NUM / FILL_DEN;
        let mut leaves: Vec<(Vec<u8>, PageId)> = Vec::new(); // (first key, page)
        let mut cur: Vec<Vec<u8>> = Vec::new();
        let mut cur_size = LEAF_HDR;
        let mut entry_count = 0u64;
        let mut leaf_count = 0u64;
        let mut prev_key: Option<Vec<u8>> = None;

        let flush = |cur: &mut Vec<Vec<u8>>, leaves: &mut Vec<(Vec<u8>, PageId)>| -> Result<()> {
            if cur.is_empty() {
                return Ok(());
            }
            let pid = pager.allocate();
            let first = cur[0].clone();
            // Chain the previous leaf to this one.
            if let Some(&(_, prev_pid)) = leaves.last() {
                let prev = pager.read(prev_pid)?;
                let mut node = OwnedNode::decode(&prev)?;
                if let OwnedNode::Leaf { next, .. } = &mut node {
                    *next = Some(pid);
                }
                pager.write(prev_pid, Arc::new(node.encode()))?;
            }
            let node = OwnedNode::Leaf {
                entries: std::mem::take(cur),
                next: None,
            };
            pager.write(pid, Arc::new(node.encode()))?;
            leaves.push((first, pid));
            Ok(())
        };

        for (values, rid) in entries {
            let key = full_key(&values, rid);
            if let Some(prev) = &prev_key {
                if *prev >= key {
                    return Err(Error::InvalidArgument(
                        "bulk_load input must be strictly sorted by (values, rid)".into(),
                    ));
                }
            }
            prev_key = Some(key.clone());
            if cur_size + 2 + key.len() > budget && !cur.is_empty() {
                flush(&mut cur, &mut leaves)?;
                leaf_count += 1;
                cur_size = LEAF_HDR;
            }
            cur_size += 2 + key.len();
            cur.push(key);
            entry_count += 1;
        }
        flush(&mut cur, &mut leaves)?;
        if !leaves.is_empty() {
            leaf_count += 1;
        }

        if leaves.is_empty() {
            return BTree::create(pager);
        }
        let mut pages: Vec<PageId> = leaves.iter().map(|&(_, pid)| pid).collect();

        // Build internal levels bottom-up until one node remains.
        let mut height = 1u32;
        let mut level = leaves;
        while level.len() > 1 {
            let mut next_level: Vec<(Vec<u8>, PageId)> = Vec::new();
            let mut keys: Vec<Vec<u8>> = Vec::new();
            let mut children: Vec<PageId> = vec![level[0].1];
            let mut first_key = level[0].0.clone();
            let mut size = INT_HDR;
            for (sep, pid) in level.into_iter().skip(1) {
                if size + 2 + sep.len() + 4 > budget && !keys.is_empty() {
                    let node = OwnedNode::Internal {
                        keys: std::mem::take(&mut keys),
                        children: std::mem::replace(&mut children, vec![pid]),
                    };
                    let ipid = pager.allocate();
                    pager.write(ipid, Arc::new(node.encode()))?;
                    pages.push(ipid);
                    next_level.push((std::mem::replace(&mut first_key, sep), ipid));
                    size = INT_HDR;
                } else {
                    size += 2 + sep.len() + 4;
                    keys.push(sep);
                    children.push(pid);
                }
            }
            let node = OwnedNode::Internal { keys, children };
            let ipid = pager.allocate();
            pager.write(ipid, Arc::new(node.encode()))?;
            pages.push(ipid);
            next_level.push((first_key, ipid));
            level = next_level;
            height += 1;
        }

        cdpd_obs::counter!("storage.btree.bulk_loads").inc();
        cdpd_obs::counter!("storage.btree.bulk_load_pages").add(pages.len() as u64);
        Ok(BTree {
            pager,
            root: level[0].1,
            height,
            pages,
            leaf_count,
            entry_count,
        })
    }

    /// Insert `(values, rid)`. Cost: `height` reads to descend plus one
    /// read-modify-write per touched node (more when nodes split).
    ///
    /// # Errors
    /// Returns [`Error::AlreadyExists`] if the exact `(values, rid)`
    /// pair is already present.
    pub fn insert(&mut self, values: &[Value], rid: Rid) -> Result<()> {
        let key = full_key(values, rid);
        if 2 + key.len() + LEAF_HDR > PAGE_SIZE {
            return Err(Error::TooLarge(format!("index key of {} bytes", key.len())));
        }
        // Descend, remembering the path of (page, child index taken).
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let mut pid = self.root;
        loop {
            let page = self.pager.read(pid)?;
            match page[0] {
                LEAF => break,
                INTERNAL => {
                    let idx = Self::descend_index(&page, &key);
                    path.push((pid, idx));
                    pid = Self::child_at(&page, idx);
                }
                t => return Err(Error::Corrupt(format!("unknown btree node tag {t}"))),
            }
        }

        // Insert into the leaf.
        let page = self.pager.read(pid)?;
        let mut node = OwnedNode::decode(&page)?;
        let OwnedNode::Leaf { entries, next: _ } = &mut node else {
            return Err(Error::Corrupt("descent did not reach a leaf".into()));
        };
        let pos = entries.partition_point(|e| e.as_slice() < key.as_slice());
        if entries.get(pos).is_some_and(|e| *e == key) {
            return Err(Error::AlreadyExists("duplicate (key, rid) in index".into()));
        }
        entries.insert(pos, key);
        self.entry_count += 1;

        if node.encoded_size() <= PAGE_SIZE {
            self.pager.write(pid, Arc::new(node.encode()))?;
            return Ok(());
        }

        // Split the leaf: left keeps the first half, right gets the rest.
        let OwnedNode::Leaf { entries, next } = node else {
            unreachable!()
        };
        let mid = entries.len() / 2;
        let mut left_entries = entries;
        let right_entries = left_entries.split_off(mid);
        let sep = right_entries[0].clone();
        let right_pid = self.pager.allocate();
        self.pages.push(right_pid);
        self.leaf_count += 1;
        let right = OwnedNode::Leaf {
            entries: right_entries,
            next,
        };
        let left = OwnedNode::Leaf {
            entries: left_entries,
            next: Some(right_pid),
        };
        self.pager.write(right_pid, Arc::new(right.encode()))?;
        self.pager.write(pid, Arc::new(left.encode()))?;

        self.insert_separator(path, sep, right_pid)
    }

    /// Propagate a split: insert `(sep, right)` into the parent chain.
    fn insert_separator(
        &mut self,
        mut path: Vec<(PageId, usize)>,
        mut sep: Vec<u8>,
        mut right: PageId,
    ) -> Result<()> {
        while let Some((pid, idx)) = path.pop() {
            let page = self.pager.read(pid)?;
            let mut node = OwnedNode::decode(&page)?;
            let OwnedNode::Internal { keys, children } = &mut node else {
                return Err(Error::Corrupt("path node is not internal".into()));
            };
            keys.insert(idx, sep);
            children.insert(idx + 1, right);
            if node.encoded_size() <= PAGE_SIZE {
                self.pager.write(pid, Arc::new(node.encode()))?;
                return Ok(());
            }
            let OwnedNode::Internal { keys, children } = node else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            // keys[mid] moves up; left keeps [..mid], right gets [mid+1..].
            let mut lk = keys;
            let rk = lk.split_off(mid + 1);
            let up = lk.pop().expect("mid separator exists");
            let mut lc = children;
            let rc = lc.split_off(mid + 1);
            let right_pid = self.pager.allocate();
            self.pages.push(right_pid);
            self.pager.write(
                right_pid,
                Arc::new(
                    OwnedNode::Internal {
                        keys: rk,
                        children: rc,
                    }
                    .encode(),
                ),
            )?;
            self.pager.write(
                pid,
                Arc::new(
                    OwnedNode::Internal {
                        keys: lk,
                        children: lc,
                    }
                    .encode(),
                ),
            )?;
            sep = up;
            right = right_pid;
        }
        // Root split: grow the tree.
        let new_root = self.pager.allocate();
        self.pages.push(new_root);
        let node = OwnedNode::Internal {
            keys: vec![sep],
            children: vec![self.root, right],
        };
        self.pager.write(new_root, Arc::new(node.encode()))?;
        self.root = new_root;
        self.height += 1;
        Ok(())
    }

    /// Remove `(values, rid)`. Returns true if it was present. Nodes are
    /// never merged; an empty leaf stays in the chain (documented
    /// trade-off — rebuilds reclaim space).
    pub fn delete(&mut self, values: &[Value], rid: Rid) -> Result<bool> {
        let key = full_key(values, rid);
        let mut pid = self.root;
        loop {
            let page = self.pager.read(pid)?;
            match page[0] {
                LEAF => {
                    let mut node = OwnedNode::decode(&page)?;
                    let OwnedNode::Leaf { entries, .. } = &mut node else {
                        unreachable!()
                    };
                    let pos = entries.partition_point(|e| e.as_slice() < key.as_slice());
                    if entries.get(pos).is_some_and(|e| *e == key) {
                        entries.remove(pos);
                        self.entry_count -= 1;
                        self.pager.write(pid, Arc::new(node.encode()))?;
                        return Ok(true);
                    }
                    return Ok(false);
                }
                INTERNAL => {
                    let idx = Self::descend_index(&page, &key);
                    pid = Self::child_at(&page, idx);
                }
                t => return Err(Error::Corrupt(format!("unknown btree node tag {t}"))),
            }
        }
    }

    /// Child index to follow for `probe`: `partition_point(sep ≤ probe)`.
    ///
    /// Separators are the *first key of their right sibling* (both in
    /// splits and bulk load), so a key equal to a separator lives in the
    /// RIGHT subtree — descent must treat `sep == probe` as "go right".
    /// (Using `sep < probe` here once sent separator-equal keys left:
    /// deletes of a node's first key silently missed, leaving stale
    /// index entries after updates. Regression-tested below.)
    ///
    /// This rule is also correct for prefix seeks: every subtree left of
    /// the chosen child has all keys < its separator ≤ probe, so the
    /// first entry ≥ probe cannot be there.
    fn descend_index(page: &[u8; PAGE_SIZE], probe: &[u8]) -> usize {
        let count = rd_u16(page, 1) as usize;
        let mut off = INT_HDR;
        let mut idx = 0;
        for _ in 0..count {
            let klen = rd_u16(page, off) as usize;
            let key = &page[off + 2..off + 2 + klen];
            if key <= probe {
                idx += 1;
            } else {
                break;
            }
            off += 2 + klen + 4;
        }
        idx
    }

    fn child_at(page: &[u8; PAGE_SIZE], idx: usize) -> PageId {
        if idx == 0 {
            return PageId(rd_u32(page, 3));
        }
        let count = rd_u16(page, 1) as usize;
        debug_assert!(idx <= count);
        let mut off = INT_HDR;
        for i in 0..count {
            let klen = rd_u16(page, off) as usize;
            off += 2 + klen;
            if i + 1 == idx {
                return PageId(rd_u32(page, off));
            }
            off += 4;
        }
        unreachable!("child index out of range")
    }

    /// Cursor positioned at the first entry whose key is ≥ the
    /// memcomparable encoding of `prefix_values`.
    ///
    /// Because entry keys carry a rid suffix, probing with a full value
    /// tuple positions *before* any entry with those exact values, and
    /// probing with a tuple prefix positions at the first entry whose
    /// leading columns are ≥ the prefix.
    pub fn seek(&self, prefix_values: &[Value]) -> Result<BTreeCursor<'_>> {
        self.seek_raw(&encode_key(prefix_values))
    }

    /// Cursor at the very first entry.
    pub fn scan_all(&self) -> Result<BTreeCursor<'_>> {
        self.seek_raw(&[])
    }

    /// The last entry of the tree as `(value_key_bytes, rid)`, found by
    /// descending the rightmost spine in `height` reads. `None` when
    /// the tree is empty. (There is no backward cursor; this exists for
    /// O(height) `MAX(col)` evaluation.)
    pub fn last_entry(&self) -> Result<Option<(Vec<u8>, Rid)>> {
        let mut pid = self.root;
        loop {
            let page = self.pager.read(pid)?;
            match page[0] {
                LEAF => {
                    let count = rd_u16(&*page, 1) as usize;
                    if count == 0 {
                        return Ok(None);
                    }
                    // Walk to the last entry.
                    let mut off = LEAF_HDR;
                    let mut last: Option<(usize, usize)> = None;
                    for _ in 0..count {
                        let klen = rd_u16(&*page, off) as usize;
                        last = Some((off + 2, klen));
                        off += 2 + klen;
                    }
                    let (start, klen) = last.expect("count > 0");
                    let key = &page[start..start + klen];
                    if klen < RID_LEN {
                        return Err(Error::Corrupt("index key shorter than rid".into()));
                    }
                    let (vals, ridb) = key.split_at(klen - RID_LEN);
                    return Ok(Some((vals.to_vec(), decode_rid(ridb)?)));
                }
                INTERNAL => {
                    let count = rd_u16(&*page, 1) as usize;
                    pid = Self::child_at(&page, count);
                }
                t => return Err(Error::Corrupt(format!("unknown btree node tag {t}"))),
            }
        }
    }

    fn seek_raw(&self, probe: &[u8]) -> Result<BTreeCursor<'_>> {
        let mut pid = self.root;
        loop {
            let page = self.pager.read(pid)?;
            match page[0] {
                LEAF => {
                    let mut cursor = BTreeCursor {
                        tree: self,
                        page,
                        idx: 0,
                        off: LEAF_HDR,
                    };
                    cursor.skip_below(probe)?;
                    return Ok(cursor);
                }
                INTERNAL => {
                    let idx = Self::descend_index(&page, probe);
                    pid = Self::child_at(&page, idx);
                }
                t => return Err(Error::Corrupt(format!("unknown btree node tag {t}"))),
            }
        }
    }

    /// Number of entries.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Number of pages owned by this tree (= index size for SIZE()).
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Consume the tree and return every page it owned, for the caller
    /// to return to the pager's free list (`DROP INDEX`).
    pub fn into_pages(self) -> Vec<PageId> {
        self.pages
    }

    /// The tree's pages in allocation order (for catalog persistence).
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// The root page id (for catalog persistence).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Reattach a tree persisted by a durable pager, from exactly the
    /// shape its accessors ([`BTree::root`], [`BTree::height`],
    /// [`BTree::pages`], [`BTree::leaf_count`], [`BTree::entry_count`])
    /// reported at commit time; the node contents come from the pager.
    pub fn from_parts(
        pager: Arc<Pager>,
        root: PageId,
        height: u32,
        pages: Vec<PageId>,
        leaf_count: u64,
        entry_count: u64,
    ) -> BTree {
        BTree {
            pager,
            root,
            height,
            pages,
            leaf_count,
            entry_count,
        }
    }

    /// Number of leaf pages (= full index-only scan cost in reads).
    pub fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    /// Number of levels (root to leaf inclusive).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The shared pager.
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }
}

/// Streaming cursor over B+-tree entries in key order.
///
/// Yields `(value_key, rid)` pairs where `value_key` is the
/// memcomparable encoding of the indexed values (the rid suffix is
/// already split off). Crossing a leaf boundary costs one logical read.
pub struct BTreeCursor<'t> {
    tree: &'t BTree,
    page: Page,
    idx: u16,
    off: usize,
}

impl BTreeCursor<'_> {
    /// Advance within the starting leaf past entries `< probe`.
    fn skip_below(&mut self, probe: &[u8]) -> Result<()> {
        loop {
            let count = rd_u16(&*self.page, 1);
            if self.idx >= count {
                if !self.advance_leaf()? {
                    return Ok(());
                }
                continue;
            }
            let klen = rd_u16(&*self.page, self.off) as usize;
            let key = &self.page[self.off + 2..self.off + 2 + klen];
            if key < probe {
                self.idx += 1;
                self.off += 2 + klen;
            } else {
                return Ok(());
            }
        }
    }

    fn advance_leaf(&mut self) -> Result<bool> {
        let next = rd_u32(&*self.page, 3);
        if next == 0 {
            return Ok(false);
        }
        self.page = self.tree.pager.read(PageId(next - 1))?;
        self.idx = 0;
        self.off = LEAF_HDR;
        Ok(true)
    }

    /// Next entry as `(value_key_bytes, rid)`, or `None` at end of tree.
    #[allow(clippy::should_implement_trait)]
    pub fn next_entry(&mut self) -> Result<Option<(&[u8], Rid)>> {
        loop {
            let count = rd_u16(&*self.page, 1);
            if self.idx < count {
                let klen = rd_u16(&*self.page, self.off) as usize;
                let start = self.off + 2;
                self.idx += 1;
                self.off += 2 + klen;
                // Borrow the key out of the pinned page.
                let key = &self.page[start..start + klen];
                if klen < RID_LEN {
                    return Err(Error::Corrupt("index key shorter than rid".into()));
                }
                let (vals, ridb) = key.split_at(klen - RID_LEN);
                let rid = decode_rid(ridb)?;
                return Ok(Some((vals, rid)));
            }
            if !self.advance_leaf()? {
                return Ok(None);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(i: i64) -> Vec<Value> {
        vec![Value::Int(i)]
    }

    fn rid(n: u32) -> Rid {
        Rid::new(PageId(n), 0)
    }

    fn collect_all(tree: &BTree) -> Vec<(Vec<Value>, Rid)> {
        let mut out = Vec::new();
        let mut cur = tree.scan_all().unwrap();
        while let Some((k, r)) = cur.next_entry().unwrap() {
            out.push((crate::codec::decode_key(k).unwrap(), r));
        }
        out
    }

    #[test]
    fn empty_tree() {
        let tree = BTree::create(Arc::new(Pager::new())).unwrap();
        assert_eq!(tree.entry_count(), 0);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.page_count(), 1);
        assert!(collect_all(&tree).is_empty());
    }

    #[test]
    fn insert_and_scan_in_order() {
        let mut tree = BTree::create(Arc::new(Pager::new())).unwrap();
        for i in [5i64, 1, 9, 3, 7] {
            tree.insert(&iv(i), rid(i as u32)).unwrap();
        }
        let got: Vec<i64> = collect_all(&tree)
            .into_iter()
            .map(|(v, _)| v[0].as_int().unwrap())
            .collect();
        assert_eq!(got, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn duplicate_values_distinct_rids_allowed() {
        let mut tree = BTree::create(Arc::new(Pager::new())).unwrap();
        tree.insert(&iv(4), rid(1)).unwrap();
        tree.insert(&iv(4), rid(2)).unwrap();
        assert!(
            tree.insert(&iv(4), rid(2)).is_err(),
            "same (key,rid) rejected"
        );
        assert_eq!(tree.entry_count(), 2);
    }

    #[test]
    fn splits_grow_height() {
        let mut tree = BTree::create(Arc::new(Pager::new())).unwrap();
        for i in 0..5000i64 {
            tree.insert(&iv(i), rid(i as u32)).unwrap();
        }
        assert!(tree.height() >= 2, "5000 entries must split");
        assert_eq!(tree.entry_count(), 5000);
        let got = collect_all(&tree);
        assert_eq!(got.len(), 5000);
        for (i, (v, _)) in got.iter().enumerate() {
            assert_eq!(v[0].as_int().unwrap(), i as i64);
        }
    }

    #[test]
    fn seek_finds_first_matching_entry() {
        let mut tree = BTree::create(Arc::new(Pager::new())).unwrap();
        for i in (0..100i64).step_by(2) {
            tree.insert(&iv(i), rid(i as u32)).unwrap();
        }
        // Exact hit.
        let mut c = tree.seek(&iv(40)).unwrap();
        let (k, _) = c.next_entry().unwrap().unwrap();
        assert_eq!(
            crate::codec::decode_key(k).unwrap()[0].as_int().unwrap(),
            40
        );
        // Between keys: lands on next.
        let mut c = tree.seek(&iv(41)).unwrap();
        let (k, _) = c.next_entry().unwrap().unwrap();
        assert_eq!(
            crate::codec::decode_key(k).unwrap()[0].as_int().unwrap(),
            42
        );
        // Past the end.
        let mut c = tree.seek(&iv(1000)).unwrap();
        assert!(c.next_entry().unwrap().is_none());
    }

    #[test]
    fn composite_prefix_seek() {
        let mut tree = BTree::create(Arc::new(Pager::new())).unwrap();
        let mut n = 0;
        for a in 0..50i64 {
            for b in 0..4i64 {
                tree.insert(&[Value::Int(a), Value::Int(b)], rid(n))
                    .unwrap();
                n += 1;
            }
        }
        // Probe with the leading column only.
        let probe = encode_key(&iv(7));
        let mut c = tree.seek(&iv(7)).unwrap();
        let mut hits = 0;
        while let Some((k, _)) = c.next_entry().unwrap() {
            if !k.starts_with(&probe) {
                break;
            }
            hits += 1;
        }
        assert_eq!(hits, 4);
    }

    #[test]
    fn bulk_load_equals_incremental() {
        let pager1 = Arc::new(Pager::new());
        let entries: Vec<(Vec<Value>, Rid)> =
            (0..3000i64).map(|i| (iv(i), rid(i as u32))).collect();
        let bulk = BTree::bulk_load(pager1, entries.clone()).unwrap();
        let mut incr = BTree::create(Arc::new(Pager::new())).unwrap();
        for (v, r) in &entries {
            incr.insert(v, *r).unwrap();
        }
        assert_eq!(collect_all(&bulk), collect_all(&incr));
        assert_eq!(bulk.entry_count(), 3000);
        assert!(
            bulk.page_count() <= incr.page_count(),
            "bulk load should pack at least as densely"
        );
    }

    #[test]
    fn bulk_load_rejects_unsorted() {
        let entries = vec![(iv(5), rid(0)), (iv(3), rid(1))];
        assert!(BTree::bulk_load(Arc::new(Pager::new()), entries).is_err());
    }

    #[test]
    fn bulk_load_empty() {
        let tree = BTree::bulk_load(Arc::new(Pager::new()), Vec::new()).unwrap();
        assert_eq!(tree.entry_count(), 0);
        assert!(collect_all(&tree).is_empty());
    }

    #[test]
    fn delete_removes_entry() {
        let mut tree = BTree::create(Arc::new(Pager::new())).unwrap();
        for i in 0..500i64 {
            tree.insert(&iv(i), rid(i as u32)).unwrap();
        }
        assert!(tree.delete(&iv(250), rid(250)).unwrap());
        assert!(!tree.delete(&iv(250), rid(250)).unwrap());
        assert!(!tree.delete(&iv(9999), rid(0)).unwrap());
        assert_eq!(tree.entry_count(), 499);
        let got = collect_all(&tree);
        assert_eq!(got.len(), 499);
        assert!(got.iter().all(|(v, _)| v[0].as_int().unwrap() != 250));
    }

    #[test]
    fn last_entry_is_max() {
        let tree = BTree::create(Arc::new(Pager::new())).unwrap();
        assert!(tree.last_entry().unwrap().is_none(), "empty tree");
        let entries: Vec<(Vec<Value>, Rid)> =
            (0..20_000i64).map(|i| (iv(i), rid(i as u32))).collect();
        let tree = BTree::bulk_load(Arc::new(Pager::new()), entries).unwrap();
        let (k, r) = tree.last_entry().unwrap().unwrap();
        assert_eq!(
            crate::codec::decode_key(&k).unwrap()[0].as_int().unwrap(),
            19_999
        );
        assert_eq!(r, rid(19_999));
        // Costs height reads.
        let pager = tree.pager().clone();
        let before = pager.stats();
        tree.last_entry().unwrap().unwrap();
        assert_eq!(pager.stats().delta(before).reads, tree.height() as u64);
    }

    #[test]
    fn delete_separator_keys_after_splits() {
        // Regression: keys that became separators during splits (the
        // first key of each right node) must remain reachable for
        // delete. Insert enough to split several times, then delete
        // EVERYTHING and verify the tree is empty.
        let mut tree = BTree::create(Arc::new(Pager::new())).unwrap();
        let n = 3000i64;
        for i in 0..n {
            tree.insert(&iv(i), rid(i as u32)).unwrap();
        }
        assert!(tree.height() >= 2, "must have split");
        for i in 0..n {
            assert!(
                tree.delete(&iv(i), rid(i as u32)).unwrap(),
                "key {i} must be deletable"
            );
        }
        assert_eq!(tree.entry_count(), 0);
        assert!(collect_all(&tree).is_empty());
    }

    #[test]
    fn update_cycle_leaves_no_stale_entries() {
        // Regression for the exact corruption an UPDATE-heavy workload
        // produced: delete + reinsert entries across separator
        // boundaries, then verify seek counts match ground truth.
        let mut tree = BTree::create(Arc::new(Pager::new())).unwrap();
        let n = 2500i64;
        for i in 0..n {
            tree.insert(&iv(i % 500), rid(i as u32)).unwrap();
        }
        // "Update" every entry: move it to a new key, like index
        // maintenance does.
        for i in 0..n {
            assert!(
                tree.delete(&iv(i % 500), rid(i as u32)).unwrap(),
                "entry {i}"
            );
            tree.insert(&iv((i % 500) + 1000), rid(i as u32)).unwrap();
        }
        assert_eq!(tree.entry_count() as i64, n);
        // Every old key must be gone; every new key must count 5.
        for k in 0..500i64 {
            let probe = encode_key(&iv(k));
            let mut c = tree.seek(&iv(k)).unwrap();
            if let Some((key, _)) = c.next_entry().unwrap() {
                assert!(!key.starts_with(&probe), "stale entry at {k}");
            }
            let probe_new = encode_key(&iv(k + 1000));
            let mut c = tree.seek(&iv(k + 1000)).unwrap();
            let mut hits = 0;
            while let Some((key, _)) = c.next_entry().unwrap() {
                if !key.starts_with(&probe_new) {
                    break;
                }
                hits += 1;
            }
            assert_eq!(hits, 5, "key {}", k + 1000);
        }
    }

    #[test]
    fn seek_costs_height_reads() {
        let pager = Arc::new(Pager::new());
        let entries: Vec<(Vec<Value>, Rid)> =
            (0..20_000i64).map(|i| (iv(i), rid(i as u32))).collect();
        let tree = BTree::bulk_load(pager.clone(), entries).unwrap();
        assert!(tree.height() >= 2);
        let before = pager.stats();
        let mut c = tree.seek(&iv(10_000)).unwrap();
        c.next_entry().unwrap().unwrap();
        let reads = pager.stats().delta(before).reads;
        assert_eq!(
            reads,
            tree.height() as u64,
            "descent reads one page per level"
        );
    }

    #[test]
    fn full_scan_costs_leaf_pages() {
        let pager = Arc::new(Pager::new());
        let entries: Vec<(Vec<Value>, Rid)> =
            (0..20_000i64).map(|i| (iv(i), rid(i as u32))).collect();
        let tree = BTree::bulk_load(pager.clone(), entries).unwrap();
        let before = pager.stats();
        let mut c = tree.scan_all().unwrap();
        let mut n = 0u64;
        while c.next_entry().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 20_000);
        let reads = pager.stats().delta(before).reads;
        // Descent (height) + remaining leaves.
        assert!(reads < tree.page_count() + tree.height() as u64);
        assert!(reads as f64 > tree.page_count() as f64 * 0.7);
    }

    #[test]
    fn reverse_and_random_insert_orders() {
        for seed in 0..3u64 {
            let mut tree = BTree::create(Arc::new(Pager::new())).unwrap();
            let mut xs: Vec<i64> = (0..2000).collect();
            // Cheap deterministic shuffle.
            for i in 0..xs.len() {
                let j = ((i as u64 * 2654435761 + seed * 97) % xs.len() as u64) as usize;
                xs.swap(i, j);
            }
            for &i in &xs {
                tree.insert(&iv(i), rid(i as u32)).unwrap();
            }
            let got: Vec<i64> = collect_all(&tree)
                .into_iter()
                .map(|(v, _)| v[0].as_int().unwrap())
                .collect();
            assert_eq!(got, (0..2000).collect::<Vec<_>>());
        }
    }
}

use crate::codec::RowView;
use crate::pager::{Page, Pager, PAGE_SIZE};
use crate::slotted;
use cdpd_types::{Error, PageId, Result, Rid};
use std::sync::Arc;

/// Unordered tuple storage: a chain of slotted pages on a shared pager.
///
/// Rows are stored in encoded form (see [`crate::codec::encode_row`]);
/// the heap itself is schema-agnostic. Inserts append to the last page
/// and allocate a new one when full, so a freshly loaded heap is dense —
/// its page count is the full-scan cost, exactly the quantity the cost
/// model's `EXEC` estimate for a sequential scan uses.
///
/// All read paths ([`HeapFile::scan`], [`HeapFile::fetch`]) take
/// `&self` and go through the lock-striped pager, so any number of
/// threads may scan one heap concurrently (pages are copy-on-write
/// `Arc`s — a reader holds an immutable snapshot of each page it
/// touches); mutation stays `&mut self`, so writers must hold an
/// exclusive handle (the engine serializes them under a per-table
/// write lock).
///
/// The handle itself is `Clone`: a clone shares the pager and pins the
/// page chain *as of the clone* — the epoch-snapshot mechanism online
/// index builds scan against while the original keeps absorbing DML.
#[derive(Clone)]
pub struct HeapFile {
    pager: Arc<Pager>,
    pages: Vec<PageId>,
    row_count: u64,
}

impl HeapFile {
    /// Create an empty heap on `pager`.
    pub fn create(pager: Arc<Pager>) -> HeapFile {
        HeapFile {
            pager,
            pages: Vec::new(),
            row_count: 0,
        }
    }

    /// Reattach a heap persisted by a durable pager: `pages` (in chain
    /// order) and `row_count` come from the serialized catalog, the
    /// page contents from the pager itself. The caller must pass back
    /// exactly what [`HeapFile::pages`] / [`HeapFile::row_count`]
    /// reported at commit time.
    pub fn from_parts(pager: Arc<Pager>, pages: Vec<PageId>, row_count: u64) -> HeapFile {
        HeapFile {
            pager,
            pages,
            row_count,
        }
    }

    /// The heap's pages in chain order (for catalog persistence).
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Insert an encoded row, returning its record id.
    pub fn insert(&mut self, row: &[u8]) -> Result<Rid> {
        if row.len() + 8 > PAGE_SIZE {
            return Err(Error::TooLarge(format!("row of {} bytes", row.len())));
        }
        if let Some(&last) = self.pages.last() {
            let slot = self.pager.update(last, |buf| slotted::insert(buf, row))?;
            if let Some(slot) = slot {
                self.row_count += 1;
                return Ok(Rid::new(last, slot));
            }
        }
        let page = self.pager.allocate();
        self.pages.push(page);
        let slot = self
            .pager
            .update(page, |buf| slotted::insert(buf, row))?
            .expect("row must fit in a fresh page");
        self.row_count += 1;
        Ok(Rid::new(page, slot))
    }

    /// Fetch one row by record id (one logical page read).
    pub fn fetch(&self, rid: Rid) -> Result<Vec<u8>> {
        let page = self.pager.read(rid.page)?;
        slotted::get(&page, rid.slot)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| Error::Corrupt(format!("no live record at {rid:?}")))
    }

    /// Update a row. Overwrites in place when the new encoding fits in
    /// the old slot (rid unchanged); otherwise tombstones the old slot
    /// and reinserts, returning the row's new rid. Errors if `rid` does
    /// not name a live row.
    pub fn update(&mut self, rid: Rid, row: &[u8]) -> Result<Rid> {
        let updated = self
            .pager
            .update(rid.page, |buf| slotted::update(buf, rid.slot, row))?;
        if updated {
            return Ok(rid);
        }
        if !self.delete(rid)? {
            return Err(Error::Corrupt(format!("no live record at {rid:?}")));
        }
        self.insert(row)
    }

    /// Delete one row. Returns true if it existed.
    pub fn delete(&mut self, rid: Rid) -> Result<bool> {
        let deleted = self
            .pager
            .update(rid.page, |buf| slotted::delete(buf, rid.slot))?;
        if deleted {
            self.row_count -= 1;
        }
        Ok(deleted)
    }

    /// Begin a full scan. Use as a streaming iterator:
    ///
    /// ```ignore
    /// let mut scan = heap.scan();
    /// while let Some((rid, row)) = scan.next_row()? {
    ///     let v = row.int(0)?;
    /// }
    /// ```
    pub fn scan(&self) -> HeapScan<'_> {
        HeapScan {
            heap: self,
            page_idx: 0,
            slot: 0,
            current: None,
        }
    }

    /// Number of live rows.
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// Number of pages (= sequential scan cost in logical reads).
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// The shared pager.
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }
}

/// Streaming cursor over a heap's live rows in physical order.
///
/// Each page is read (and counted) exactly once per scan; rows are
/// exposed as zero-copy [`RowView`]s into the pinned page.
pub struct HeapScan<'h> {
    heap: &'h HeapFile,
    page_idx: usize,
    slot: u16,
    current: Option<Page>,
}

impl HeapScan<'_> {
    /// Advance to the next live row. Returns `None` at end of heap.
    #[allow(clippy::should_implement_trait)]
    pub fn next_row(&mut self) -> Result<Option<(Rid, RowView<'_>)>> {
        loop {
            if self.current.is_none() {
                let Some(&pid) = self.heap.pages.get(self.page_idx) else {
                    return Ok(None);
                };
                self.current = Some(self.heap.pager.read(pid)?);
                self.slot = 0;
            }
            let page = self.current.as_ref().expect("page pinned above");
            let nslots = slotted::slot_count(page);
            while self.slot < nslots {
                let slot = self.slot;
                self.slot += 1;
                if slotted::get(page, slot).is_some() {
                    let pid = self.heap.pages[self.page_idx];
                    // Re-borrow through self.current to give the view the
                    // full lifetime of &mut self's borrow.
                    let bytes =
                        slotted::get(self.current.as_ref().expect("page pinned above"), slot)
                            .expect("slot checked live");
                    return Ok(Some((Rid::new(pid, slot), RowView::new(bytes))));
                }
            }
            self.current = None;
            self.page_idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_row, encode_row};
    use cdpd_types::Value;

    fn row_bytes(vals: &[i64]) -> Vec<u8> {
        let row: Vec<Value> = vals.iter().copied().map(Value::Int).collect();
        let mut out = Vec::new();
        encode_row(&row, &mut out);
        out
    }

    #[test]
    fn insert_fetch_roundtrip() {
        let mut heap = HeapFile::create(Arc::new(Pager::new()));
        let rid = heap.insert(&row_bytes(&[1, 2, 3, 4])).unwrap();
        let bytes = heap.fetch(rid).unwrap();
        let row = decode_row(&bytes).unwrap();
        assert_eq!(
            row,
            vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)]
        );
    }

    #[test]
    fn scan_sees_all_rows_in_order() {
        let mut heap = HeapFile::create(Arc::new(Pager::new()));
        for i in 0..1000 {
            heap.insert(&row_bytes(&[i, i * 2, 0, 0])).unwrap();
        }
        let mut scan = heap.scan();
        let mut seen = Vec::new();
        while let Some((_, view)) = scan.next_row().unwrap() {
            seen.push(view.int(0).unwrap());
        }
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn scan_costs_one_read_per_page() {
        let pager = Arc::new(Pager::new());
        let mut heap = HeapFile::create(pager.clone());
        for i in 0..1000i64 {
            heap.insert(&row_bytes(&[i, 0, 0, 0])).unwrap();
        }
        let pages = heap.page_count();
        assert!(pages > 1, "should span multiple pages");
        let before = pager.stats();
        let mut scan = heap.scan();
        while scan.next_row().unwrap().is_some() {}
        assert_eq!(pager.stats().delta(before).reads, pages);
    }

    #[test]
    fn delete_hides_row_from_scan_and_fetch() {
        let mut heap = HeapFile::create(Arc::new(Pager::new()));
        let r0 = heap.insert(&row_bytes(&[10, 0, 0, 0])).unwrap();
        let r1 = heap.insert(&row_bytes(&[20, 0, 0, 0])).unwrap();
        assert!(heap.delete(r0).unwrap());
        assert!(!heap.delete(r0).unwrap());
        assert!(heap.fetch(r0).is_err());
        assert_eq!(heap.row_count(), 1);
        let mut scan = heap.scan();
        let (rid, view) = scan.next_row().unwrap().unwrap();
        assert_eq!(rid, r1);
        assert_eq!(view.int(0).unwrap(), 20);
        assert!(scan.next_row().unwrap().is_none());
    }

    #[test]
    fn update_in_place_keeps_rid() {
        let mut heap = HeapFile::create(Arc::new(Pager::new()));
        let rid = heap.insert(&row_bytes(&[1, 2, 3, 4])).unwrap();
        let new_rid = heap.update(rid, &row_bytes(&[9, 8, 7, 6])).unwrap();
        assert_eq!(rid, new_rid, "same-width row stays in place");
        let row = decode_row(&heap.fetch(rid).unwrap()).unwrap();
        assert_eq!(row[0], Value::Int(9));
        assert_eq!(heap.row_count(), 1);
    }

    #[test]
    fn update_growing_row_moves() {
        let mut heap = HeapFile::create(Arc::new(Pager::new()));
        let mut small = Vec::new();
        encode_row(&[Value::from("x")], &mut small);
        let rid = heap.insert(&small).unwrap();
        let mut big = Vec::new();
        encode_row(&[Value::from("a much longer string value")], &mut big);
        let new_rid = heap.update(rid, &big).unwrap();
        assert_ne!(rid, new_rid, "grown row must move");
        assert!(heap.fetch(rid).is_err(), "old rid is dead");
        let row = decode_row(&heap.fetch(new_rid).unwrap()).unwrap();
        assert_eq!(row[0], Value::from("a much longer string value"));
        assert_eq!(heap.row_count(), 1);
        // Updating a dead rid errors.
        assert!(heap.update(rid, &small).is_err());
    }

    #[test]
    fn rows_per_page_matches_paper_scale() {
        // 4 INT columns = 36 encoded bytes + 4 slot bytes = 40 per row;
        // the paper's ~200 rows/page arithmetic should hold.
        let mut heap = HeapFile::create(Arc::new(Pager::new()));
        for i in 0..1000i64 {
            heap.insert(&row_bytes(&[i, i, i, i])).unwrap();
        }
        let rows_per_page = 1000 / heap.page_count();
        assert!(
            (180..=210).contains(&rows_per_page),
            "rows/page = {rows_per_page}"
        );
    }

    #[test]
    fn oversized_row_rejected() {
        let mut heap = HeapFile::create(Arc::new(Pager::new()));
        let huge = vec![0u8; PAGE_SIZE];
        assert!(heap.insert(&huge).is_err());
    }
}

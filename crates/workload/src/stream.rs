//! Streaming ingestion: the online counterpart of
//! [`summarize`](crate::summarize::summarize) and
//! [`analysis`](crate::analysis).
//!
//! The batch pipeline takes a complete [`Trace`] and windows it after
//! the fact. A live advisor sees one statement at a time, so this
//! module maintains the *same* artifacts incrementally:
//!
//! * [`StatementStream`] — pushes statements one by one, building each
//!   window's weighted [`Block`] and shape [`WindowProfile`] as the
//!   statements arrive (O(1) amortized per statement), with an optional
//!   sliding-window capacity bound;
//! * [`OnlineShiftDetector`] — consumes sealed profiles and maintains
//!   boundary scores, grading them with the exact
//!   [`grade_scores`] logic the batch
//!   [`detect_shifts`](crate::analysis::detect_shifts) uses.
//!
//! **Batch equivalence** is the design invariant, proven by test: after
//! pushing a whole trace through an *unbounded* stream,
//! [`StatementStream::summarized`] is bit-identical to
//! [`summarize`](crate::summarize::summarize)`(trace, window_len)`,
//! [`StatementStream::profiles`]
//! equals [`window_profiles`](crate::analysis::window_profiles), and
//! the detector's final verdicts equal `detect_shifts`. Everything the
//! online advisor builds on top inherits its batch-equivalence claim
//! from these three identities.

use crate::analysis::{grade_scores, shape, Shift, WindowProfile};
use crate::summarize::cost_signature;
use crate::summarize::{Block, SummarizedWorkload, WeightedStatement};
use crate::trace::Trace;
use cdpd_sql::Dml;
use cdpd_types::{Error, Result};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// In-progress state of the window currently being filled.
#[derive(Clone, Debug, Default)]
struct OpenWindow {
    /// Deduplicated weighted statements, in first-seen order — the same
    /// representation `summarize` builds per block.
    order: Vec<WeightedStatement>,
    /// `cost_signature → index into order` for O(1) merging.
    by_sig: HashMap<String, usize>,
    /// Shape counts for the window profile.
    shapes: BTreeMap<String, u64>,
    /// Raw statements in the window so far.
    len: usize,
}

impl OpenWindow {
    fn push(&mut self, stmt: &Dml) {
        match cost_signature(stmt) {
            Some(sig) => match self.by_sig.get(&sig) {
                Some(&i) => self.order[i].count += 1,
                None => {
                    self.by_sig.insert(sig, self.order.len());
                    self.order.push(WeightedStatement {
                        statement: stmt.clone(),
                        count: 1,
                    });
                }
            },
            None => self.order.push(WeightedStatement {
                statement: stmt.clone(),
                count: 1,
            }),
        }
        *self.shapes.entry(shape(stmt)).or_insert(0) += 1;
        self.len += 1;
    }

    fn block(&self, start: usize) -> Block {
        Block {
            start,
            len: self.len,
            weighted: self.order.clone(),
        }
    }

    fn profile(&self) -> WindowProfile {
        let n = self.len as f64;
        WindowProfile {
            fractions: self
                .shapes
                .iter()
                .map(|(k, &c)| (k.clone(), c as f64 / n))
                .collect(),
        }
    }
}

/// A sliding window over a statement stream, maintaining per-window
/// weighted blocks and shape profiles incrementally.
///
/// With `max_windows = None` (unbounded) the stream retains every
/// sealed window and reproduces the batch pipeline exactly; with a
/// capacity, the oldest windows are evicted and [`StatementStream::evicted`]
/// (`StatementStream::evicted`) counts them. Block `start` offsets are
/// always absolute trace positions, so evicting history never renumbers
/// what remains.
#[derive(Clone, Debug)]
pub struct StatementStream {
    table: String,
    window_len: usize,
    max_windows: Option<usize>,
    sealed: VecDeque<Block>,
    profiles: VecDeque<WindowProfile>,
    evicted: usize,
    pushed: usize,
    open: OpenWindow,
}

impl StatementStream {
    /// An unbounded stream over statements for `table`, windowed every
    /// `window_len` statements.
    ///
    /// # Errors
    /// `window_len` must be positive.
    pub fn new(table: impl Into<String>, window_len: usize) -> Result<StatementStream> {
        StatementStream::with_capacity(table, window_len, None)
    }

    /// A stream retaining at most `max_windows` sealed windows
    /// (`None` = unbounded).
    ///
    /// # Errors
    /// `window_len` must be positive, and `max_windows`, when given,
    /// non-zero.
    pub fn with_capacity(
        table: impl Into<String>,
        window_len: usize,
        max_windows: Option<usize>,
    ) -> Result<StatementStream> {
        if window_len == 0 {
            return Err(Error::InvalidArgument("window_len must be positive".into()));
        }
        if max_windows == Some(0) {
            return Err(Error::InvalidArgument(
                "max_windows must be non-zero (use None for unbounded)".into(),
            ));
        }
        Ok(StatementStream {
            table: table.into(),
            window_len,
            max_windows,
            sealed: VecDeque::new(),
            profiles: VecDeque::new(),
            evicted: 0,
            pushed: 0,
            open: OpenWindow::default(),
        })
    }

    /// The target table.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The window length, in raw statements.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Total raw statements pushed so far.
    pub fn len(&self) -> usize {
        self.pushed
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Number of sealed windows currently retained.
    pub fn windows_sealed(&self) -> usize {
        self.sealed.len()
    }

    /// Number of sealed windows evicted to honor the capacity bound.
    pub fn evicted(&self) -> usize {
        self.evicted
    }

    /// Ingest one statement. Returns `Some(window_index)` when this
    /// statement completes a window (indices are absolute: the first
    /// window is 0 even after eviction).
    ///
    /// # Errors
    /// The statement must target this stream's table.
    pub fn push(&mut self, stmt: &Dml) -> Result<Option<usize>> {
        if stmt.table() != self.table {
            return Err(Error::InvalidArgument(format!(
                "statement is on table {}, stream is for {}",
                stmt.table(),
                self.table
            )));
        }
        cdpd_obs::counter!("workload.stream.statements").inc();
        self.open.push(stmt);
        self.pushed += 1;
        if self.open.len == self.window_len {
            Ok(Some(self.seal()))
        } else {
            Ok(None)
        }
    }

    /// Ingest a batch of statements, returning the indices of every
    /// window sealed along the way.
    ///
    /// # Errors
    /// Every statement must target this stream's table; ingestion stops
    /// at the first mismatch.
    pub fn push_all<'a>(&mut self, stmts: impl IntoIterator<Item = &'a Dml>) -> Result<Vec<usize>> {
        let mut sealed = Vec::new();
        for stmt in stmts {
            if let Some(i) = self.push(stmt)? {
                sealed.push(i);
            }
        }
        Ok(sealed)
    }

    /// Seal the open window now, even though it is short of
    /// `window_len` — the boundary a serving loop forces on wall-clock
    /// ticks when traffic goes quiet. Returns the sealed window's
    /// absolute index, or `None` if the open window is empty (nothing
    /// to seal). The next pushed statement starts a fresh window.
    pub fn force_seal(&mut self) -> Option<usize> {
        if self.open.len == 0 {
            None
        } else {
            Some(self.seal())
        }
    }

    fn seal(&mut self) -> usize {
        let index = self.evicted + self.sealed.len();
        let start = self.pushed - self.open.len;
        let _span = cdpd_obs::span!("stream.seal", window = index, statements = self.open.len);
        let open = std::mem::take(&mut self.open);
        self.sealed.push_back(open.block(start));
        self.profiles.push_back(open.profile());
        if let Some(cap) = self.max_windows {
            while self.sealed.len() > cap {
                self.sealed.pop_front();
                self.profiles.pop_front();
                self.evicted += 1;
                cdpd_obs::counter!("workload.stream.evicted").inc();
            }
        }
        index
    }

    /// The retained sealed blocks, oldest first.
    pub fn sealed_blocks(&self) -> impl Iterator<Item = &Block> {
        self.sealed.iter()
    }

    /// The most recently sealed block and its profile, if any window
    /// has sealed and is still retained.
    pub fn last_sealed(&self) -> Option<(&Block, &WindowProfile)> {
        self.sealed.back().zip(self.profiles.back())
    }

    /// The retained windows as a [`SummarizedWorkload`], including the
    /// open partial window (batch `summarize` also emits a ragged tail
    /// block). For an unbounded stream fed a complete trace this is
    /// bit-identical to [`summarize`](crate::summarize::summarize)`(trace, window_len)`.
    pub fn summarized(&self) -> SummarizedWorkload {
        let mut blocks: Vec<Block> = self.sealed.iter().cloned().collect();
        if self.open.len > 0 {
            blocks.push(self.open.block(self.pushed - self.open.len));
        }
        SummarizedWorkload {
            table: self.table.clone(),
            blocks,
        }
    }

    /// The retained window profiles, including the open partial window
    /// — the streaming counterpart of
    /// [`window_profiles`](crate::analysis::window_profiles).
    pub fn profiles(&self) -> Vec<WindowProfile> {
        let mut out: Vec<WindowProfile> = self.profiles.iter().cloned().collect();
        if self.open.len > 0 {
            out.push(self.open.profile());
        }
        out
    }

    /// Snapshot the complete stream state for persistence. The open
    /// window is captured as its weighted statements; the dedup map and
    /// shape counts are derived on [`StatementStream::from_state`], so
    /// the round trip is exact.
    pub fn state(&self) -> StreamState {
        StreamState {
            table: self.table.clone(),
            window_len: self.window_len,
            max_windows: self.max_windows,
            sealed: self.sealed.iter().cloned().collect(),
            profiles: self.profiles.iter().cloned().collect(),
            evicted: self.evicted,
            pushed: self.pushed,
            open: self.open.order.clone(),
        }
    }

    /// Rebuild a stream from a persisted [`StreamState`]: the inverse
    /// of [`StatementStream::state`]. A restored stream behaves
    /// identically to the one that was saved — same future seals, same
    /// blocks, same profiles.
    ///
    /// # Errors
    /// The state must be internally consistent (valid window length
    /// and capacity, matching sealed/profile counts, an open window
    /// strictly smaller than `window_len`).
    pub fn from_state(state: StreamState) -> Result<StatementStream> {
        let mut stream =
            StatementStream::with_capacity(state.table, state.window_len, state.max_windows)?;
        if state.sealed.len() != state.profiles.len() {
            return Err(Error::InvalidArgument(format!(
                "stream state has {} sealed blocks but {} profiles",
                state.sealed.len(),
                state.profiles.len()
            )));
        }
        let mut open = OpenWindow::default();
        for ws in state.open {
            if let Some(sig) = cost_signature(&ws.statement) {
                if open.by_sig.insert(sig, open.order.len()).is_some() {
                    return Err(Error::InvalidArgument(
                        "open window has duplicate cost signatures".into(),
                    ));
                }
            }
            let shape_key = shape(&ws.statement);
            *open.shapes.entry(shape_key).or_insert(0) += ws.count;
            open.len += ws.count as usize;
            open.order.push(ws);
        }
        if open.len >= state.window_len {
            return Err(Error::InvalidArgument(format!(
                "open window has {} statements, window length is {}",
                open.len, state.window_len
            )));
        }
        let retained: usize = state.sealed.iter().map(|b| b.len).sum();
        if state.pushed < retained + open.len {
            return Err(Error::InvalidArgument(
                "stream state pushed count below retained statements".into(),
            ));
        }
        stream.sealed = state.sealed.into();
        stream.profiles = state.profiles.into();
        stream.evicted = state.evicted;
        stream.pushed = state.pushed;
        stream.open = open;
        Ok(stream)
    }
}

/// Owned snapshot of a [`StatementStream`], produced by
/// [`StatementStream::state`] and consumed by
/// [`StatementStream::from_state`]. All fields are public so callers
/// can serialize them with whatever codec they use.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamState {
    /// Target table.
    pub table: String,
    /// Statements per window.
    pub window_len: usize,
    /// Retention bound (`None` = unbounded).
    pub max_windows: Option<usize>,
    /// Retained sealed blocks, oldest first.
    pub sealed: Vec<Block>,
    /// Profiles of the retained sealed blocks, oldest first.
    pub profiles: Vec<WindowProfile>,
    /// Sealed windows evicted before this snapshot.
    pub evicted: usize,
    /// Total raw statements ever pushed.
    pub pushed: usize,
    /// The open (unsealed) window's weighted statements.
    pub open: Vec<WeightedStatement>,
}

/// Feed a whole trace through a fresh unbounded stream — the batch
/// entry point expressed as a replay, used by equivalence tests and as
/// a convenience for offline callers migrating to the streaming API.
///
/// # Errors
/// Same conditions as [`StatementStream::new`] and
/// [`StatementStream::push`].
pub fn stream_trace(trace: &Trace, window_len: usize) -> Result<StatementStream> {
    let mut stream = StatementStream::new(trace.table(), window_len)?;
    stream.push_all(trace.statements())?;
    Ok(stream)
}

/// Online shift detection: consumes sealed [`WindowProfile`]s one at a
/// time, maintains the boundary-score sequence incrementally, and
/// grades it with the same two-means logic as the batch
/// [`detect_shifts`](crate::analysis::detect_shifts).
///
/// Grading is a *global* judgement over all scores seen so far, so a
/// shift's major/minor verdict can be revised as later windows arrive
/// (the clusters move). The final verdicts — after every window has
/// been observed — equal the batch function's output exactly, because
/// both call [`grade_scores`] on the same score sequence.
#[derive(Clone, Debug, Default)]
pub struct OnlineShiftDetector {
    last: Option<WindowProfile>,
    scores: Vec<f64>,
}

impl OnlineShiftDetector {
    /// A detector that has seen no windows.
    pub fn new() -> OnlineShiftDetector {
        OnlineShiftDetector::default()
    }

    /// Observe the next sealed window's profile. Returns the L1
    /// boundary score against the previous window (`None` for the
    /// first window — there is no boundary yet).
    pub fn observe(&mut self, profile: &WindowProfile) -> Option<f64> {
        let score = self.last.as_ref().map(|prev| prev.l1(profile));
        if let Some(s) = score {
            self.scores.push(s);
        }
        self.last = Some(profile.clone());
        score
    }

    /// The boundary scores seen so far (`scores()[i]` is the boundary
    /// entering window `i + 1`).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Current shift verdicts over everything observed so far.
    pub fn shifts(&self) -> Vec<Shift> {
        grade_scores(&self.scores)
    }

    /// Number of shifts currently graded major — the online counterpart
    /// of [`suggest_k_from_trace`](crate::analysis::suggest_k_from_trace).
    pub fn suggested_k(&self) -> usize {
        self.shifts().iter().filter(|s| s.major).count()
    }

    /// The last observed profile (the comparison baseline for the next
    /// boundary score), for persistence.
    pub fn last_profile(&self) -> Option<&WindowProfile> {
        self.last.as_ref()
    }

    /// Rebuild a detector from persisted state: the last observed
    /// profile and the boundary scores seen so far.
    pub fn from_state(last: Option<WindowProfile>, scores: Vec<f64>) -> OnlineShiftDetector {
        OnlineShiftDetector { last, scores }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{detect_shifts, window_profiles};
    use crate::summarize::summarize;
    use crate::{generate, paper};

    fn w1_trace() -> Trace {
        let params = paper::PaperParams {
            domain: 1_000,
            ..Default::default()
        };
        generate(&paper::w1_with(&params), 7)
    }

    #[test]
    fn unbounded_stream_matches_batch_summarize() {
        let trace = w1_trace();
        let stream = stream_trace(&trace, 500).unwrap();
        assert_eq!(stream.summarized(), summarize(&trace, 500).unwrap());
        assert_eq!(stream.profiles(), window_profiles(&trace, 500).unwrap());
        assert_eq!(stream.windows_sealed(), 30);
        assert_eq!(stream.evicted(), 0);
    }

    #[test]
    fn partial_tail_matches_batch() {
        let trace = w1_trace();
        // 700 does not divide 15_000: the open window must surface as a
        // ragged tail block exactly like batch summarize's.
        let stream = stream_trace(&trace, 700).unwrap();
        assert_eq!(stream.summarized(), summarize(&trace, 700).unwrap());
        assert_eq!(stream.profiles(), window_profiles(&trace, 700).unwrap());
    }

    #[test]
    fn online_detector_matches_batch_verdicts() {
        let trace = w1_trace();
        let profiles = window_profiles(&trace, 500).unwrap();
        let mut det = OnlineShiftDetector::new();
        for p in &profiles {
            det.observe(p);
        }
        assert_eq!(det.shifts(), detect_shifts(&profiles));
        assert_eq!(det.suggested_k(), 2);
    }

    #[test]
    fn detector_streams_with_the_stream() {
        // Wire detector to stream seals: same verdicts as batch.
        let trace = w1_trace();
        let mut stream = StatementStream::new("t", 500).unwrap();
        let mut det = OnlineShiftDetector::new();
        for stmt in trace.statements() {
            if stream.push(stmt).unwrap().is_some() {
                let (_, profile) = stream.last_sealed().unwrap();
                det.observe(profile);
            }
        }
        let batch = detect_shifts(&window_profiles(&trace, 500).unwrap());
        assert_eq!(det.shifts(), batch);
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let trace = w1_trace();
        let mut stream = StatementStream::with_capacity("t", 500, Some(4)).unwrap();
        stream.push_all(trace.statements()).unwrap();
        assert_eq!(stream.windows_sealed(), 4);
        assert_eq!(stream.evicted(), 26);
        // Retained blocks are the newest four, with absolute offsets.
        let batch = summarize(&trace, 500).unwrap();
        let retained: Vec<_> = stream.sealed_blocks().cloned().collect();
        assert_eq!(retained, batch.blocks[26..]);
        assert_eq!(stream.len(), trace.len());
    }

    #[test]
    fn push_returns_sealed_window_indices() {
        let mut stream = StatementStream::new("t", 2).unwrap();
        let q = |v| Dml::Select(cdpd_sql::SelectStmt::point("t", "a", v));
        assert_eq!(stream.push(&q(1)).unwrap(), None);
        assert_eq!(stream.push(&q(2)).unwrap(), Some(0));
        assert_eq!(stream.push(&q(3)).unwrap(), None);
        assert_eq!(stream.push(&q(4)).unwrap(), Some(1));
        assert!(!stream.is_empty() && stream.len() == 4);
    }

    #[test]
    fn invalid_arguments_rejected() {
        assert!(StatementStream::new("t", 0).is_err());
        assert!(StatementStream::with_capacity("t", 5, Some(0)).is_err());
        let mut stream = StatementStream::new("t", 5).unwrap();
        let wrong = Dml::Select(cdpd_sql::SelectStmt::point("u", "a", 1));
        assert!(stream.push(&wrong).is_err());
    }

    #[test]
    fn detector_first_window_scores_nothing() {
        let mut det = OnlineShiftDetector::new();
        let p = WindowProfile {
            fractions: [("r:a".to_string(), 1.0)].into_iter().collect(),
        };
        assert_eq!(det.observe(&p), None);
        assert!(det.scores().is_empty());
        assert!(det.shifts().is_empty());
        let q = WindowProfile {
            fractions: [("r:b".to_string(), 1.0)].into_iter().collect(),
        };
        assert_eq!(det.observe(&q), Some(2.0));
        assert_eq!(det.suggested_k(), 1);
    }
}

use crate::mix::QueryMix;
use cdpd_types::{Error, Result};

/// A phase-structured workload: a sequence of fixed-length windows,
/// each drawing queries from one [`QueryMix`].
///
/// This is the paper's workload shape: *phases* separated by major
/// shifts, *minor shifts* alternating mixes within a phase. A spec is
/// purely declarative; [`crate::generate`] turns it into a concrete
/// statement [`crate::Trace`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WorkloadSpec {
    /// Target table.
    pub table: String,
    /// Predicate value domain `[0, domain)`.
    pub domain: i64,
    /// Queries per window.
    pub window_len: usize,
    /// One mix per window.
    pub windows: Vec<QueryMix>,
}

impl WorkloadSpec {
    /// Build a spec; validates that it is non-degenerate.
    pub fn new(
        table: impl Into<String>,
        domain: i64,
        window_len: usize,
        windows: Vec<QueryMix>,
    ) -> Result<WorkloadSpec> {
        if window_len == 0 {
            return Err(Error::InvalidArgument("window_len must be positive".into()));
        }
        if domain <= 0 {
            return Err(Error::InvalidArgument("domain must be positive".into()));
        }
        if windows.is_empty() {
            return Err(Error::InvalidArgument(
                "workload needs at least one window".into(),
            ));
        }
        Ok(WorkloadSpec {
            table: table.into(),
            domain,
            window_len,
            windows,
        })
    }

    /// Total number of queries this spec generates.
    pub fn total_queries(&self) -> usize {
        self.window_len * self.windows.len()
    }

    /// Number of windows.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// The mix names per window (for tables like the paper's Table 2).
    pub fn window_labels(&self) -> Vec<&str> {
        self.windows.iter().map(|m| m.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let spec = WorkloadSpec::new(
            "t",
            1000,
            500,
            vec![QueryMix::paper_a(), QueryMix::paper_b()],
        )
        .unwrap();
        assert_eq!(spec.total_queries(), 1000);
        assert_eq!(spec.window_count(), 2);
        assert_eq!(spec.window_labels(), vec!["A", "B"]);
    }

    #[test]
    fn degenerate_specs_rejected() {
        assert!(WorkloadSpec::new("t", 1000, 0, vec![QueryMix::paper_a()]).is_err());
        assert!(WorkloadSpec::new("t", 0, 10, vec![QueryMix::paper_a()]).is_err());
        assert!(WorkloadSpec::new("t", 1000, 10, vec![]).is_err());
    }
}

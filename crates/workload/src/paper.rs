//! The exact workloads of the paper's evaluation (Table 2).
//!
//! All three workloads are 30 windows of 500 queries (15,000 queries)
//! over a four-column table, in three phases of 10 windows:
//!
//! * **W1** — phases 1/3 alternate mixes `A,A,B,B,…` (minor shifts every
//!   1,000 queries); phase 2 alternates `C,C,D,D,…`.
//! * **W2** — same phases, but minor shifts every 500 queries
//!   (`A,B,A,B,…` / `C,D,C,D,…`).
//! * **W3** — same minor-shift period as W1 but out of phase: `B,B,A,A,…`
//!   / `D,D,C,C,…`.
//!
//! The two *major shifts* (phase boundaries at queries 5,000 and
//! 10,000) are what a `k = 2` constrained design is expected to track.

use crate::mix::QueryMix;
use crate::spec::WorkloadSpec;

/// Scale parameters for the paper workloads.
#[derive(Clone, Debug)]
pub struct PaperParams {
    /// Target table name.
    pub table: String,
    /// Predicate value domain `[0, domain)`; the paper used 500,000.
    pub domain: i64,
    /// Queries per window; the paper's Table 2 rows are 500 queries.
    pub window_len: usize,
}

impl Default for PaperParams {
    fn default() -> Self {
        PaperParams {
            table: "t".into(),
            domain: 500_000,
            window_len: 500,
        }
    }
}

/// Expand a per-window mix-name pattern into a spec. Range templates
/// (mixes `E`/`F`) use a span of 1% of the domain so range selectivity
/// stays constant across scale parameters.
fn from_pattern(params: &PaperParams, pattern: &[char]) -> WorkloadSpec {
    let span = (params.domain / 100).max(1);
    let windows = pattern
        .iter()
        .map(|c| match c {
            'A' => QueryMix::paper_a(),
            'B' => QueryMix::paper_b(),
            'C' => QueryMix::paper_c(),
            'D' => QueryMix::paper_d(),
            'E' => QueryMix::paper_e(span),
            'F' => QueryMix::paper_f(span),
            'G' => QueryMix::paper_g(),
            'H' => QueryMix::paper_h(),
            other => unreachable!("unknown mix {other}"),
        })
        .collect();
    WorkloadSpec::new(
        params.table.clone(),
        params.domain,
        params.window_len,
        windows,
    )
    .expect("paper patterns are valid")
}

/// The 30-window mix pattern of W1 (Table 2, column `W1`).
pub const W1_PATTERN: [char; 30] = [
    'A', 'A', 'B', 'B', 'A', 'A', 'B', 'B', 'A', 'A', // phase 1
    'C', 'C', 'D', 'D', 'C', 'C', 'D', 'D', 'C', 'C', // phase 2
    'A', 'A', 'B', 'B', 'A', 'A', 'B', 'B', 'A', 'A', // phase 3
];

/// The 30-window mix pattern of W2 (minor shifts every window).
pub const W2_PATTERN: [char; 30] = [
    'A', 'B', 'A', 'B', 'A', 'B', 'A', 'B', 'A', 'B', 'C', 'D', 'C', 'D', 'C', 'D', 'C', 'D', 'C',
    'D', 'A', 'B', 'A', 'B', 'A', 'B', 'A', 'B', 'A', 'B',
];

/// The 30-window mix pattern of W3 (W1 with minor shifts out of phase).
pub const W3_PATTERN: [char; 30] = [
    'B', 'B', 'A', 'A', 'B', 'B', 'A', 'A', 'B', 'B', 'D', 'D', 'C', 'C', 'D', 'D', 'C', 'C', 'D',
    'D', 'B', 'B', 'A', 'A', 'B', 'B', 'A', 'A', 'B', 'B',
];

/// Workload W1 at paper scale.
pub fn w1() -> WorkloadSpec {
    w1_with(&PaperParams::default())
}

/// Workload W1 with custom scale.
pub fn w1_with(params: &PaperParams) -> WorkloadSpec {
    from_pattern(params, &W1_PATTERN)
}

/// Workload W2 at paper scale.
pub fn w2() -> WorkloadSpec {
    w2_with(&PaperParams::default())
}

/// Workload W2 with custom scale.
pub fn w2_with(params: &PaperParams) -> WorkloadSpec {
    from_pattern(params, &W2_PATTERN)
}

/// Workload W3 at paper scale.
pub fn w3() -> WorkloadSpec {
    w3_with(&PaperParams::default())
}

/// Workload W3 with custom scale.
pub fn w3_with(params: &PaperParams) -> WorkloadSpec {
    from_pattern(params, &W3_PATTERN)
}

/// The 30-window pattern of W4: range/IN-heavy phases (`E`/`F`)
/// bracketing a disjunction-heavy middle phase (`G`/`H`). Same phase
/// boundaries as W1–W3 (queries 5,000 and 10,000 at paper scale).
pub const W4_PATTERN: [char; 30] = [
    'E', 'E', 'F', 'F', 'E', 'E', 'F', 'F', 'E', 'E', // phase 1
    'G', 'G', 'H', 'H', 'G', 'G', 'H', 'H', 'G', 'G', // phase 2
    'E', 'E', 'F', 'F', 'E', 'E', 'F', 'F', 'E', 'E', // phase 3
];

/// The 30-window pattern of W5: W4 with the phases inverted —
/// disjunction-heavy outer phases, range/IN-heavy middle.
pub const W5_PATTERN: [char; 30] = [
    'G', 'G', 'H', 'H', 'G', 'G', 'H', 'H', 'G', 'G', // phase 1
    'E', 'E', 'F', 'F', 'E', 'E', 'F', 'F', 'E', 'E', // phase 2
    'G', 'G', 'H', 'H', 'G', 'G', 'H', 'H', 'G', 'G', // phase 3
];

/// Workload W4 (range/IN-heavy) at paper scale.
pub fn w4() -> WorkloadSpec {
    w4_with(&PaperParams::default())
}

/// Workload W4 with custom scale.
pub fn w4_with(params: &PaperParams) -> WorkloadSpec {
    from_pattern(params, &W4_PATTERN)
}

/// Workload W5 (disjunction-heavy) at paper scale.
pub fn w5() -> WorkloadSpec {
    w5_with(&PaperParams::default())
}

/// Workload W5 with custom scale.
pub fn w5_with(params: &PaperParams) -> WorkloadSpec {
    from_pattern(params, &W5_PATTERN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w1_matches_table2() {
        let spec = w1();
        assert_eq!(spec.total_queries(), 15_000);
        assert_eq!(spec.window_count(), 30);
        let labels = spec.window_labels().join("");
        assert_eq!(labels, "AABBAABBAACCDDCCDDCCAABBAABBAA");
    }

    #[test]
    fn w2_has_minor_shift_every_window() {
        let labels = w2().window_labels().join("");
        assert_eq!(labels, "ABABABABABCDCDCDCDCDABABABABAB");
    }

    #[test]
    fn w3_is_w1_out_of_phase() {
        let w1l = w1().window_labels().join("");
        let w3l = w3().window_labels().join("");
        // Every window label differs (A↔B, C↔D swapped).
        for (a, b) in w1l.chars().zip(w3l.chars()) {
            assert_ne!(a, b);
        }
        assert_eq!(w3l, "BBAABBAABBDDCCDDCCDDBBAABBAABB");
    }

    #[test]
    fn major_shifts_align_across_workloads() {
        // Phases: windows 0..10 use {A,B}, 10..20 use {C,D}, 20..30 {A,B}.
        for spec in [w1(), w2(), w3()] {
            for (i, label) in spec.window_labels().iter().enumerate() {
                let phase2 = (10..20).contains(&i);
                let in_cd = matches!(*label, "C" | "D");
                assert_eq!(phase2, in_cd, "window {i} of some workload");
            }
        }
    }

    #[test]
    fn w4_and_w5_exercise_the_predicate_vocabulary() {
        let params = PaperParams {
            domain: 1000,
            window_len: 100,
            ..Default::default()
        };
        for (spec, outer, inner) in [
            (w4_with(&params), "EF", "GH"),
            (w5_with(&params), "GH", "EF"),
        ] {
            assert_eq!(spec.window_count(), 30);
            for (i, label) in spec.window_labels().iter().enumerate() {
                let expect = if (10..20).contains(&i) { inner } else { outer };
                assert!(
                    expect.contains(*label),
                    "window {i} labelled {label}, expected one of {expect}"
                );
            }
        }
        // Generated statements actually include ranges, IN-lists, and
        // disjunctions (the point of the new vocabulary).
        let trace = crate::generate(&w4_with(&params), 11);
        let (mut ranges, mut ins, mut ors) = (0, 0, 0);
        for stmt in trace.statements() {
            for c in stmt.conditions() {
                match c {
                    cdpd_sql::Condition::Range { .. } => ranges += 1,
                    cdpd_sql::Condition::In { .. } => ins += 1,
                    cdpd_sql::Condition::Or(_) => ors += 1,
                    cdpd_sql::Condition::Eq { .. } => {}
                }
            }
        }
        assert!(ranges > 100, "only {ranges} range predicates");
        assert!(ins > 100, "only {ins} IN predicates");
        assert!(ors > 100, "only {ors} OR predicates");
    }

    #[test]
    fn custom_scale() {
        let p = PaperParams {
            table: "orders".into(),
            domain: 1000,
            window_len: 50,
        };
        let spec = w1_with(&p);
        assert_eq!(spec.table, "orders");
        assert_eq!(spec.total_queries(), 1500);
    }
}

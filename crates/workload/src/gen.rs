use crate::spec::WorkloadSpec;
use crate::trace::Trace;
use cdpd_testkit::Prng;

/// Generate a concrete statement trace from a spec, deterministically:
/// the same `(spec, seed)` always yields byte-identical traces, which is
/// what makes every experiment in the bench harness reproducible.
pub fn generate(spec: &WorkloadSpec, seed: u64) -> Trace {
    let mut rng = Prng::seed_from_u64(seed);
    let mut statements = Vec::with_capacity(spec.total_queries());
    for mix in &spec.windows {
        for _ in 0..spec.window_len {
            statements.push(mix.sample(&mut rng, &spec.table, spec.domain));
        }
    }
    Trace::new(spec.table.clone(), statements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::QueryMix;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::new(
            "t",
            1000,
            100,
            vec![QueryMix::paper_a(), QueryMix::paper_c()],
        )
        .unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = small_spec();
        let t1 = generate(&spec, 42);
        let t2 = generate(&spec, 42);
        let t3 = generate(&spec, 43);
        assert_eq!(t1.statements(), t2.statements());
        assert_ne!(t1.statements(), t3.statements());
    }

    #[test]
    fn windows_use_their_mix() {
        let spec = small_spec();
        let trace = generate(&spec, 1);
        assert_eq!(trace.len(), 200);
        // First window is mix A: no more than a handful of c/d queries
        // would be c-heavy; second window is mix C: mostly c/d.
        let heavy_cd = |range: std::ops::Range<usize>| {
            trace.statements()[range]
                .iter()
                .filter(|s| matches!(s.conditions()[0].column(), "c" | "d"))
                .count()
        };
        assert!(heavy_cd(0..100) < 40);
        assert!(heavy_cd(100..200) > 60);
    }
}

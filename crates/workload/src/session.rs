//! Multi-session workload shaping: deal one recorded [`Trace`] out to
//! N concurrent sessions and reconstruct the canonical serial order.
//!
//! The serving loop (`cdpd-server`) executes statements from many
//! connections at once; the serializability gate needs a *reference*
//! serial interleaving to compare against. This module fixes that
//! reference deterministically: [`partition`] deals statements
//! round-robin (statement `i` goes to session `i % n`), and
//! [`SessionWorkload::serial_interleaving`] re-deals them back into the
//! original trace order. A concurrent run of the partitioned sessions
//! is correct iff its observable results match replaying that serial
//! order — which is exactly the original trace.
//!
//! [`retarget`] clones a trace onto another table name, so one
//! generated workload can drive N sessions on N *disjoint* tables —
//! the configuration where concurrent execution must be bit-identical
//! to serial, not merely equivalent.

use crate::trace::Trace;
use cdpd_sql::Dml;
use cdpd_types::{Error, Result};

/// A trace dealt out to a fixed number of sessions, round-robin.
#[derive(Clone, Debug)]
pub struct SessionWorkload {
    sessions: Vec<Trace>,
}

impl SessionWorkload {
    /// Per-session traces, in session order. Session `s` holds the
    /// original statements `s, s + n, s + 2n, …` in trace order.
    pub fn sessions(&self) -> &[Trace] {
        &self.sessions
    }

    /// Number of sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Total statements across all sessions (= the source trace's
    /// length).
    pub fn len(&self) -> usize {
        self.sessions.iter().map(Trace::len).sum()
    }

    /// True if no statements were dealt.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical serial interleaving: statements re-dealt
    /// round-robin back into one sequence. For a workload built by
    /// [`partition`] this reproduces the source trace exactly — the
    /// reference order the serializability gate replays.
    pub fn serial_interleaving(&self) -> Vec<Dml> {
        let mut cursors: Vec<std::slice::Iter<'_, Dml>> = self
            .sessions
            .iter()
            .map(|t| t.statements().iter())
            .collect();
        let mut out = Vec::with_capacity(self.len());
        let mut exhausted = 0;
        while exhausted < cursors.len() {
            exhausted = 0;
            for cur in &mut cursors {
                match cur.next() {
                    Some(stmt) => out.push(stmt.clone()),
                    None => exhausted += 1,
                }
            }
        }
        out
    }
}

/// Deal `trace` out to `sessions` concurrent sessions, round-robin:
/// statement `i` goes to session `i % sessions`. Every session's local
/// statement order preserves trace order, so the round-robin re-deal
/// ([`SessionWorkload::serial_interleaving`]) is the original trace.
///
/// # Errors
/// `sessions` must be positive.
pub fn partition(trace: &Trace, sessions: usize) -> Result<SessionWorkload> {
    if sessions == 0 {
        return Err(Error::InvalidArgument(
            "session count must be positive".into(),
        ));
    }
    let mut per: Vec<Vec<Dml>> = vec![Vec::with_capacity(trace.len().div_ceil(sessions)); sessions];
    for (i, stmt) in trace.statements().iter().enumerate() {
        per[i % sessions].push(stmt.clone());
    }
    Ok(SessionWorkload {
        sessions: per
            .into_iter()
            .map(|stmts| Trace::new(trace.table(), stmts))
            .collect(),
    })
}

/// Clone `trace` with every statement retargeted to `table`. Point
/// predicates, sets, and values are untouched — only the table name
/// changes — so N retargeted copies drive N disjoint tables with the
/// same statement mix.
pub fn retarget(trace: &Trace, table: &str) -> Trace {
    let statements = trace
        .statements()
        .iter()
        .map(|stmt| {
            let mut stmt = stmt.clone();
            match &mut stmt {
                Dml::Select(s) => s.table = table.to_owned(),
                Dml::Update(u) => u.table = table.to_owned(),
                Dml::Delete(d) => d.table = table.to_owned(),
            }
            stmt
        })
        .collect();
    Trace::new(table, statements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpd_sql::SelectStmt;

    fn trace_of(n: i64) -> Trace {
        Trace::from_selects(
            "t",
            (0..n).map(|i| SelectStmt::point("t", "a", i)).collect(),
        )
    }

    #[test]
    fn partition_deals_round_robin() {
        let trace = trace_of(7);
        let w = partition(&trace, 3).unwrap();
        assert_eq!(w.session_count(), 3);
        assert_eq!(w.len(), 7);
        let lens: Vec<usize> = w.sessions().iter().map(Trace::len).collect();
        assert_eq!(lens, vec![3, 2, 2]);
    }

    #[test]
    fn serial_interleaving_reproduces_trace() {
        let trace = trace_of(10);
        for n in [1, 2, 3, 8, 10, 16] {
            let w = partition(&trace, n).unwrap();
            assert_eq!(w.serial_interleaving(), trace.statements());
        }
    }

    #[test]
    fn retarget_renames_every_statement() {
        let trace = trace_of(4);
        let moved = retarget(&trace, "t2");
        assert_eq!(moved.table(), "t2");
        assert_eq!(moved.len(), 4);
        assert!(moved.statements().iter().all(|s| s.table() == "t2"));
    }

    #[test]
    fn zero_sessions_rejected() {
        assert!(partition(&trace_of(1), 0).is_err());
    }
}

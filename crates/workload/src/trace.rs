use cdpd_sql::{Dml, SelectStmt, Statement};
use cdpd_types::{Error, Result};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// A recorded workload: an ordered sequence of statements against one
/// table — the advisor's input per the paper's problem definition
/// (*"we are given, in advance, a description of the database system
/// workload consisting of a sequence of queries and updates"*).
///
/// Persistence format is plain SQL, one statement per line: traces are
/// diffable, editable, and round-trip through the `cdpd-sql` parser
/// (no bespoke binary format to document or version).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trace {
    table: String,
    statements: Vec<Dml>,
}

impl Trace {
    /// Build a trace. Statements must all target `table`.
    pub fn new(table: impl Into<String>, statements: Vec<Dml>) -> Trace {
        let table = table.into();
        debug_assert!(statements.iter().all(|s| s.table() == table));
        Trace { table, statements }
    }

    /// Convenience: build a read-only trace from queries.
    pub fn from_selects(table: impl Into<String>, selects: Vec<SelectStmt>) -> Trace {
        Trace::new(table, selects.into_iter().map(Dml::Select).collect())
    }

    /// The traced table.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The statement sequence.
    pub fn statements(&self) -> &[Dml] {
        &self.statements
    }

    /// Fraction of statements that are writes.
    pub fn write_fraction(&self) -> f64 {
        if self.statements.is_empty() {
            return 0.0;
        }
        self.statements.iter().filter(|s| s.is_write()).count() as f64
            / self.statements.len() as f64
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Write the trace as SQL text, one statement per line.
    pub fn save(&self, path: &Path) -> Result<()> {
        let file = std::fs::File::create(path)?;
        let mut out = BufWriter::new(file);
        for stmt in &self.statements {
            writeln!(out, "{stmt};")?;
        }
        out.flush()?;
        Ok(())
    }

    /// Read a trace back from SQL text.
    ///
    /// # Errors
    /// Fails if any line is not a `SELECT`, or statements target more
    /// than one table.
    pub fn load(path: &Path) -> Result<Trace> {
        let file = std::fs::File::open(path)?;
        let mut statements = Vec::new();
        let mut table: Option<String> = None;
        let mut line = String::new();
        let mut reader = BufReader::new(file);
        let mut lineno = 0usize;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            lineno += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with("--") {
                continue;
            }
            let stmt: Dml = match cdpd_sql::parse(trimmed)? {
                Statement::Select(s) => Dml::Select(s),
                Statement::Update(u) => Dml::Update(u),
                Statement::Delete(d) => Dml::Delete(d),
                other => {
                    return Err(Error::InvalidArgument(format!(
                        "trace line {lineno} is not a workload statement (DML): {other}"
                    )))
                }
            };
            match &table {
                None => table = Some(stmt.table().to_owned()),
                Some(t) if *t != stmt.table() => {
                    return Err(Error::InvalidArgument(format!(
                        "trace mixes tables {t} and {} (line {lineno})",
                        stmt.table()
                    )))
                }
                Some(_) => {}
            }
            statements.push(stmt);
        }
        let table = table.ok_or_else(|| Error::InvalidArgument("empty trace file".into()))?;
        Ok(Trace { table, statements })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let upd = match cdpd_sql::parse("UPDATE t SET b = 9 WHERE a = 2").unwrap() {
            Statement::Update(u) => Dml::Update(u),
            _ => unreachable!(),
        };
        Trace::new(
            "t",
            vec![
                SelectStmt::point("t", "a", 1).into(),
                upd,
                SelectStmt::point("t", "a", 3).into(),
            ],
        )
    }

    #[test]
    fn write_fraction_counts_dml() {
        let t = sample_trace();
        assert!((t.write_fraction() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(Trace::from_selects("t", vec![]).write_fraction(), 0.0);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("cdpd_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.sql");
        let trace = sample_trace();
        trace.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        assert_eq!(trace, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_skips_comments_and_blanks() {
        let dir = std::env::temp_dir().join("cdpd_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("commented.sql");
        std::fs::write(
            &path,
            "-- header\n\nSELECT a FROM t WHERE a = 1;\n\n-- tail\nSELECT b FROM t WHERE b = 2;\n",
        )
        .unwrap();
        let loaded = Trace::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_ddl_and_mixed_tables() {
        let dir = std::env::temp_dir().join("cdpd_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ddl = dir.join("ddl.sql");
        std::fs::write(&ddl, "DROP INDEX i;\n").unwrap();
        assert!(Trace::load(&ddl).is_err());
        let mixed = dir.join("mixed.sql");
        std::fs::write(
            &mixed,
            "SELECT a FROM t WHERE a = 1;\nSELECT a FROM u WHERE a = 1;\n",
        )
        .unwrap();
        assert!(Trace::load(&mixed).is_err());
        let empty = dir.join("empty.sql");
        std::fs::write(&empty, "-- nothing\n").unwrap();
        assert!(Trace::load(&empty).is_err());
        for p in [ddl, mixed, empty] {
            std::fs::remove_file(&p).ok();
        }
    }
}

//! Workload modelling: query mixes, phase-structured generation,
//! traces, and window summarization.
//!
//! This crate reproduces the paper's experimental workloads exactly:
//!
//! * [`QueryMix`] — a weighted distribution over point-query templates
//!   (`SELECT <col> FROM t WHERE <col> = <randValue>`), with the four
//!   mixes of Table 1 as constructors ([`QueryMix::paper_a`] …).
//! * [`WorkloadSpec`] — a sequence of fixed-length windows, each drawing
//!   from one mix. [`paper::w1`], [`paper::w2`], and [`paper::w3`] build
//!   the three 15,000-query workloads of Table 2 (three phases with
//!   major shifts every 5,000 queries and minor shifts every 1,000 /
//!   500 / 1,000-out-of-phase queries respectively).
//! * [`generate`] — deterministic trace generation from a seed.
//! * [`Trace`] — a recorded statement sequence; serialized as plain SQL
//!   text (one statement per line), so traces are diffable, hand-
//!   editable, and round-trip through the `cdpd-sql` parser.
//! * [`summarize`] — compresses a trace into weighted statement blocks
//!   per window, the granularity at which the design advisor solves
//!   (the paper's designs in Table 2 are per-500-query windows).
//! * [`stream`] — the online counterpart: [`StatementStream`] builds
//!   the same blocks and profiles one statement at a time, and
//!   [`OnlineShiftDetector`] reproduces batch shift verdicts from a
//!   live feed (bit-identical to the batch pipeline, by test).

#![warn(missing_docs)]

pub mod analysis;
mod gen;
mod mix;
pub mod paper;
pub mod perturb;
pub mod session;
mod spec;
pub mod stream;
mod summarize;
mod trace;

pub use gen::generate;
pub use mix::{QueryMix, Template};
pub use session::{partition, retarget, SessionWorkload};
pub use spec::WorkloadSpec;
pub use stream::{stream_trace, OnlineShiftDetector, StatementStream, StreamState};
pub use summarize::{summarize, Block, SummarizedWorkload, WeightedStatement};
pub use trace::Trace;

//! Trace analysis: detect workload shifts and grade them major/minor —
//! §2's "choose k from domain knowledge" turned into measurement, and a
//! cost-model-free complement to `cdpd-core`'s k-selection sweeps.
//!
//! The pipeline:
//!
//! 1. [`window_profiles`] — summarize each window of the trace as a
//!    distribution over statement shapes (which column is predicated,
//!    read vs write);
//! 2. [`shift_scores`] — L1 distance between consecutive windows'
//!    distributions (0 = identical mix, 2 = disjoint mixes);
//! 3. [`detect_shifts`] — threshold the scores against a noise floor
//!    and, when the significant shifts split into clearly separated
//!    magnitude clusters (W1's minor A↔B at ≈0.6 vs major A↔C at
//!    ≈1.2), grade them;
//! 4. [`suggest_k_from_trace`] — the budget the paper's rule of thumb
//!    would pick: the number of *major* shifts when a major/minor
//!    hierarchy exists, otherwise the number of significant shifts.

use crate::trace::Trace;
use cdpd_sql::Dml;
use cdpd_types::{Error, Result};
use std::collections::BTreeMap;

/// A window's statement-shape distribution: fraction of statements per
/// shape key (predicate column + read/write kind).
#[derive(Clone, PartialEq, Debug)]
pub struct WindowProfile {
    /// `shape → fraction` (fractions sum to ~1).
    pub fractions: BTreeMap<String, f64>,
}

impl WindowProfile {
    /// L1 distance between two profiles, in `[0, 2]`.
    pub fn l1(&self, other: &WindowProfile) -> f64 {
        let keys: std::collections::BTreeSet<&String> = self
            .fractions
            .keys()
            .chain(other.fractions.keys())
            .collect();
        keys.into_iter()
            .map(|k| {
                (self.fractions.get(k).copied().unwrap_or(0.0)
                    - other.fractions.get(k).copied().unwrap_or(0.0))
                .abs()
            })
            .sum()
    }
}

/// The shape key of one statement: statement kind plus predicate
/// column(s) — the features the advisor's cost model keys on.
pub(crate) fn shape(stmt: &Dml) -> String {
    let kind = match stmt {
        Dml::Select(_) => "r",
        Dml::Update(_) => "u",
        Dml::Delete(_) => "d",
    };
    // columns() walks OR branches too, so a disjunction over (a, b)
    // keys differently from a point query on a.
    let mut cols: Vec<&str> = stmt.conditions().iter().flat_map(|c| c.columns()).collect();
    cols.sort_unstable();
    cols.dedup();
    format!("{kind}:{}", cols.join(","))
}

/// Per-window statement-shape distributions.
pub fn window_profiles(trace: &Trace, window_len: usize) -> Result<Vec<WindowProfile>> {
    if window_len == 0 {
        return Err(Error::InvalidArgument("window_len must be positive".into()));
    }
    let stmts = trace.statements();
    let mut out = Vec::new();
    let mut start = 0;
    while start < stmts.len() {
        let end = (start + window_len).min(stmts.len());
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for stmt in &stmts[start..end] {
            *counts.entry(shape(stmt)).or_insert(0) += 1;
        }
        let n = (end - start) as f64;
        out.push(WindowProfile {
            fractions: counts.into_iter().map(|(k, c)| (k, c as f64 / n)).collect(),
        });
        start = end;
    }
    Ok(out)
}

/// `scores[i]` = L1 distance between windows `i` and `i + 1`.
pub fn shift_scores(profiles: &[WindowProfile]) -> Vec<f64> {
    profiles.windows(2).map(|w| w[0].l1(&w[1])).collect()
}

/// One detected shift.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Shift {
    /// The shift happens *entering* window `window` (1-based boundary
    /// `window - 1 → window`).
    pub window: usize,
    /// L1 magnitude of the distribution change.
    pub magnitude: f64,
    /// True if graded as a major shift.
    pub major: bool,
}

/// Absolute noise floor: same-mix windows differ by sampling noise
/// only; anything below this is not a shift. Measured on 500-statement
/// windows of the paper mixes, same-mix L1 distances stay below ~0.2
/// while the smallest real mix change (A↔B) scores ~0.5, so 0.3 sits
/// between the two populations with margin on both sides.
pub const NOISE_FLOOR: f64 = 0.3;
/// Minimum ratio between magnitude-cluster means to declare a
/// major/minor hierarchy.
pub const SEPARATION_RATIO: f64 = 1.5;

/// Detect and grade shifts. Scores below [`NOISE_FLOOR`] are sampling
/// noise. When the remaining magnitudes split into two clusters whose
/// means differ by at least [`SEPARATION_RATIO`], the upper cluster is
/// graded major; otherwise no hierarchy exists and every significant
/// shift is graded major (all shifts are equally "the trend").
pub fn detect_shifts(profiles: &[WindowProfile]) -> Vec<Shift> {
    grade_scores(&shift_scores(profiles))
}

/// Grade a boundary-score sequence into [`Shift`]s. `scores[i]` is the
/// L1 distance across the boundary entering window `i + 1`, exactly as
/// produced by [`shift_scores`]. This is the shared back half of
/// [`detect_shifts`]; the streaming detector
/// (`stream::OnlineShiftDetector`) feeds it incrementally computed
/// scores, so online and batch verdicts agree by construction.
pub fn grade_scores(scores: &[f64]) -> Vec<Shift> {
    let significant: Vec<(usize, f64)> = scores
        .iter()
        .enumerate()
        .filter(|(_, &s)| s > NOISE_FLOOR)
        .map(|(i, &s)| (i + 1, s))
        .collect();
    if significant.is_empty() {
        return Vec::new();
    }
    // 1-D two-means on the magnitudes, initialized at min/max.
    let mags: Vec<f64> = significant.iter().map(|&(_, s)| s).collect();
    let (mut lo, mut hi) = (
        mags.iter().cloned().fold(f64::INFINITY, f64::min),
        mags.iter().cloned().fold(0.0f64, f64::max),
    );
    for _ in 0..32 {
        let (mut lo_sum, mut lo_n, mut hi_sum, mut hi_n) = (0.0, 0u32, 0.0, 0u32);
        for &m in &mags {
            if (m - lo).abs() <= (m - hi).abs() {
                lo_sum += m;
                lo_n += 1;
            } else {
                hi_sum += m;
                hi_n += 1;
            }
        }
        let new_lo = if lo_n > 0 { lo_sum / lo_n as f64 } else { lo };
        let new_hi = if hi_n > 0 { hi_sum / hi_n as f64 } else { hi };
        if (new_lo - lo).abs() < 1e-12 && (new_hi - hi).abs() < 1e-12 {
            break;
        }
        lo = new_lo;
        hi = new_hi;
    }
    let hierarchical = hi > lo * SEPARATION_RATIO;
    significant
        .into_iter()
        .map(|(window, magnitude)| Shift {
            window,
            magnitude,
            major: !hierarchical || (magnitude - hi).abs() < (magnitude - lo).abs(),
        })
        .collect()
}

/// The paper's §2 rule of thumb, measured: *"choose a value of k equal
/// to … the number of anticipated fluctuations"* — here, the number of
/// major shifts detected in the trace.
pub fn suggest_k_from_trace(trace: &Trace, window_len: usize) -> Result<usize> {
    let profiles = window_profiles(trace, window_len)?;
    Ok(detect_shifts(&profiles).iter().filter(|s| s.major).count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, paper, QueryMix, WorkloadSpec};

    fn trace_of(spec: &WorkloadSpec) -> Trace {
        generate(spec, 5)
    }

    #[test]
    fn w1_has_two_major_shifts() {
        let params = paper::PaperParams {
            domain: 2_000,
            ..Default::default()
        };
        let trace = generate(&paper::w1_with(&params), 5);
        let profiles = window_profiles(&trace, 500).unwrap();
        assert_eq!(profiles.len(), 30);
        let shifts = detect_shifts(&profiles);
        let majors: Vec<usize> = shifts
            .iter()
            .filter(|s| s.major)
            .map(|s| s.window)
            .collect();
        assert_eq!(majors, vec![10, 20], "{shifts:?}");
        // Minor shifts are detected but graded minor.
        let minors = shifts.iter().filter(|s| !s.major).count();
        assert!(minors >= 10, "{shifts:?}");
        assert_eq!(suggest_k_from_trace(&trace, 500).unwrap(), 2);
    }

    #[test]
    fn w2_and_w3_also_suggest_two() {
        let params = paper::PaperParams {
            domain: 2_000,
            ..Default::default()
        };
        for spec in [paper::w2_with(&params), paper::w3_with(&params)] {
            let trace = trace_of(&spec);
            assert_eq!(suggest_k_from_trace(&trace, 500).unwrap(), 2, "{spec:?}");
        }
    }

    #[test]
    fn stable_workload_suggests_zero() {
        let spec = WorkloadSpec::new("t", 2_000, 500, vec![QueryMix::paper_a(); 12]).unwrap();
        let trace = trace_of(&spec);
        assert_eq!(suggest_k_from_trace(&trace, 500).unwrap(), 0);
    }

    #[test]
    fn flat_hierarchy_counts_every_shift() {
        // Only A↔B alternation: no major/minor structure, so every
        // shift is the trend and the budget covers them all.
        let mut windows = Vec::new();
        for i in 0..8 {
            windows.push(if i % 2 == 0 {
                QueryMix::paper_a()
            } else {
                QueryMix::paper_b()
            });
        }
        let spec = WorkloadSpec::new("t", 2_000, 500, windows).unwrap();
        let trace = trace_of(&spec);
        assert_eq!(suggest_k_from_trace(&trace, 500).unwrap(), 7);
    }

    #[test]
    fn profiles_separate_reads_and_writes() {
        use crate::Template;
        let read = QueryMix::new("r", &[("a", 1)]).unwrap();
        let write = QueryMix::with_templates(
            "w",
            vec![(
                Template::Update {
                    set_column: "b".into(),
                    where_column: "a".into(),
                },
                1,
            )],
        )
        .unwrap();
        let spec = WorkloadSpec::new("t", 100, 50, vec![read, write]).unwrap();
        let trace = trace_of(&spec);
        let profiles = window_profiles(&trace, 50).unwrap();
        // Same predicate column, different kind: full L1 distance.
        assert!(profiles[0].l1(&profiles[1]) > 1.9);
        assert_eq!(suggest_k_from_trace(&trace, 50).unwrap(), 1);
    }

    #[test]
    fn degenerate_inputs() {
        let trace = Trace::from_selects("t", vec![cdpd_sql::SelectStmt::point("t", "a", 1)]);
        assert!(window_profiles(&trace, 0).is_err());
        assert_eq!(suggest_k_from_trace(&trace, 10).unwrap(), 0);
        assert!(detect_shifts(&[]).is_empty());
    }
}

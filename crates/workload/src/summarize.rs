use crate::trace::Trace;
use cdpd_sql::{Condition, Dml};
use cdpd_types::{Error, Result};
use std::collections::HashMap;

/// One statement with a multiplicity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WeightedStatement {
    /// A representative statement (the first seen of its group).
    pub statement: Dml,
    /// How many trace statements this entry stands for.
    pub count: u64,
}

/// One summarized window: the advisor's "statement" `S_i`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    /// Trace positions `[start, start + len)` this block covers.
    pub start: usize,
    /// Number of raw statements in the block.
    pub len: usize,
    /// Deduplicated weighted statements.
    pub weighted: Vec<WeightedStatement>,
}

/// A trace compressed into fixed-length weighted blocks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SummarizedWorkload {
    /// Target table.
    pub table: String,
    /// The blocks, in trace order.
    pub blocks: Vec<Block>,
}

impl SummarizedWorkload {
    /// Number of blocks (= advisor problem stages).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total raw statements summarized.
    pub fn total_statements(&self) -> u64 {
        self.blocks.iter().map(|b| b.len as u64).sum()
    }
}

/// Group a statement into its *cost-equivalence class*.
///
/// Two point queries that differ only in the compared literal have the
/// same estimated cost under every configuration (equality selectivity
/// is `1/distinct`, independent of the literal), so they can share one
/// what-if call. Queries with range predicates have value-dependent
/// selectivity and stay singleton groups.
pub(crate) fn cost_signature(stmt: &Dml) -> Option<String> {
    let mut sig = format!("{}|", stmt.table());
    match stmt {
        Dml::Select(s) => sig.push_str(&format!("S{:?}|", s.projection)),
        Dml::Update(u) => {
            // Updates with the same SET columns and predicate columns
            // cost the same regardless of literals.
            let mut set: Vec<&str> = u.set.iter().map(|(c, _)| c.as_str()).collect();
            set.sort_unstable();
            sig.push_str(&format!("U{}|", set.join(",")));
        }
        Dml::Delete(_) => sig.push_str("D|"),
    }
    let mut cols: Vec<&str> = Vec::new();
    for c in stmt.conditions() {
        match c {
            Condition::Eq { column, .. } => cols.push(column),
            // Range, IN, and OR selectivities are value-dependent
            // (histogram point/range estimates): singleton groups.
            Condition::Range { .. } | Condition::In { .. } | Condition::Or(_) => return None,
        }
    }
    cols.sort_unstable();
    sig.push_str(&cols.join(","));
    Some(sig)
}

/// Compress `trace` into blocks of `window_len` statements, deduplicating
/// cost-equivalent statements within each block.
///
/// For the paper's workloads this turns 15,000 statements into 30 blocks
/// of ≤ 4 weighted statements each — the granularity at which Table 2
/// reports designs, and the difference between a 15,000-stage and a
/// 30-stage sequence graph.
pub fn summarize(trace: &Trace, window_len: usize) -> Result<SummarizedWorkload> {
    if window_len == 0 {
        return Err(Error::InvalidArgument("window_len must be positive".into()));
    }
    let mut blocks = Vec::new();
    let stmts = trace.statements();
    let mut start = 0;
    while start < stmts.len() {
        let end = (start + window_len).min(stmts.len());
        let mut order: Vec<WeightedStatement> = Vec::new();
        let mut by_sig: HashMap<String, usize> = HashMap::new();
        for stmt in &stmts[start..end] {
            match cost_signature(stmt) {
                Some(sig) => match by_sig.get(&sig) {
                    Some(&i) => order[i].count += 1,
                    None => {
                        by_sig.insert(sig, order.len());
                        order.push(WeightedStatement {
                            statement: stmt.clone(),
                            count: 1,
                        });
                    }
                },
                None => order.push(WeightedStatement {
                    statement: stmt.clone(),
                    count: 1,
                }),
            }
        }
        blocks.push(Block {
            start,
            len: end - start,
            weighted: order,
        });
        start = end;
    }
    Ok(SummarizedWorkload {
        table: trace.table().to_owned(),
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, paper};

    #[test]
    fn paper_workload_compresses_to_30_blocks() {
        let params = paper::PaperParams {
            domain: 1000,
            ..Default::default()
        };
        let trace = generate(&paper::w1_with(&params), 7);
        let sum = summarize(&trace, 500).unwrap();
        assert_eq!(sum.len(), 30);
        assert_eq!(sum.total_statements(), 15_000);
        for block in &sum.blocks {
            assert_eq!(block.len, 500);
            assert!(
                block.weighted.len() <= 4,
                "point queries on 4 columns → ≤ 4 groups, got {}",
                block.weighted.len()
            );
            assert_eq!(block.weighted.iter().map(|w| w.count).sum::<u64>(), 500);
        }
    }

    #[test]
    fn weights_reflect_mix() {
        let params = paper::PaperParams {
            domain: 1000,
            ..Default::default()
        };
        let trace = generate(&paper::w1_with(&params), 7);
        let sum = summarize(&trace, 500).unwrap();
        // First window of W1 is mix A: the dominant group targets `a`.
        let block = &sum.blocks[0];
        let top = block.weighted.iter().max_by_key(|w| w.count).unwrap();
        assert_eq!(top.statement.conditions()[0].column(), "a");
        assert!(top.count > 200, "~55% of 500, got {}", top.count);
    }

    #[test]
    fn ragged_tail_window() {
        let trace = Trace::from_selects(
            "t",
            (0..7)
                .map(|i| cdpd_sql::SelectStmt::point("t", "a", i))
                .collect(),
        );
        let sum = summarize(&trace, 3).unwrap();
        assert_eq!(sum.len(), 3);
        assert_eq!(sum.blocks[2].len, 1);
        assert_eq!(sum.total_statements(), 7);
    }

    #[test]
    fn range_queries_stay_singletons() {
        let mut stmts: Vec<Dml> = vec![
            cdpd_sql::SelectStmt::point("t", "a", 1).into(),
            cdpd_sql::SelectStmt::point("t", "a", 2).into(),
        ];
        let range = match cdpd_sql::parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5").unwrap() {
            cdpd_sql::Statement::Select(s) => Dml::Select(s),
            _ => unreachable!(),
        };
        stmts.push(range.clone());
        stmts.push(range);
        let sum = summarize(&Trace::new("t", stmts), 10).unwrap();
        let block = &sum.blocks[0];
        // 2 point queries merge; 2 identical ranges stay separate.
        assert_eq!(block.weighted.len(), 3);
        assert_eq!(block.weighted[0].count, 2);
    }

    #[test]
    fn updates_group_by_set_and_where_columns() {
        let u = |set: &str, wh: &str, v: i64| -> Dml {
            match cdpd_sql::parse(&format!("UPDATE t SET {set} = {v} WHERE {wh} = {v}")).unwrap() {
                cdpd_sql::Statement::Update(u) => Dml::Update(u),
                _ => unreachable!(),
            }
        };
        let stmts = vec![
            u("a", "b", 1),
            u("a", "b", 2),
            u("c", "b", 3),
            cdpd_sql::SelectStmt::point("t", "b", 4).into(),
        ];
        let sum = summarize(&Trace::new("t", stmts), 10).unwrap();
        let block = &sum.blocks[0];
        // (SET a WHERE b) ×2 groups; (SET c WHERE b) alone; the select
        // never merges with updates.
        assert_eq!(block.weighted.len(), 3);
        assert_eq!(block.weighted[0].count, 2);
    }

    #[test]
    fn zero_window_rejected() {
        let trace = Trace::from_selects("t", vec![cdpd_sql::SelectStmt::point("t", "a", 1)]);
        assert!(summarize(&trace, 0).is_err());
    }
}

//! Workload perturbations: generate *plausible tomorrows* from a
//! captured spec.
//!
//! §6.3's point is that the captured trace is "a representative of the
//! type of workload that is anticipated", not the exact future. These
//! helpers produce held-out variants in the same spirit the paper
//! built W2 and W3 from W1 — same major structure, different details —
//! for cross-validated k selection (`cdpd_core::kselect::robust_curve`
//! via the facade's `suggest_k_robust`).

use crate::mix::QueryMix;
use crate::spec::WorkloadSpec;

/// Rotate the window→mix assignment by `n` windows (wrapping): the same
/// mixes arrive, shifted in time — the out-of-phase drift W3 models.
pub fn rotate_windows(spec: &WorkloadSpec, n: usize) -> WorkloadSpec {
    let len = spec.windows.len();
    let mut windows: Vec<QueryMix> = Vec::with_capacity(len);
    for i in 0..len {
        windows.push(spec.windows[(i + n) % len].clone());
    }
    WorkloadSpec::new(spec.table.clone(), spec.domain, spec.window_len, windows)
        .expect("rotation preserves validity")
}

/// Swap each adjacent window pair (`w0 w1 w2 w3 … → w1 w0 w3 w2 …`):
/// minor shifts arrive in the opposite order within each pair, another
/// W3-style distortion that leaves phase boundaries intact for
/// even-aligned phases.
pub fn swap_adjacent_windows(spec: &WorkloadSpec) -> WorkloadSpec {
    let mut windows = spec.windows.clone();
    for pair in windows.chunks_mut(2) {
        if pair.len() == 2 {
            pair.swap(0, 1);
        }
    }
    WorkloadSpec::new(spec.table.clone(), spec.domain, spec.window_len, windows)
        .expect("swap preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn rotation_shifts_labels() {
        let spec = paper::w1_with(&paper::PaperParams {
            domain: 1000,
            window_len: 10,
            ..Default::default()
        });
        let rot = rotate_windows(&spec, 1);
        assert_eq!(rot.window_count(), spec.window_count());
        let orig = spec.window_labels();
        let rotated = rot.window_labels();
        for i in 0..orig.len() {
            assert_eq!(rotated[i], orig[(i + 1) % orig.len()]);
        }
        // Full rotation is the identity.
        assert_eq!(rotate_windows(&spec, orig.len()).window_labels(), orig);
    }

    #[test]
    fn swapping_flips_pairs() {
        let spec = paper::w1_with(&paper::PaperParams {
            domain: 1000,
            window_len: 10,
            ..Default::default()
        });
        let swapped = swap_adjacent_windows(&spec);
        // W1 is AABB…; swapping within pairs keeps AABB (pairs are
        // homogeneous), so check on W2 instead, where it matters.
        assert_eq!(swapped.window_labels(), spec.window_labels());
        let w2 = paper::w2_with(&paper::PaperParams {
            domain: 1000,
            window_len: 10,
            ..Default::default()
        });
        let swapped = swap_adjacent_windows(&w2);
        assert_eq!(
            swapped.window_labels().join(""),
            "BABABABABADCDCDCDCDCBABABABABA",
            "W2's alternation flips phase"
        );
    }
}

use cdpd_sql::{Condition, DeleteStmt, Dml, Projection, SelectStmt, UpdateStmt};
use cdpd_testkit::Prng;
use cdpd_types::{Error, Result, Value};
use std::fmt;

/// One statement template a mix can draw: the paper's point query, or
/// the write templates that make Definition 1's "queries *and updates*"
/// concrete.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Template {
    /// `SELECT col FROM t WHERE col = <v>` — the paper's template.
    Point {
        /// Queried (and predicated) column.
        column: String,
    },
    /// `SELECT col FROM t WHERE col >= <v> AND col < <v + span>` — a
    /// half-open range of fixed width.
    Range {
        /// Queried (and predicated) column.
        column: String,
        /// Range width in domain units; clamped to at least 1.
        span: i64,
    },
    /// `SELECT col FROM t WHERE col IN (<v1>, ..., <vn>)` with `n =
    /// list_len` independently drawn values (duplicates possible — the
    /// planner dedups at plan time).
    In {
        /// Queried (and predicated) column.
        column: String,
        /// Number of literals drawn per statement; clamped to ≥ 1.
        list_len: usize,
    },
    /// `SELECT left, right FROM t WHERE (left = <v1> OR right = <v2>)`
    /// — a cross-column disjunction, servable only by a rowid-union
    /// over two indexes.
    OrPair {
        /// First branch column.
        left: String,
        /// Second branch column.
        right: String,
    },
    /// `SELECT left, right FROM t WHERE left = <v1> AND right = <v2>`
    /// — a conjunction over two columns, servable by a composite index
    /// seek or a rowid intersection of two single-column indexes.
    EqPair {
        /// First predicated column.
        left: String,
        /// Second predicated column.
        right: String,
    },
    /// `UPDATE t SET set_column = <v1> WHERE where_column = <v2>`.
    Update {
        /// Column written.
        set_column: String,
        /// Column predicated on.
        where_column: String,
    },
    /// `DELETE FROM t WHERE where_column = <v>` followed logically by a
    /// compensating insert is *not* modelled; deletes shrink the table,
    /// so keep their weight low in long workloads.
    Delete {
        /// Column predicated on.
        where_column: String,
    },
}

impl Template {
    /// Whether draws from this template mutate the table.
    pub fn is_write(&self) -> bool {
        matches!(self, Template::Update { .. } | Template::Delete { .. })
    }

    fn sample(&self, rng: &mut Prng, table: &str, domain: i64) -> Dml {
        let v = rng.gen_range(0..domain.max(1));
        match self {
            Template::Point { column } => Dml::Select(SelectStmt::point(table, column, v)),
            Template::Range { column, span } => Dml::Select(SelectStmt {
                projection: Projection::Columns(vec![column.clone()]),
                table: table.to_owned(),
                conditions: vec![Condition::Range {
                    column: column.clone(),
                    lo: Some(Value::Int(v)),
                    lo_inclusive: true,
                    hi: Some(Value::Int(v.saturating_add((*span).max(1)))),
                    hi_inclusive: false,
                }],
                order_by: None,
                limit: None,
            }),
            Template::In { column, list_len } => {
                let n = (*list_len).max(1);
                let mut values = Vec::with_capacity(n);
                values.push(Value::Int(v));
                for _ in 1..n {
                    values.push(Value::Int(rng.gen_range(0..domain.max(1))));
                }
                Dml::Select(SelectStmt {
                    projection: Projection::Columns(vec![column.clone()]),
                    table: table.to_owned(),
                    conditions: vec![Condition::In {
                        column: column.clone(),
                        values,
                    }],
                    order_by: None,
                    limit: None,
                })
            }
            Template::OrPair { left, right } => {
                let v2 = rng.gen_range(0..domain.max(1));
                Dml::Select(SelectStmt {
                    projection: Projection::Columns(vec![left.clone(), right.clone()]),
                    table: table.to_owned(),
                    conditions: vec![Condition::Or(vec![
                        Condition::Eq {
                            column: left.clone(),
                            value: Value::Int(v),
                        },
                        Condition::Eq {
                            column: right.clone(),
                            value: Value::Int(v2),
                        },
                    ])],
                    order_by: None,
                    limit: None,
                })
            }
            Template::EqPair { left, right } => {
                let v2 = rng.gen_range(0..domain.max(1));
                Dml::Select(SelectStmt {
                    projection: Projection::Columns(vec![left.clone(), right.clone()]),
                    table: table.to_owned(),
                    conditions: vec![
                        Condition::Eq {
                            column: left.clone(),
                            value: Value::Int(v),
                        },
                        Condition::Eq {
                            column: right.clone(),
                            value: Value::Int(v2),
                        },
                    ],
                    order_by: None,
                    limit: None,
                })
            }
            Template::Update {
                set_column,
                where_column,
            } => {
                let nv = rng.gen_range(0..domain.max(1));
                Dml::Update(UpdateStmt {
                    table: table.to_owned(),
                    set: vec![(set_column.clone(), Value::Int(nv))],
                    conditions: vec![Condition::Eq {
                        column: where_column.clone(),
                        value: Value::Int(v),
                    }],
                })
            }
            Template::Delete { where_column } => Dml::Delete(DeleteStmt {
                table: table.to_owned(),
                conditions: vec![Condition::Eq {
                    column: where_column.clone(),
                    value: Value::Int(v),
                }],
            }),
        }
    }
}

/// A weighted distribution over statement templates: each draw picks a
/// template by weight and fills its literals uniformly over the value
/// domain.
///
/// Table 1 of the paper defines four point-query mixes over columns
/// `a`–`d`; they are available as [`QueryMix::paper_a`] through
/// [`QueryMix::paper_d`]. [`QueryMix::with_templates`] builds mixes
/// containing updates and deletes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryMix {
    /// Display name (e.g. `"A"`).
    pub name: String,
    /// `(template, weight)` pairs; weights are relative (need not sum
    /// to any particular total).
    pub templates: Vec<(Template, u32)>,
}

impl QueryMix {
    /// Build a point-query mix (the paper's shape); weights must not
    /// all be zero.
    pub fn new(name: impl Into<String>, weights: &[(&str, u32)]) -> Result<QueryMix> {
        Self::with_templates(
            name,
            weights
                .iter()
                .map(|(c, w)| {
                    (
                        Template::Point {
                            column: (*c).to_owned(),
                        },
                        *w,
                    )
                })
                .collect(),
        )
    }

    /// Build a mix from arbitrary templates.
    pub fn with_templates(
        name: impl Into<String>,
        templates: Vec<(Template, u32)>,
    ) -> Result<QueryMix> {
        let total: u64 = templates.iter().map(|(_, w)| *w as u64).sum();
        if total == 0 {
            return Err(Error::InvalidArgument(
                "query mix has zero total weight".into(),
            ));
        }
        Ok(QueryMix {
            name: name.into(),
            templates,
        })
    }

    /// Table 1, Query Mix A: 55% a, 25% b, 10% c, 10% d.
    pub fn paper_a() -> QueryMix {
        QueryMix::new("A", &[("a", 55), ("b", 25), ("c", 10), ("d", 10)])
            .expect("static weights are valid")
    }

    /// Table 1, Query Mix B: 25% a, 55% b, 10% c, 10% d.
    pub fn paper_b() -> QueryMix {
        QueryMix::new("B", &[("a", 25), ("b", 55), ("c", 10), ("d", 10)])
            .expect("static weights are valid")
    }

    /// Table 1, Query Mix C: 10% a, 10% b, 55% c, 25% d.
    pub fn paper_c() -> QueryMix {
        QueryMix::new("C", &[("a", 10), ("b", 10), ("c", 55), ("d", 25)])
            .expect("static weights are valid")
    }

    /// Table 1, Query Mix D: 10% a, 10% b, 25% c, 55% d.
    pub fn paper_d() -> QueryMix {
        QueryMix::new("D", &[("a", 10), ("b", 10), ("c", 25), ("d", 55)])
            .expect("static weights are valid")
    }

    /// Range/IN mix E: ranges on `a`, IN-lists on `b`, `(a, b)`
    /// conjunctions, and residual points on `a`. `span` is the range
    /// width in domain units.
    pub fn paper_e(span: i64) -> QueryMix {
        QueryMix::with_templates(
            "E",
            vec![
                (
                    Template::Range {
                        column: "a".into(),
                        span,
                    },
                    35,
                ),
                (
                    Template::In {
                        column: "b".into(),
                        list_len: 4,
                    },
                    25,
                ),
                (
                    Template::EqPair {
                        left: "a".into(),
                        right: "b".into(),
                    },
                    25,
                ),
                (Template::Point { column: "a".into() }, 15),
            ],
        )
        .expect("static weights are valid")
    }

    /// Range/IN mix F: mix E with the `a`/`b` emphasis swapped — the
    /// minor-shift partner of [`QueryMix::paper_e`].
    pub fn paper_f(span: i64) -> QueryMix {
        QueryMix::with_templates(
            "F",
            vec![
                (
                    Template::Range {
                        column: "b".into(),
                        span,
                    },
                    35,
                ),
                (
                    Template::In {
                        column: "a".into(),
                        list_len: 4,
                    },
                    25,
                ),
                (
                    Template::EqPair {
                        left: "b".into(),
                        right: "a".into(),
                    },
                    25,
                ),
                (Template::Point { column: "b".into() }, 15),
            ],
        )
        .expect("static weights are valid")
    }

    /// Disjunction mix G: `(c = v OR d = v')` pairs, IN-lists on `c`,
    /// residual points on `c`/`d`.
    pub fn paper_g() -> QueryMix {
        QueryMix::with_templates(
            "G",
            vec![
                (
                    Template::OrPair {
                        left: "c".into(),
                        right: "d".into(),
                    },
                    45,
                ),
                (
                    Template::In {
                        column: "c".into(),
                        list_len: 6,
                    },
                    25,
                ),
                (Template::Point { column: "d".into() }, 20),
                (Template::Point { column: "c".into() }, 10),
            ],
        )
        .expect("static weights are valid")
    }

    /// Disjunction mix H: mix G with the `c`/`d` emphasis swapped —
    /// the minor-shift partner of [`QueryMix::paper_g`].
    pub fn paper_h() -> QueryMix {
        QueryMix::with_templates(
            "H",
            vec![
                (
                    Template::OrPair {
                        left: "d".into(),
                        right: "c".into(),
                    },
                    45,
                ),
                (
                    Template::In {
                        column: "d".into(),
                        list_len: 6,
                    },
                    25,
                ),
                (Template::Point { column: "c".into() }, 20),
                (Template::Point { column: "d".into() }, 10),
            ],
        )
        .expect("static weights are valid")
    }

    /// All four Table 1 mixes, in order.
    pub fn paper_mixes() -> [QueryMix; 4] {
        [
            Self::paper_a(),
            Self::paper_b(),
            Self::paper_c(),
            Self::paper_d(),
        ]
    }

    /// Draw one statement against `table` with values uniform in
    /// `[0, domain)`.
    pub fn sample(&self, rng: &mut Prng, table: &str, domain: i64) -> Dml {
        let total: u64 = self.templates.iter().map(|(_, w)| *w as u64).sum();
        let mut pick = rng.gen_range(0..total);
        let template = self
            .templates
            .iter()
            .find_map(|(t, w)| {
                if pick < *w as u64 {
                    Some(t)
                } else {
                    pick -= *w as u64;
                    None
                }
            })
            .expect("total weight > 0");
        template.sample(rng, table, domain)
    }

    /// The weight of point queries on `column`, as a fraction of the
    /// total (the Table 1 reporting convention).
    pub fn fraction(&self, column: &str) -> f64 {
        let total: u64 = self.templates.iter().map(|(_, w)| *w as u64).sum();
        self.templates
            .iter()
            .find(|(t, _)| matches!(t, Template::Point { column: c } if c == column))
            .map_or(0.0, |(_, w)| *w as f64 / total as f64)
    }

    /// Fraction of draws that are writes (updates or deletes).
    pub fn write_fraction(&self) -> f64 {
        let total: u64 = self.templates.iter().map(|(_, w)| *w as u64).sum();
        let writes: u64 = self
            .templates
            .iter()
            .filter(|(t, _)| t.is_write())
            .map(|(_, w)| *w as u64)
            .sum();
        writes as f64 / total as f64
    }
}

impl fmt::Display for QueryMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpd_testkit::Prng;

    #[test]
    fn paper_mixes_match_table1() {
        let a = QueryMix::paper_a();
        assert_eq!(a.fraction("a"), 0.55);
        assert_eq!(a.fraction("b"), 0.25);
        assert_eq!(a.fraction("c"), 0.10);
        assert_eq!(a.fraction("d"), 0.10);
        assert_eq!(a.fraction("z"), 0.0);
        let c = QueryMix::paper_c();
        assert_eq!(c.fraction("c"), 0.55);
        assert_eq!(c.fraction("d"), 0.25);
    }

    #[test]
    fn sampling_respects_weights() {
        let mix = QueryMix::paper_a();
        let mut rng = Prng::seed_from_u64(7);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            let q = mix.sample(&mut rng, "t", 500_000);
            let col = q.conditions()[0].column().to_owned();
            *counts.entry(col).or_insert(0u32) += 1;
        }
        let frac = |c: &str| *counts.get(c).unwrap() as f64 / 10_000.0;
        assert!((frac("a") - 0.55).abs() < 0.03);
        assert!((frac("b") - 0.25).abs() < 0.03);
        assert!((frac("c") - 0.10).abs() < 0.02);
        assert!((frac("d") - 0.10).abs() < 0.02);
    }

    #[test]
    fn sampled_values_in_domain() {
        let mix = QueryMix::paper_b();
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..100 {
            let q = mix.sample(&mut rng, "t", 100);
            match &q.conditions()[0] {
                cdpd_sql::Condition::Eq { value, .. } => {
                    let v = value.as_int().unwrap();
                    assert!((0..100).contains(&v));
                }
                other => panic!("unexpected condition {other:?}"),
            }
        }
    }

    #[test]
    fn zero_weights_rejected() {
        assert!(QueryMix::new("Z", &[("a", 0)]).is_err());
        assert!(QueryMix::with_templates("Z", vec![]).is_err());
    }

    #[test]
    fn write_templates_sample_correctly() {
        let mix = QueryMix::with_templates(
            "etl",
            vec![
                (Template::Point { column: "a".into() }, 20),
                (
                    Template::Update {
                        set_column: "b".into(),
                        where_column: "a".into(),
                    },
                    70,
                ),
                (
                    Template::Delete {
                        where_column: "c".into(),
                    },
                    10,
                ),
            ],
        )
        .unwrap();
        assert!((mix.write_fraction() - 0.8).abs() < 1e-9);
        let mut rng = Prng::seed_from_u64(2);
        let mut writes = 0;
        for _ in 0..1000 {
            let stmt = mix.sample(&mut rng, "t", 50);
            if stmt.is_write() {
                writes += 1;
            }
            match &stmt {
                Dml::Select(s) => assert_eq!(s.conditions[0].column(), "a"),
                Dml::Update(u) => {
                    assert_eq!(u.set[0].0, "b");
                    assert_eq!(u.conditions[0].column(), "a");
                }
                Dml::Delete(d) => assert_eq!(d.conditions[0].column(), "c"),
            }
        }
        assert!((700..900).contains(&writes), "got {writes}");
    }

    #[test]
    fn predicate_templates_sample_correctly() {
        let mix = QueryMix::with_templates(
            "pred",
            vec![
                (
                    Template::Range {
                        column: "a".into(),
                        span: 10,
                    },
                    1,
                ),
                (
                    Template::In {
                        column: "b".into(),
                        list_len: 3,
                    },
                    1,
                ),
                (
                    Template::OrPair {
                        left: "a".into(),
                        right: "b".into(),
                    },
                    1,
                ),
                (
                    Template::EqPair {
                        left: "c".into(),
                        right: "d".into(),
                    },
                    1,
                ),
            ],
        )
        .unwrap();
        assert_eq!(mix.write_fraction(), 0.0, "reads are not writes");
        let mut rng = Prng::seed_from_u64(3);
        let (mut ranges, mut ins, mut ors, mut pairs) = (0, 0, 0, 0);
        for _ in 0..400 {
            let stmt = mix.sample(&mut rng, "t", 100);
            assert!(!stmt.is_write());
            let conds = stmt.conditions();
            match &conds[0] {
                Condition::Range {
                    column,
                    lo: Some(Value::Int(lo)),
                    hi: Some(Value::Int(hi)),
                    lo_inclusive: true,
                    hi_inclusive: false,
                    ..
                } => {
                    assert_eq!(column, "a");
                    assert_eq!(hi - lo, 10, "fixed span");
                    assert!((0..100).contains(lo));
                    ranges += 1;
                }
                Condition::In { column, values } => {
                    assert_eq!(column, "b");
                    assert_eq!(values.len(), 3);
                    for v in values {
                        assert!((0..100).contains(&v.as_int().unwrap()));
                    }
                    ins += 1;
                }
                Condition::Or(branches) => {
                    assert_eq!(branches.len(), 2);
                    assert_eq!(branches[0].column(), "a");
                    assert_eq!(branches[1].column(), "b");
                    ors += 1;
                }
                Condition::Eq { column, .. } => {
                    assert_eq!(column, "c");
                    assert_eq!(conds.len(), 2);
                    assert_eq!(conds[1].column(), "d");
                    pairs += 1;
                }
                other => panic!("unexpected condition {other:?}"),
            }
        }
        for (label, n) in [("range", ranges), ("in", ins), ("or", ors), ("pair", pairs)] {
            assert!(n > 50, "{label} drawn only {n} times");
        }
    }
}

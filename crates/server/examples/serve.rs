//! Serve a demo database with the online advisor in the loop.
//!
//! ```text
//! cargo run -p cdpd-server --example serve [--release]
//! ```
//!
//! Binds `127.0.0.1:4547` (override with `CDPD_ADDR`), loads a small
//! four-column table, and serves until the process is killed. Talk to
//! it with [`cdpd_server::Client`], e.g. from another shell via a tiny
//! Rust script, and watch the advisor adapt the index set as your
//! query mix shifts; `METRICS` frames expose the live registry.

use cdpd::{OnlineAdvisor, OnlineOptions};
use cdpd_engine::Database;
use cdpd_server::Server;
use cdpd_types::{ColumnDef, Schema, Value, ValueType};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let addr = std::env::var("CDPD_ADDR").unwrap_or_else(|_| "127.0.0.1:4547".into());
    let db = Arc::new(Database::new());
    let schema = Schema::new(vec![
        ColumnDef::new("a", ValueType::Int),
        ColumnDef::new("b", ValueType::Int),
        ColumnDef::new("c", ValueType::Int),
        ColumnDef::new("d", ValueType::Int),
    ]);
    db.create_table("t", schema).expect("create table");
    for i in 0..10_000i64 {
        db.insert(
            "t",
            &[
                Value::Int(i),
                Value::Int(i % 100),
                Value::Int(i % 10),
                Value::Int(i / 2),
            ],
        )
        .expect("load row");
    }
    db.analyze("t").expect("analyze");

    let advisor = OnlineAdvisor::new(&db, "t", OnlineOptions::default()).expect("advisor");
    let server =
        Server::bind(db, &addr)
            .expect("bind")
            .with_advisor(advisor, Duration::from_secs(2), 2);
    let bound = server.local_addr().expect("local addr");
    println!("cdpd-server listening on {bound} (advisor: table t, 2s tick)");
    println!("stop with Ctrl-C");
    server.run().expect("serve");
}

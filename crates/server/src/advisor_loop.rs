//! The [`OnlineAdvisor`] as a serving-loop citizen.
//!
//! `replay::drive` owns the whole world: it executes statements,
//! refreshes statistics, ingests, and applies decisions, all serially.
//! In a server none of that holds — statements execute on session
//! threads, concurrently, and the advisor only *observes*. This loop
//! is the bridge: it drains the statement channel the sessions feed,
//! seals windows on the advisor's statement-count boundary (via
//! [`OnlineAdvisor::ingest`]) **or** on a wall-clock tick when traffic
//! goes quiet (via [`OnlineAdvisor::seal_now`]), and applies each
//! changed decision's DDL through [`Database::apply_configuration_with`]
//! — an *online* build that interleaves with the foreground sessions
//! instead of stalling them.
//!
//! Advisor failures (an infeasible solve, a statement on the wrong
//! table) are counted and skipped: an advisory subsystem must never
//! take serving down with it.

use cdpd::{OnlineAdvisor, OnlineDecision};
use cdpd_engine::{Database, DdlReport};
use cdpd_sql::Dml;
use cdpd_types::Result;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::Duration;

/// The advisor's state and audit trail after the serving loop ends.
pub struct AdvisorReport {
    /// The advisor, with its full decision log
    /// ([`OnlineAdvisor::decisions`]) — ready for
    /// [`OnlineAdvisor::finish`] or state persistence.
    pub advisor: OnlineAdvisor,
    /// Design changes actually applied (decisions with
    /// [`OnlineDecision::changed`]), in application order.
    pub applied: Vec<DdlReport>,
    /// Advisor errors skipped to keep the serving loop alive.
    pub errors: u64,
}

/// Run the advisor loop until every sender is gone and the queue is
/// drained, then force-seal the tail window so the last partial window
/// still produces a decision. Called on a dedicated thread by
/// [`crate::Server::run`].
pub(crate) fn run(
    db: &Database,
    mut advisor: OnlineAdvisor,
    rx: &Receiver<Dml>,
    tick: Duration,
    threads: usize,
) -> AdvisorReport {
    let mut applied = Vec::new();
    let mut errors = 0u64;
    loop {
        match rx.recv_timeout(tick) {
            Ok(stmt) => {
                let decision = advisor.ingest(db, &stmt);
                note(
                    db,
                    &mut advisor,
                    decision,
                    threads,
                    &mut applied,
                    &mut errors,
                );
            }
            Err(RecvTimeoutError::Timeout) => {
                // Quiet wire: seal whatever the open window holds so
                // the design keeps adapting at wall-clock cadence.
                let decision = advisor.seal_now(db);
                note(
                    db,
                    &mut advisor,
                    decision,
                    threads,
                    &mut applied,
                    &mut errors,
                );
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Tail: the server is draining; decide on the final partial window.
    let decision = advisor.seal_now(db);
    note(
        db,
        &mut advisor,
        decision,
        threads,
        &mut applied,
        &mut errors,
    );
    AdvisorReport {
        advisor,
        applied,
        errors,
    }
}

/// Fold one ingest/seal outcome into the loop state: apply a changed
/// decision's DDL (concurrently with foreground sessions), count
/// failures, never propagate.
fn note(
    db: &Database,
    advisor: &mut OnlineAdvisor,
    decision: Result<Option<OnlineDecision>>,
    threads: usize,
    applied: &mut Vec<DdlReport>,
    errors: &mut u64,
) {
    let decision = match decision {
        Ok(Some(d)) => d,
        Ok(None) => return,
        Err(_) => {
            *errors += 1;
            cdpd_obs::counter!("server.advisor.errors").inc();
            return;
        }
    };
    cdpd_obs::counter!("server.advisor.decisions").inc();
    if !decision.changed {
        return;
    }
    let table = advisor.table().to_owned();
    match db.apply_configuration_with(&table, &decision.specs, threads) {
        Ok(report) => {
            cdpd_obs::counter!("server.advisor.applied").inc();
            // Keep the oracle priced against the post-DDL statistics.
            if let Ok(refresh) = db.refresh_stats(&table) {
                let _ = advisor.note_stats_refresh(db, &refresh);
            }
            applied.push(report);
        }
        Err(_) => {
            *errors += 1;
            cdpd_obs::counter!("server.advisor.errors").inc();
        }
    }
}

//! The wire protocol: length-prefixed frames over a byte stream.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! +-----+----------------+---------------------+
//! | tag | len (u32, LE)  | payload (len bytes) |
//! +-----+----------------+---------------------+
//! ```
//!
//! Request tags are [`OP_QUERY`] (`Q`, payload = UTF-8 SQL, response
//! carries materialized rows), [`OP_EXEC`] (`X`, payload = UTF-8 SQL,
//! any statement, counting mode), [`OP_METRICS`] (`M`, empty payload,
//! response = OpenMetrics text of the live registry), and [`OP_PING`]
//! (`P`, empty payload, empty response). Response tags are
//! [`STATUS_OK`] (`+`) and [`STATUS_ERR`] (`-`, payload = one error
//! kind byte + UTF-8 message).
//!
//! Payloads are capped at [`MAX_PAYLOAD`] (1 MiB). A frame announcing
//! more is a protocol violation: the receiver reports it without
//! reading the body — after which the stream cannot be resynchronized,
//! so the connection must close.
//!
//! Result payloads reuse the storage row codec
//! ([`cdpd_storage::codec::encode_row`]) for rows and aggregates, so
//! the values that cross the wire are bit-identical to the values in
//! the pages they came from.

use cdpd_engine::QueryResult;
use cdpd_storage::codec;
use cdpd_storage::IoStats;
use cdpd_types::{Error, Result, Value};
use std::io::{Read, Write};

/// `Q`: parse and run one `SELECT`, materializing result rows.
pub const OP_QUERY: u8 = b'Q';
/// `X`: parse and run any statement (queries run in counting mode).
pub const OP_EXEC: u8 = b'X';
/// `M`: OpenMetrics exposition of the live metrics registry.
pub const OP_METRICS: u8 = b'M';
/// `P`: liveness probe; empty OK response.
pub const OP_PING: u8 = b'P';

/// Success response tag.
pub const STATUS_OK: u8 = b'+';
/// Error response tag; payload = kind byte + UTF-8 message.
pub const STATUS_ERR: u8 = b'-';

/// Hard cap on a frame payload (1 MiB): statements, result sets, and
/// metric expositions must all fit in one frame.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Write one frame.
///
/// # Errors
/// The payload must fit [`MAX_PAYLOAD`]; I/O errors propagate.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_PAYLOAD {
        return Err(Error::TooLarge(format!(
            "frame payload of {} bytes exceeds the {MAX_PAYLOAD}-byte cap",
            payload.len()
        )));
    }
    // One write per frame: a header-only segment followed by a payload
    // segment interacts badly with Nagle + delayed ACK on real sockets
    // (tens of milliseconds per request), so coalesce before writing.
    let mut frame = Vec::with_capacity(5 + payload.len());
    frame.push(tag);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. Returns `Ok(None)` on clean EOF at a frame
/// boundary (the peer closed between requests).
///
/// # Errors
/// A frame announcing more than [`MAX_PAYLOAD`] bytes is rejected
/// *without* consuming its body — the stream is then unsynchronized
/// and the caller must drop the connection. Mid-frame EOF and I/O
/// errors propagate.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>> {
    let mut header = [0u8; 5];
    match r.read(&mut header[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut header[1..5])?,
    }
    let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD {
        return Err(Error::TooLarge(format!(
            "peer announced a {len}-byte frame; the cap is {MAX_PAYLOAD}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some((header[0], payload)))
}

/// The observable outcome of one remote statement: everything a
/// [`QueryResult`] carries that survives the
/// wire (the planner's cost estimate stays server-side).
#[derive(Clone, Debug, PartialEq)]
pub struct RemoteResult {
    /// Rows matched / affected / aggregated.
    pub count: u64,
    /// Materialized rows (`Q` requests on non-aggregate queries).
    pub rows: Option<Vec<Vec<Value>>>,
    /// Aggregate value, for aggregate projections.
    pub aggregate: Option<Value>,
    /// Logical I/O the statement cost on the server, measured on the
    /// serving thread.
    pub io: IoStats,
    /// One-line plan description.
    pub plan: String,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_row(out: &mut Vec<u8>, row: &[Value]) {
    let mut bytes = Vec::new();
    codec::encode_row(row, &mut bytes);
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(&bytes);
}

/// Encode a [`QueryResult`] as an OK payload.
pub fn encode_result(r: &QueryResult) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, r.count);
    put_u64(&mut out, r.io.reads);
    put_u64(&mut out, r.io.writes);
    put_u64(&mut out, r.io.allocs);
    let flags = u8::from(r.rows.is_some()) | (u8::from(r.aggregate.is_some()) << 1);
    out.push(flags);
    if let Some(agg) = &r.aggregate {
        put_row(&mut out, std::slice::from_ref(agg));
    }
    if let Some(rows) = &r.rows {
        put_u32(&mut out, rows.len() as u32);
        for row in rows {
            put_row(&mut out, row);
        }
    }
    put_u32(&mut out, r.plan.len() as u32);
    out.extend_from_slice(r.plan.as_bytes());
    out
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(Error::Corrupt("truncated result payload".into()));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn row(&mut self) -> Result<Vec<Value>> {
        let len = self.u32()? as usize;
        codec::decode_row(self.take(len)?)
    }
}

/// Decode an OK payload back into a [`RemoteResult`]: the inverse of
/// [`encode_result`].
///
/// # Errors
/// The payload must be well-formed and fully consumed.
pub fn decode_result(payload: &[u8]) -> Result<RemoteResult> {
    let mut r = Reader { buf: payload };
    let count = r.u64()?;
    let io = IoStats {
        reads: r.u64()?,
        writes: r.u64()?,
        allocs: r.u64()?,
    };
    let flags = r.take(1)?[0];
    let aggregate = if flags & 2 != 0 {
        let row = r.row()?;
        Some(
            row.into_iter()
                .next()
                .ok_or_else(|| Error::Corrupt("aggregate row is empty".into()))?,
        )
    } else {
        None
    };
    let rows = if flags & 1 != 0 {
        let n = r.u32()? as usize;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push(r.row()?);
        }
        Some(rows)
    } else {
        None
    };
    let plan_len = r.u32()? as usize;
    let plan = String::from_utf8(r.take(plan_len)?.to_vec())
        .map_err(|_| Error::Corrupt("plan is not UTF-8".into()))?;
    if !r.buf.is_empty() {
        return Err(Error::Corrupt("trailing bytes after result".into()));
    }
    Ok(RemoteResult {
        count,
        rows,
        aggregate,
        io,
        plan,
    })
}

/// Encode an [`Error`] as an error payload: one kind byte (so the
/// client resurrects the matching variant) + the message.
pub fn encode_error(err: &Error) -> Vec<u8> {
    let (kind, msg) = match err {
        Error::Parse { offset, message } => (b'P', format!("offset {offset}: {message}")),
        Error::NotFound(m) => (b'N', m.clone()),
        Error::AlreadyExists(m) => (b'A', m.clone()),
        Error::TypeMismatch(m) => (b'T', m.clone()),
        Error::Corrupt(m) => (b'C', m.clone()),
        Error::TooLarge(m) => (b'L', m.clone()),
        Error::Infeasible(m) => (b'F', m.clone()),
        Error::InvalidArgument(m) => (b'I', m.clone()),
        Error::Io(e) => (b'O', e.to_string()),
    };
    let mut out = Vec::with_capacity(1 + msg.len());
    out.push(kind);
    out.extend_from_slice(msg.as_bytes());
    out
}

/// Decode an error payload into the [`Error`] variant the server
/// reported (parse offsets are folded into the message).
pub fn decode_error(payload: &[u8]) -> Error {
    let Some((&kind, msg)) = payload.split_first() else {
        return Error::Corrupt("empty error payload".into());
    };
    let msg = String::from_utf8_lossy(msg).into_owned();
    match kind {
        b'P' => Error::Parse {
            offset: 0,
            message: msg,
        },
        b'N' => Error::NotFound(msg),
        b'A' => Error::AlreadyExists(msg),
        b'T' => Error::TypeMismatch(msg),
        b'C' => Error::Corrupt(msg),
        b'L' => Error::TooLarge(msg),
        b'F' => Error::Infeasible(msg),
        b'I' => Error::InvalidArgument(msg),
        b'O' => Error::Io(std::io::Error::other(msg)),
        _ => Error::Corrupt(format!("unknown error kind {kind:#x}: {msg}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_QUERY, b"SELECT a FROM t WHERE a = 1").unwrap();
        write_frame(&mut buf, OP_PING, b"").unwrap();
        let mut r = &buf[..];
        let (tag, payload) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(
            (tag, payload.as_slice()),
            (OP_QUERY, &b"SELECT a FROM t WHERE a = 1"[..])
        );
        let (tag, payload) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((tag, payload.len()), (OP_PING, 0));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frames_rejected_both_ways() {
        let huge = vec![0u8; MAX_PAYLOAD + 1];
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, OP_EXEC, &huge),
            Err(Error::TooLarge(_))
        ));
        // A hand-forged oversized header is rejected without a read.
        let mut forged = vec![OP_EXEC];
        forged.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &forged[..]),
            Err(Error::TooLarge(_))
        ));
    }

    #[test]
    fn result_roundtrip() {
        let result = QueryResult {
            count: 3,
            rows: Some(vec![
                vec![Value::Int(1), Value::from("x")],
                vec![Value::Int(2), Value::from("y")],
            ]),
            aggregate: Some(Value::Int(42)),
            io: IoStats {
                reads: 7,
                writes: 1,
                allocs: 0,
            },
            est_cost: cdpd_types::Cost::ZERO,
            plan: "IndexScan(ix_t_a)".into(),
        };
        let decoded = decode_result(&encode_result(&result)).unwrap();
        assert_eq!(decoded.count, 3);
        assert_eq!(decoded.rows, result.rows);
        assert_eq!(decoded.aggregate, Some(Value::Int(42)));
        assert_eq!(decoded.io, result.io);
        assert_eq!(decoded.plan, "IndexScan(ix_t_a)");
    }

    #[test]
    fn error_roundtrip_preserves_kind() {
        for err in [
            Error::NotFound("index ix_t_a".into()),
            Error::AlreadyExists("index ix_t_a".into()),
            Error::TypeMismatch("expected INT".into()),
            Error::InvalidArgument("bad".into()),
            Error::TooLarge("row".into()),
        ] {
            let back = decode_error(&encode_error(&err));
            assert_eq!(
                std::mem::discriminant(&back),
                std::mem::discriminant(&err),
                "{err:?} -> {back:?}"
            );
        }
    }

    #[test]
    fn truncated_results_are_corrupt_not_panics() {
        let payload = encode_result(&QueryResult {
            count: 1,
            rows: Some(vec![vec![Value::Int(5)]]),
            aggregate: None,
            io: IoStats::default(),
            est_cost: cdpd_types::Cost::ZERO,
            plan: "Scan".into(),
        });
        for cut in 0..payload.len() {
            assert!(decode_result(&payload[..cut]).is_err());
        }
    }
}

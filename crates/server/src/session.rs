//! Per-connection sessions: one thread, one [`ThreadIoScope`] ledger.
//!
//! A session is a loop over request frames. Each statement executes on
//! the session's own thread, so a [`ThreadIoScope`] around it measures
//! *exactly* that statement's logical I/O even while other sessions
//! hammer the same pager — the per-session attribution the obs ledger
//! tests reconcile against the global counters. Statement errors are
//! reported in an error frame and the session keeps serving; only
//! protocol violations (an oversized length prefix, after which the
//! stream cannot be resynchronized) and transport errors end it.

use crate::proto::{
    self, MAX_PAYLOAD, OP_EXEC, OP_METRICS, OP_PING, OP_QUERY, STATUS_ERR, STATUS_OK,
};
use cdpd_engine::{Database, QueryResult};
use cdpd_sql::{Dml, Statement};
use cdpd_storage::ThreadIoScope;
use cdpd_types::{Error, Result};
use std::net::TcpStream;
use std::sync::mpsc::Sender;
use std::sync::Arc;

/// Serve one accepted connection until the peer disconnects or breaks
/// the protocol. Successfully executed workload statements (DML) are
/// forwarded to `advisor_tx` when present — the live statement stream
/// the in-loop advisor ingests.
pub(crate) fn serve_connection(
    db: &Arc<Database>,
    stream: TcpStream,
    advisor_tx: Option<&Sender<Dml>>,
) {
    cdpd_obs::counter!("server.sessions.opened").inc();
    let _span = cdpd_obs::span!("server.session");
    let session_io = ThreadIoScope::start();
    let outcome = session_loop(db, stream, advisor_tx);
    // Exact per-session attribution: everything this session's thread
    // did — statements, index maintenance, WAL commits — lands in its
    // thread-local ledger and is folded into the server totals here.
    let io = session_io.delta();
    cdpd_obs::counter!("server.io.reads").add(io.reads);
    cdpd_obs::counter!("server.io.writes").add(io.writes);
    cdpd_obs::counter!("server.io.allocs").add(io.allocs);
    if outcome.is_err() {
        // Transport/protocol failure (mid-frame disconnect, oversized
        // announcement). The session is gone; the catalog is not.
        cdpd_obs::counter!("server.sessions.aborted").inc();
    }
    cdpd_obs::counter!("server.sessions.closed").inc();
}

fn session_loop(
    db: &Arc<Database>,
    mut stream: TcpStream,
    advisor_tx: Option<&Sender<Dml>>,
) -> Result<()> {
    loop {
        let (tag, payload) = match proto::read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()), // clean disconnect
            Err(e) => {
                // Oversized announcement: tell the peer why before
                // hanging up. Mid-frame EOF: nobody is listening.
                if matches!(e, Error::TooLarge(_)) {
                    let _ = respond_err(&mut stream, &e);
                }
                return Err(e);
            }
        };
        cdpd_obs::counter!("server.bytes_in").add(5 + payload.len() as u64);
        match tag {
            OP_PING => respond_ok(&mut stream, &[])?,
            OP_METRICS => {
                let text = cdpd_obs::openmetrics::render(&cdpd_obs::registry().snapshot());
                respond_ok(&mut stream, text.as_bytes())?;
            }
            OP_QUERY | OP_EXEC => {
                cdpd_obs::counter!("server.statements").inc();
                match run_statement(db, tag, &payload, advisor_tx) {
                    Ok(result) => respond_ok(&mut stream, &proto::encode_result(&result))?,
                    Err(e) => {
                        // Statement failure: the session (and the epoch
                        // catalog under it) stays fully usable.
                        cdpd_obs::counter!("server.errors").inc();
                        respond_err(&mut stream, &e)?;
                    }
                }
            }
            other => {
                // Unknown but well-framed op: recoverable.
                cdpd_obs::counter!("server.errors").inc();
                respond_err(
                    &mut stream,
                    &Error::InvalidArgument(format!("unknown op {other:#x}")),
                )?;
            }
        }
    }
}

/// Parse and execute one statement frame on the calling thread,
/// measuring its I/O with a dedicated [`ThreadIoScope`] so the result
/// reports exactly this statement's page accesses (including the WAL
/// commit a durable mutation triggers).
fn run_statement(
    db: &Arc<Database>,
    tag: u8,
    payload: &[u8],
    advisor_tx: Option<&Sender<Dml>>,
) -> Result<QueryResult> {
    let sql = std::str::from_utf8(payload)
        .map_err(|_| Error::InvalidArgument("statement is not UTF-8".into()))?;
    let stmt = cdpd_sql::parse(sql)?;
    let observed = as_dml(&stmt);
    let scope = ThreadIoScope::start();
    let mut result = match (tag, stmt) {
        (OP_QUERY, Statement::Select(s)) => db.query(&s)?,
        (OP_QUERY, other) => {
            return Err(Error::InvalidArgument(format!(
                "QUERY takes a SELECT; got {other} (use EXEC)"
            )))
        }
        // EXEC runs queries in counting mode: all the cost, none of the
        // result bytes — the workload-replay view of a statement.
        (_, Statement::Select(s)) => db.query_count(&s)?,
        (_, stmt) => db.execute_statement(stmt)?,
    };
    // Report the statement's full thread-side cost (execution + index
    // maintenance + commit), not just the executor's measurement.
    result.io = scope.delta();
    if let (Some(tx), Some(dml)) = (advisor_tx, observed) {
        // The advisor loop may have shut down first; serving goes on.
        let _ = tx.send(dml);
    }
    Ok(result)
}

/// The workload-statement view of a parsed statement, if it has one
/// (DDL is not part of the observed stream).
fn as_dml(stmt: &Statement) -> Option<Dml> {
    match stmt {
        Statement::Select(s) => Some(Dml::Select(s.clone())),
        Statement::Update(u) => Some(Dml::Update(u.clone())),
        Statement::Delete(d) => Some(Dml::Delete(d.clone())),
        _ => None,
    }
}

fn respond_ok(stream: &mut TcpStream, payload: &[u8]) -> Result<()> {
    cdpd_obs::counter!("server.bytes_out").add(5 + payload.len() as u64);
    proto::write_frame(stream, STATUS_OK, payload)
}

fn respond_err(stream: &mut TcpStream, err: &Error) -> Result<()> {
    let mut payload = proto::encode_error(err);
    payload.truncate(MAX_PAYLOAD);
    cdpd_obs::counter!("server.bytes_out").add(5 + payload.len() as u64);
    proto::write_frame(stream, STATUS_ERR, &payload)
}

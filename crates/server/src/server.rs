//! The accept loop and its lifecycle: bind, serve, drain, shut down.
//!
//! One listener thread accepts; each connection gets its own session
//! thread (see [`crate::session`]). The [`OnlineAdvisor`] — when
//! configured — runs on a dedicated thread *inside* the serving loop
//! (see [`crate::advisor_loop`]): sessions forward every executed
//! workload statement over a channel, the loop seals windows on
//! statement count or wall clock, and applies recommended DDL through
//! the same epoch-versioned catalog foreground traffic is using.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] sets a flag and
//! pokes the listener with a loopback connection so `accept` returns.
//! The server then stops accepting, joins every session thread, drops
//! the advisor channel (letting the loop drain its queue and seal the
//! tail window), and returns the advisor for inspection.

use crate::advisor_loop::{self, AdvisorReport};
use crate::session;
use cdpd::OnlineAdvisor;
use cdpd_engine::Database;
use cdpd_sql::Dml;
use cdpd_types::{Error, Result};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A bound, not-yet-running server. Call [`Server::run`] to serve
/// (blocking), typically from a dedicated thread.
pub struct Server {
    db: Arc<Database>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    advisor: Option<(OnlineAdvisor, Duration, usize)>,
}

/// Remote control for a running [`Server`]: cheap to clone into other
/// threads, able to stop the accept loop.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

/// What [`Server::run`] returns once the accept loop has drained.
pub struct ServerReport {
    /// Connections served over the server's lifetime.
    pub sessions: u64,
    /// The advisor and its decision/apply log, when one was running.
    pub advisor: Option<AdvisorReport>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to stop: set the flag, then poke the listener so
    /// a blocked `accept` observes it. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop; an error just means it is already gone.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    /// Binding can fail (address in use, permission).
    pub fn bind(db: Arc<Database>, addr: &str) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            db,
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
            advisor: None,
        })
    }

    /// Run `advisor` inside the serving loop: sessions feed it every
    /// executed workload statement, windows additionally seal whenever
    /// `tick` elapses without traffic, and decisions are applied with
    /// up to `threads` concurrent index builds — interleaved with
    /// foreground statements through the epoch-versioned catalog.
    pub fn with_advisor(
        mut self,
        advisor: OnlineAdvisor,
        tick: Duration,
        threads: usize,
    ) -> Server {
        self.advisor = Some((advisor, tick, threads));
        self
    }

    /// The bound address (useful with an ephemeral port).
    ///
    /// # Errors
    /// Propagates the socket query.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// A [`ServerHandle`] for stopping this server from another thread.
    ///
    /// # Errors
    /// Propagates the socket query.
    pub fn handle(&self) -> Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: self.shutdown.clone(),
        })
    }

    /// Serve until [`ServerHandle::shutdown`]: accept connections,
    /// spawn a session thread per connection, then drain — join every
    /// session, stop the advisor loop, and report.
    ///
    /// # Errors
    /// Accept-loop I/O errors propagate (individual session errors do
    /// not — they end that session only). Advisor-loop panics surface
    /// as [`Error::Corrupt`].
    pub fn run(self) -> Result<ServerReport> {
        let Server {
            db,
            listener,
            shutdown,
            advisor,
        } = self;
        let (advisor_tx, advisor_join): (Option<Sender<Dml>>, Option<JoinHandle<AdvisorReport>>) =
            match advisor {
                Some((advisor, tick, threads)) => {
                    let (tx, rx) = mpsc::channel();
                    let db = db.clone();
                    let join = std::thread::Builder::new()
                        .name("cdpd-advisor".into())
                        .spawn(move || advisor_loop::run(&db, advisor, &rx, tick, threads))
                        .expect("spawn advisor thread");
                    (Some(tx), Some(join))
                }
                None => (None, None),
            };

        let mut sessions: Vec<JoinHandle<()>> = Vec::new();
        let mut served = 0u64;
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => return Err(Error::Io(e)),
            };
            // Response frames are latency-bound; see proto::write_frame.
            let _ = stream.set_nodelay(true);
            served += 1;
            let db = db.clone();
            let tx = advisor_tx.clone();
            sessions.push(
                std::thread::Builder::new()
                    .name(format!("cdpd-session-{served}"))
                    .spawn(move || session::serve_connection(&db, stream, tx.as_ref()))
                    .expect("spawn session thread"),
            );
        }
        for s in sessions {
            let _ = s.join();
        }
        // Closing the last sender ends the advisor loop after it
        // drains everything sessions already sent.
        drop(advisor_tx);
        let advisor = match advisor_join {
            Some(join) => Some(
                join.join()
                    .map_err(|_| Error::Corrupt("advisor loop panicked".into()))?,
            ),
            None => None,
        };
        Ok(ServerReport {
            sessions: served,
            advisor,
        })
    }
}

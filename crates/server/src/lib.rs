//! `cdpd-server`: the serving front end over the `cdpd` engine.
//!
//! A std-only TCP server speaking a length-prefixed wire protocol
//! ([`proto`]): `QUERY` / `EXEC` / `METRICS` / `PING` frames in,
//! status-tagged frames out. Each accepted connection becomes a
//! session on its own thread with its own
//! [`ThreadIoScope`](cdpd_storage::ThreadIoScope) ledger, so logical
//! I/O is attributed per session exactly. Sessions execute against one
//! shared [`Database`](cdpd_engine::Database) — every mutator takes
//! `&self`; the engine's epoch-versioned catalog and per-table locks
//! serialize statements, and the WAL commit phase lock keeps durable
//! commits at statement boundaries (see the engine's concurrency-model
//! docs).
//!
//! The design advisor runs *inside* the serving loop
//! ([`advisor_loop`]): sessions forward the live statement stream over
//! a channel, windows seal on statement count or wall clock, and
//! recommended DDL is applied as online index builds that interleave
//! with foreground traffic.
//!
//! ```no_run
//! # use std::sync::Arc;
//! let db = Arc::new(cdpd_engine::Database::new());
//! // ... create tables, load data ...
//! let server = cdpd_server::Server::bind(db, "127.0.0.1:0").unwrap();
//! let handle = server.handle().unwrap();
//! let join = std::thread::spawn(move || server.run());
//! let mut client = cdpd_server::Client::connect(handle.addr()).unwrap();
//! client.exec("CREATE TABLE t (a INT, b INT)").unwrap();
//! handle.shutdown();
//! join.join().unwrap().unwrap();
//! ```

#![warn(missing_docs)]

pub mod advisor_loop;
pub mod client;
pub mod proto;
mod server;
mod session;

pub use advisor_loop::AdvisorReport;
pub use client::Client;
pub use proto::RemoteResult;
pub use server::{Server, ServerHandle, ServerReport};

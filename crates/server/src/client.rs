//! A blocking wire client: the test harness's and examples' view of a
//! running server. One [`Client`] is one connection (one server-side
//! session); requests are strictly serial per connection.

use crate::proto::{
    self, RemoteResult, OP_EXEC, OP_METRICS, OP_PING, OP_QUERY, STATUS_ERR, STATUS_OK,
};
use cdpd_types::{Error, Result};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected session.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    /// Connection failures propagate as [`Error::Io`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response frames are small and latency-bound; never
        // let Nagle hold one back waiting for a delayed ACK.
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn call(&mut self, tag: u8, payload: &[u8]) -> Result<Vec<u8>> {
        proto::write_frame(&mut self.stream, tag, payload)?;
        let (status, body) = proto::read_frame(&mut self.stream)?
            .ok_or_else(|| Error::Io(std::io::Error::other("server closed the connection")))?;
        match status {
            STATUS_OK => Ok(body),
            STATUS_ERR => Err(proto::decode_error(&body)),
            other => Err(Error::Corrupt(format!(
                "unknown response status {other:#x}"
            ))),
        }
    }

    /// Run a `SELECT` with materialized rows.
    ///
    /// # Errors
    /// Server-side statement errors come back as their original
    /// [`Error`] variant; transport errors as [`Error::Io`].
    pub fn query(&mut self, sql: &str) -> Result<RemoteResult> {
        let body = self.call(OP_QUERY, sql.as_bytes())?;
        proto::decode_result(&body)
    }

    /// Execute any statement (queries run in counting mode).
    ///
    /// # Errors
    /// Same conditions as [`Client::query`].
    pub fn exec(&mut self, sql: &str) -> Result<RemoteResult> {
        let body = self.call(OP_EXEC, sql.as_bytes())?;
        proto::decode_result(&body)
    }

    /// Fetch the server's live metrics registry as OpenMetrics text.
    ///
    /// # Errors
    /// Transport errors propagate; the exposition must be UTF-8.
    pub fn metrics(&mut self) -> Result<String> {
        let body = self.call(OP_METRICS, &[])?;
        String::from_utf8(body).map_err(|_| Error::Corrupt("metrics are not UTF-8".into()))
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// Transport errors propagate.
    pub fn ping(&mut self) -> Result<()> {
        self.call(OP_PING, &[]).map(|_| ())
    }

    /// Send a raw frame and return the raw response, bypassing the
    /// request encoders — the hook protocol tests use to speak
    /// *malformed* requests on purpose.
    ///
    /// # Errors
    /// Transport errors propagate; an error frame comes back as its
    /// decoded [`Error`].
    pub fn raw(&mut self, tag: u8, payload: &[u8]) -> Result<Vec<u8>> {
        self.call(tag, payload)
    }

    /// The underlying stream (for tests that need to half-send a frame
    /// and hang up).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

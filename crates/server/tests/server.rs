//! End-to-end wire tests: a real [`Server`] on an ephemeral loopback
//! port, driven by [`Client`] — round trips, the METRICS exposition,
//! every protocol error path, and the advisor running inside the
//! serving loop.
//!
//! The obs registry is process-global and these tests run on sibling
//! threads, so counter assertions are monotone (`>=`), never exact.

use cdpd::{AdvisorOptions, OnlineAdvisor, OnlineOptions};
use cdpd_engine::{Database, IndexSpec};
use cdpd_server::{proto, Client, Server, ServerHandle, ServerReport};
use cdpd_testkit::Prng;
use cdpd_types::{ColumnDef, Error, Result, Schema, Value};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const ROWS: i64 = 2_000;
const DOMAIN: i64 = 400;

/// The paper table, loaded and analyzed, ready to serve.
fn loaded_db(seed: u64) -> Arc<Database> {
    let db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ]),
    )
    .expect("fresh table");
    let mut rng = Prng::seed_from_u64(seed);
    for _ in 0..ROWS {
        let row: Vec<Value> = (0..4)
            .map(|_| Value::Int(rng.gen_range(0..DOMAIN)))
            .collect();
        db.insert("t", &row).expect("row matches schema");
    }
    db.analyze("t").expect("table exists");
    Arc::new(db)
}

fn start(server: Server) -> (ServerHandle, JoinHandle<Result<ServerReport>>) {
    let handle = server.handle().expect("handle");
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn stop(handle: &ServerHandle, join: JoinHandle<Result<ServerReport>>) -> ServerReport {
    handle.shutdown();
    join.join().expect("server thread").expect("server run")
}

#[test]
fn query_exec_and_ping_round_trip() {
    let db = loaded_db(7);
    let (handle, join) = start(Server::bind(db.clone(), "127.0.0.1:0").expect("bind"));
    let mut client = Client::connect(handle.addr()).expect("connect");

    client.ping().expect("ping");

    // QUERY materializes rows; the server-side truth is one local call
    // away on the shared database.
    let cdpd_sql::Statement::Select(sel) =
        cdpd_sql::parse("SELECT * FROM t WHERE a = 3").expect("parses")
    else {
        unreachable!()
    };
    let local = db.query(&sel).expect("local query");
    let remote = client.query("SELECT * FROM t WHERE a = 3").expect("query");
    assert_eq!(remote.count, local.count);
    assert_eq!(remote.rows, local.rows);
    assert_eq!(remote.plan, local.plan);
    assert!(remote.io.reads > 0, "statement I/O must ride the wire");

    // EXEC runs the same statement in counting mode: same count, no
    // materialized rows.
    let counted = client.exec("SELECT * FROM t WHERE a = 3").expect("exec");
    assert_eq!(counted.count, local.count);
    assert_eq!(counted.rows, None);

    // Mutations through the wire are immediately visible to queries —
    // same catalog, same epochs.
    let tag = DOMAIN + 77;
    client
        .exec(&format!("INSERT INTO t VALUES ({tag}, 0, 0, 0)"))
        .expect("insert");
    let seen = client
        .query(&format!("SELECT * FROM t WHERE a = {tag}"))
        .expect("query");
    assert_eq!(seen.count, 1);
    assert_eq!(
        seen.rows,
        Some(vec![vec![
            Value::Int(tag),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
        ]])
    );
    let gone = client
        .exec(&format!("DELETE FROM t WHERE a = {tag}"))
        .expect("delete");
    assert_eq!(gone.count, 1);

    // Aggregates ride the aggregate slot — same answer as a local call.
    let local_agg = db
        .execute_sql("SELECT MIN(b) FROM t")
        .expect("local aggregate");
    let agg = client.query("SELECT MIN(b) FROM t").expect("aggregate");
    assert_eq!(agg.aggregate, local_agg.aggregate);
    assert!(agg.aggregate.is_some(), "MIN must produce an aggregate");

    // DDL over the wire lands in the shared catalog.
    client
        .exec("CREATE INDEX ix_wire ON t (b)")
        .expect("create index");
    assert!(db.has_index(&IndexSpec::new("t", &["b"])));

    drop(client);
    let report = stop(&handle, join);
    assert_eq!(report.sessions, 1);
    assert!(report.advisor.is_none());
}

#[test]
fn metrics_frame_round_trips_the_openmetrics_exposition() {
    let db = loaded_db(11);
    let (handle, join) = start(Server::bind(db, "127.0.0.1:0").expect("bind"));
    let mut client = Client::connect(handle.addr()).expect("connect");

    const STATEMENTS: u64 = 5;
    for i in 0..STATEMENTS {
        client
            .exec(&format!("SELECT * FROM t WHERE a = {i}"))
            .expect("exec");
    }
    let text = client.metrics().expect("metrics");

    // Structural round trip: the exposition parses line by line and
    // terminates correctly.
    assert!(text.ends_with("# EOF\n"), "exposition must end with EOF");
    let mut families = std::collections::BTreeMap::new();
    for line in text.lines() {
        if line == "# EOF" {
            break;
        }
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "unexpected comment line: {line}"
            );
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed sample line: {line}"));
        // Histogram buckets carry labels; everything else is bare.
        if !name.contains('{') {
            let value: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("non-numeric sample: {line}"));
            families.insert(name.to_owned(), value);
        }
    }

    // The serving counters are live in the exposition. The registry is
    // process-global, so sibling tests may have pushed these higher.
    let counter = |name: &str| -> f64 {
        *families
            .get(name)
            .unwrap_or_else(|| panic!("{name} missing from exposition"))
    };
    assert!(counter("server_statements_total") >= STATEMENTS as f64);
    assert!(counter("server_sessions_opened_total") >= 1.0);
    assert!(counter("server_bytes_in_total") > 0.0);
    assert!(counter("server_bytes_out_total") > 0.0);
    // And the engine's own ledger flows through the same registry.
    assert!(counter("storage_pager_reads_total") > 0.0);

    drop(client);
    stop(&handle, join);
}

#[test]
fn malformed_requests_leave_the_session_usable() {
    let db = loaded_db(13);
    let (handle, join) = start(Server::bind(db, "127.0.0.1:0").expect("bind"));
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Unknown (but well-framed) op: rejected, session continues.
    let err = client.raw(b'Z', b"").expect_err("unknown op must fail");
    assert!(matches!(err, Error::InvalidArgument(m) if m.contains("unknown op")));
    client.ping().expect("session survives unknown op");

    // Non-UTF-8 statement payload.
    let err = client
        .raw(proto::OP_EXEC, &[0xFF, 0xFE, 0x00])
        .expect_err("non-UTF-8 must fail");
    assert!(matches!(err, Error::InvalidArgument(m) if m.contains("UTF-8")));
    client.ping().expect("session survives bad encoding");

    // SQL that does not parse: the original error variant (with its
    // offset) survives the wire.
    let err = client.exec("SELEC * FROM t").expect_err("parse must fail");
    assert!(matches!(err, Error::Parse { .. }));
    client.ping().expect("session survives parse error");

    // QUERY is for SELECT only.
    let err = client
        .query("INSERT INTO t VALUES (1, 2, 3, 4)")
        .expect_err("QUERY rejects non-SELECT");
    assert!(matches!(err, Error::InvalidArgument(m) if m.contains("EXEC")));

    // A statement error (missing table) is not a protocol error: the
    // session — and the catalog under it — keep working.
    let err = client
        .exec("SELECT * FROM missing")
        .expect_err("missing table must fail");
    assert!(matches!(err, Error::NotFound(_)));
    let ok = client
        .exec("SELECT * FROM t WHERE a = 1")
        .expect("statement runs");
    assert!(ok.count <= ROWS as u64);

    drop(client);
    let report = stop(&handle, join);
    assert_eq!(report.sessions, 1);
}

#[test]
fn oversized_announcement_errors_and_closes_the_connection() {
    let db = loaded_db(17);
    let (handle, join) = start(Server::bind(db, "127.0.0.1:0").expect("bind"));
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.ping().expect("ping");

    // Forge a header announcing a payload the server must refuse (the
    // client-side encoder rejects it, so write the bytes by hand).
    let announced = (proto::MAX_PAYLOAD as u32) + 1;
    let mut header = vec![proto::OP_EXEC];
    header.extend_from_slice(&announced.to_le_bytes());
    client.stream().write_all(&header).expect("header sent");

    // The server explains itself before hanging up…
    let (status, body) = proto::read_frame(client.stream())
        .expect("error frame arrives")
        .expect("frame, not EOF");
    assert_eq!(status, proto::STATUS_ERR);
    assert!(matches!(proto::decode_error(&body), Error::TooLarge(_)));

    // …and the stream is gone: the length prefix cannot be resynced.
    assert!(client.ping().is_err(), "connection must be closed");

    // The server itself is healthy — new connections serve normally.
    let mut fresh = Client::connect(handle.addr()).expect("reconnect");
    fresh.ping().expect("fresh session works");
    drop((client, fresh));
    stop(&handle, join);
}

#[test]
fn mid_statement_disconnect_leaves_the_server_healthy() {
    let db = loaded_db(19);
    let (handle, join) = start(Server::bind(db.clone(), "127.0.0.1:0").expect("bind"));

    // Announce 64 payload bytes, send 9, vanish.
    {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut partial = vec![proto::OP_EXEC];
        partial.extend_from_slice(&64u32.to_le_bytes());
        partial.extend_from_slice(b"SELECT * ");
        stream.write_all(&partial).expect("partial frame sent");
    } // dropped mid-frame

    // The aborted session took nothing down with it: catalog intact,
    // new sessions fine.
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.ping().expect("ping");
    let r = client
        .exec("SELECT * FROM t WHERE a = 1")
        .expect("statement runs");
    assert!(r.count > 0);
    drop(client);

    let report = stop(&handle, join);
    assert_eq!(report.sessions, 2, "both connections were served");
}

#[test]
fn advisor_adapts_the_design_inside_the_serving_loop() {
    const WINDOW: usize = 25;
    const STATEMENTS: usize = 100;

    let db = loaded_db(23);
    let options = OnlineOptions {
        advisor: AdvisorOptions {
            k: Some(2),
            window_len: WINDOW,
            structures: Some(vec![
                IndexSpec::new("t", &["a"]),
                IndexSpec::new("t", &["b"]),
                IndexSpec::new("t", &["a", "b"]),
            ]),
            max_structures_per_config: Some(1),
            ..AdvisorOptions::default()
        },
        ..OnlineOptions::default()
    };
    let advisor = OnlineAdvisor::new(&db, "t", options).expect("advisor opens");
    let server = Server::bind(db.clone(), "127.0.0.1:0")
        .expect("bind")
        // A long tick: windows seal on statement count here; the
        // wall-clock path gets its own coverage via the tail seal.
        .with_advisor(advisor, Duration::from_secs(30), 2);
    let (handle, join) = start(server);

    // An a-heavy statement stream: the advisor should pick an a-leading
    // index and build it online, under this very traffic.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut rng = Prng::seed_from_u64(23);
    for _ in 0..STATEMENTS {
        let v = rng.gen_range(0..DOMAIN);
        client
            .exec(&format!("SELECT * FROM t WHERE a = {v}"))
            .expect("statement runs");
    }
    drop(client);
    let report = stop(&handle, join);

    let advisor = report.advisor.expect("advisor was in the loop");
    assert_eq!(advisor.errors, 0, "the advisor loop must stay clean");
    // 100 statements at window 25: at least four statement-count seals
    // (wall-clock seals can only add more).
    assert!(
        advisor.advisor.decisions().len() >= STATEMENTS / WINDOW,
        "expected >= {} decisions, got {}",
        STATEMENTS / WINDOW,
        advisor.advisor.decisions().len()
    );
    let changed = advisor
        .advisor
        .decisions()
        .iter()
        .filter(|d| d.changed)
        .count();
    assert_eq!(
        advisor.applied.len(),
        changed,
        "every changed decision must be applied exactly once"
    );
    assert!(changed >= 1, "an a-only workload must change the design");
    // The applied design is live in the shared catalog, built online
    // while the session was still executing statements.
    let specs = db.index_specs("t").expect("table exists");
    assert!(
        specs.iter().all(|s| s.columns[0] == "a"),
        "a-leading design expected, got {specs:?}"
    );
    assert!(!specs.is_empty(), "the decided index must be installed");
}

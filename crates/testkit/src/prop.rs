//! Property-based testing: composable generators, deterministic case
//! seeds, greedy input shrinking, and failure-seed persistence.
//!
//! The shape mirrors proptest where it matters to a test author:
//!
//! ```ignore
//! cdpd_testkit::props! {
//!     config: Config::with_cases(64);
//!     fn reverse_is_involutive(v in vec_of(0i64..100, 0..50)) {
//!         let mut r = v.clone();
//!         r.reverse();
//!         r.reverse();
//!         assert_eq!(&r, v);
//!     }
//! }
//! ```
//!
//! Differences from proptest, by design:
//!
//! * Case seeds are **deterministic** (derived from the test name) so a
//!   hermetic build always tests the same inputs; set `CDPD_PROP_SEED`
//!   to explore a different stream, `CDPD_PROP_CASES` to change volume.
//! * Shrinking is value-based and greedy: [`Strategy::shrink`] proposes
//!   smaller candidates, the runner keeps any that still fail. Mapped
//!   strategies ([`Strategy::prop_map`]) don't shrink through the map,
//!   but containers shrink their *structure* regardless, which is what
//!   minimizes operation sequences in practice.
//! * Failing case seeds persist to `tests/regressions/<test>.seeds`
//!   (the in-tree analogue of `*.proptest-regressions`) and replay
//!   before any new cases on the next run.

use crate::rng::{splitmix64, Prng};
use std::fmt::Debug;
use std::io::Write as _;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

// --- Strategy ----------------------------------------------------------

/// A generator of test inputs, with optional shrinking.
pub trait Strategy {
    /// The generated input type.
    type Value: Clone + Debug;

    /// Produce one input from the RNG stream.
    fn generate(&self, rng: &mut Prng) -> Self::Value;

    /// Propose strictly "smaller" candidate inputs. The runner re-tests
    /// each candidate and recurses on any that still fails; returning
    /// an empty list ends shrinking at `value`.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values (shrinking does not pass through the
    /// map; containers above a map still shrink their structure).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Clone + Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Type-erase for heterogeneous composition ([`OneOf`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut Prng) -> V;
    fn shrink_dyn(&self, value: &V) -> Vec<V>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut Prng) -> S::Value {
        self.generate(rng)
    }
    fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V: Clone + Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut Prng) -> V {
        self.0.generate_dyn(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        self.0.shrink_dyn(value)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Clone + Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut Prng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// The constant strategy: always yields its value.
#[derive(Clone, Debug)]
pub struct Just<V>(pub V);

impl<V: Clone + Debug> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut Prng) -> V {
        self.0.clone()
    }
}

// --- Integer / bool strategies -----------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty => $u:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Prng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Shrink toward the lower bound: lo, halfway, v - 1.
                let span = (*value as $u).wrapping_sub(self.start as $u);
                let mut out = Vec::new();
                for s in [0, span / 2, span.saturating_sub(1)] {
                    let v = (self.start as $u).wrapping_add(s) as $t;
                    if v != *value && !out.contains(&v) {
                        out.push(v);
                    }
                }
                out
            }
        }
    )+};
}
impl_range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Any `i64`, shrinking toward zero.
pub fn any_i64() -> AnyI64 {
    AnyI64
}

/// See [`any_i64`].
#[derive(Clone, Copy, Debug)]
pub struct AnyI64;

impl Strategy for AnyI64 {
    type Value = i64;
    fn generate(&self, rng: &mut Prng) -> i64 {
        rng.next_u64() as i64
    }
    fn shrink(&self, value: &i64) -> Vec<i64> {
        let mut out = Vec::new();
        for v in [0, value / 2, value - value.signum()] {
            if v != *value && !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }
}

/// Any `u8`, shrinking toward zero.
pub fn any_u8() -> AnyU8 {
    AnyU8
}

/// See [`any_u8`].
#[derive(Clone, Copy, Debug)]
pub struct AnyU8;

impl Strategy for AnyU8 {
    type Value = u8;
    fn generate(&self, rng: &mut Prng) -> u8 {
        (rng.next_u64() & 0xFF) as u8
    }
    fn shrink(&self, value: &u8) -> Vec<u8> {
        match *value {
            0 => Vec::new(),
            1 => vec![0],
            v => vec![0, v / 2, v - 1],
        }
    }
}

/// Either boolean, shrinking `true → false`.
pub fn any_bool() -> AnyBool {
    AnyBool
}

/// See [`any_bool`].
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut Prng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

// --- Tuples ------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut Prng) -> Self::Value {
                ( $(self.$idx.generate(rng),)+ )
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = candidate;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// --- Containers --------------------------------------------------------

/// `Vec`s of `elem` with a length drawn from `len`.
pub fn vec_of<S: Strategy>(elem: S, len: Range<usize>) -> VecOf<S> {
    assert!(len.start < len.end, "vec_of needs a non-empty length range");
    VecOf { elem, len }
}

/// See [`vec_of`].
pub struct VecOf<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Prng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.len.start;
        let n = value.len();
        let mut out: Vec<Vec<S::Value>> = Vec::new();
        // Structural shrinks first: big truncations, then single
        // removals (keeping >= the length floor).
        if n > min {
            let keep = min.max(n / 2);
            if keep < n {
                out.push(value[..keep].to_vec());
                out.push(value[n - keep..].to_vec());
            }
            for i in 0..n.min(256) {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Then element-wise shrinks.
        for i in 0..n.min(64) {
            for candidate in self.elem.shrink(&value[i]) {
                let mut v = value.clone();
                v[i] = candidate;
                out.push(v);
            }
        }
        out
    }
}

/// `BTreeSet`s of `elem` with a size drawn from `size`. Generation
/// re-draws on collision (bounded attempts), so sparse domains may
/// yield fewer than the drawn size.
pub fn btree_set_of<S>(elem: S, size: Range<usize>) -> BTreeSetOf<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(
        size.start < size.end,
        "btree_set_of needs a non-empty size range"
    );
    BTreeSetOf { elem, size }
}

/// See [`btree_set_of`].
pub struct BTreeSetOf<S> {
    elem: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetOf<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = std::collections::BTreeSet<S::Value>;

    fn generate(&self, rng: &mut Prng) -> Self::Value {
        let target = rng.gen_range(self.size.clone());
        let mut out = std::collections::BTreeSet::new();
        let mut attempts = target * 8 + 32;
        while out.len() < target && attempts > 0 {
            out.insert(self.elem.generate(rng));
            attempts -= 1;
        }
        out
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let min = self.size.start;
        let mut out = Vec::new();
        if value.len() > min {
            for e in value.iter().take(256) {
                let mut v = value.clone();
                v.remove(e);
                out.push(v);
            }
        }
        for e in value.iter().take(64) {
            for candidate in self.elem.shrink(e) {
                if !value.contains(&candidate) {
                    let mut v = value.clone();
                    v.remove(e);
                    v.insert(candidate);
                    out.push(v);
                }
            }
        }
        out
    }
}

/// `Option`s of `inner`: `Some` with probability 0.9, shrinking
/// `Some(v) → None` first, then through `v`.
pub fn option_of<S: Strategy>(inner: S) -> OptionOf<S> {
    OptionOf { inner }
}

/// See [`option_of`].
pub struct OptionOf<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionOf<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut Prng) -> Option<S::Value> {
        if rng.gen_bool(0.9) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }

    fn shrink(&self, value: &Option<S::Value>) -> Vec<Option<S::Value>> {
        match value {
            None => Vec::new(),
            Some(v) => std::iter::once(None)
                .chain(self.inner.shrink(v).into_iter().map(Some))
                .collect(),
        }
    }
}

// --- Choice ------------------------------------------------------------

/// Weighted choice among strategies producing one value type. Usually
/// built with the [`one_of!`](crate::one_of) macro.
pub struct OneOf<V> {
    variants: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V: Clone + Debug> OneOf<V> {
    /// A weighted union of `variants` (weights are relative).
    ///
    /// # Panics
    /// Panics if `variants` is empty or all weights are zero.
    pub fn new(variants: Vec<(u32, BoxedStrategy<V>)>) -> OneOf<V> {
        let total: u64 = variants.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "one_of needs at least one positive weight");
        OneOf { variants }
    }
}

impl<V: Clone + Debug> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut Prng) -> V {
        let total: u64 = self.variants.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.variants {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("pick < total")
    }

    fn shrink(&self, value: &V) -> Vec<V> {
        // Which variant produced `value` is unknown; pool every
        // variant's proposals (the runner re-tests each one anyway).
        self.variants
            .iter()
            .flat_map(|(_, s)| s.shrink(value))
            .collect()
    }
}

/// Weighted (or unweighted) choice among strategies of one value type:
/// `one_of![3 => a, 1 => b]` or `one_of![a, b, c]`.
#[macro_export]
macro_rules! one_of {
    ( $( $w:literal => $s:expr ),+ $(,)? ) => {
        $crate::prop::OneOf::new(vec![ $( ($w, $crate::prop::Strategy::boxed($s)) ),+ ])
    };
    ( $( $s:expr ),+ $(,)? ) => {
        $crate::prop::OneOf::new(vec![ $( (1u32, $crate::prop::Strategy::boxed($s)) ),+ ])
    };
}

// --- Strings -----------------------------------------------------------

/// Strings of chars drawn uniformly from `charset`, with a length drawn
/// from `len`. Shrinks by truncating toward the length floor and by
/// replacing chars with the first charset char.
pub fn string_of(charset: &str, len: Range<usize>) -> StringOf {
    assert!(!charset.is_empty(), "string_of needs a non-empty charset");
    assert!(
        len.start < len.end,
        "string_of needs a non-empty length range"
    );
    StringOf {
        chars: charset.chars().collect(),
        len,
    }
}

/// See [`string_of`].
pub struct StringOf {
    chars: Vec<char>,
    len: Range<usize>,
}

impl Strategy for StringOf {
    type Value = String;

    fn generate(&self, rng: &mut Prng) -> String {
        let n = rng.gen_range(self.len.clone());
        (0..n)
            .map(|_| self.chars[rng.gen_range(0..self.chars.len())])
            .collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let chars: Vec<char> = value.chars().collect();
        let n = chars.len();
        let min = self.len.start;
        let mut out = Vec::new();
        if n > min {
            out.push(chars[..min].iter().collect());
            out.push(chars[..min.max(n / 2)].iter().collect());
            out.push(chars[..n - 1].iter().collect());
        }
        let simplest = self.chars[0];
        for i in 0..n.min(16) {
            if chars[i] != simplest {
                let mut c = chars.clone();
                c[i] = simplest;
                out.push(c.iter().collect());
            }
        }
        out.retain(|s| s != value);
        out.dedup();
        out
    }
}

/// Arbitrary strings (printable ASCII, controls, SQL-ish specials, and
/// a sample of multi-byte code points) — fuzzing input for parsers.
/// Shrinks by truncation.
pub fn string_any(len: Range<usize>) -> AnyString {
    assert!(
        len.start < len.end,
        "string_any needs a non-empty length range"
    );
    AnyString { len }
}

/// See [`string_any`].
pub struct AnyString {
    len: Range<usize>,
}

const UNUSUAL_CHARS: &[char] = &[
    '\0', '\t', '\n', '\r', '\u{1B}', '\'', '"', '\\', '%', '_', ';', 'é', 'λ', '中', '🦀',
    '\u{FFFD}',
];

impl Strategy for AnyString {
    type Value = String;

    fn generate(&self, rng: &mut Prng) -> String {
        let n = rng.gen_range(self.len.clone());
        (0..n)
            .map(|_| {
                if rng.gen_bool(0.75) {
                    char::from_u32(rng.gen_range(0x20u32..0x7F)).expect("printable ASCII")
                } else {
                    UNUSUAL_CHARS[rng.gen_range(0..UNUSUAL_CHARS.len())]
                }
            })
            .collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let chars: Vec<char> = value.chars().collect();
        let n = chars.len();
        let min = self.len.start;
        let mut out: Vec<String> = Vec::new();
        if n > min {
            out.push(chars[..min].iter().collect());
            out.push(chars[..min.max(n / 2)].iter().collect());
            out.push(chars[..n - 1].iter().collect());
        }
        out.retain(|s| s != value);
        out.dedup();
        out
    }
}

// --- Runner ------------------------------------------------------------

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases to run (after any persisted regressions).
    /// The `CDPD_PROP_CASES` environment variable overrides this.
    pub cases: u32,
    /// Cap on shrink candidates *tested* after a failure.
    pub max_shrink_steps: u32,
    /// Base seed for the case stream. `None` derives a stable seed from
    /// the test name; `CDPD_PROP_SEED` overrides either.
    pub seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 64,
            max_shrink_steps: 2048,
            seed: None,
        }
    }
}

impl Config {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }

    fn effective_cases(&self) -> u32 {
        match std::env::var("CDPD_PROP_CASES") {
            Ok(v) => v.parse().expect("CDPD_PROP_CASES must be a u32"),
            Err(_) => self.cases,
        }
    }

    fn base_seed(&self, name: &str) -> u64 {
        if let Ok(v) = std::env::var("CDPD_PROP_SEED") {
            let v = v.trim().trim_start_matches("0x");
            return u64::from_str_radix(v, 16)
                .or_else(|_| v.parse())
                .expect("CDPD_PROP_SEED must be a u64 (decimal or 0x-hex)");
        }
        self.seed.unwrap_or_else(|| fnv1a(name.as_bytes()))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A property failure, fully shrunk.
#[derive(Debug)]
pub struct Failure {
    /// Seed of the failing case (replayable via the regressions file).
    pub seed: u64,
    /// How many random cases ran before the failure (`None` when the
    /// failure came from a persisted regression seed).
    pub case: Option<u32>,
    /// `Debug` rendering of the minimal failing input.
    pub minimal: String,
    /// Panic message of the minimal failing input.
    pub message: String,
    /// Shrink candidates tested.
    pub shrink_steps: u32,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Run a property, returning the shrunk failure instead of panicking.
/// [`check`] is the panicking wrapper every test goes through; this
/// entry point exists so the harness can test itself.
pub fn check_quiet<S: Strategy>(
    name: &str,
    regressions: Option<&Path>,
    config: &Config,
    strategy: S,
    test: impl Fn(&S::Value),
) -> Result<(), Failure> {
    let run = |value: &S::Value| -> Result<(), String> {
        catch_unwind(AssertUnwindSafe(|| test(value))).map_err(panic_message)
    };

    let fail = |seed: u64, case: Option<u32>, first_msg: String| -> Failure {
        let mut rng = Prng::seed_from_u64(seed);
        let mut current = strategy.generate(&mut rng);
        let mut message = first_msg;
        let mut steps = 0u32;
        'shrinking: loop {
            for candidate in strategy.shrink(&current) {
                if steps >= config.max_shrink_steps {
                    break 'shrinking;
                }
                steps += 1;
                if let Err(msg) = run(&candidate) {
                    current = candidate;
                    message = msg;
                    continue 'shrinking;
                }
            }
            break;
        }
        Failure {
            seed,
            case,
            minimal: format!("{current:#?}"),
            message,
            shrink_steps: steps,
        }
    };

    // Replay persisted failure seeds first.
    if let Some(path) = regressions {
        for seed in read_regression_seeds(path) {
            let mut rng = Prng::seed_from_u64(seed);
            let value = strategy.generate(&mut rng);
            if let Err(msg) = run(&value) {
                return Err(fail(seed, None, msg));
            }
        }
    }

    let base = config.base_seed(name);
    for case in 0..config.effective_cases() {
        let mut derive = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let seed = splitmix64(&mut derive);
        let mut rng = Prng::seed_from_u64(seed);
        let value = strategy.generate(&mut rng);
        if let Err(msg) = run(&value) {
            let failure = fail(seed, Some(case), msg);
            if let Some(path) = regressions {
                persist_regression_seed(path, name, &failure);
            }
            return Err(failure);
        }
    }
    Ok(())
}

/// Run a property test: replay persisted regression seeds, then
/// `config.cases` random cases; on failure, shrink, persist the seed,
/// and panic with the minimal input. Use via [`props!`](crate::props).
pub fn check<S: Strategy>(
    name: &str,
    regressions: Option<&Path>,
    config: &Config,
    strategy: S,
    test: impl Fn(&S::Value),
) {
    if let Err(f) = check_quiet(name, regressions, config, strategy, test) {
        let provenance = match f.case {
            Some(case) => format!("case {case}"),
            None => "persisted regression seed".to_owned(),
        };
        panic!(
            "property `{name}` failed ({provenance}, seed {seed:#018x}, {steps} shrink steps)\n\
             minimal input: {minimal}\n\
             failure: {message}",
            seed = f.seed,
            steps = f.shrink_steps,
            minimal = f.minimal,
            message = f.message,
        );
    }
}

fn read_regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("seed = 0x")?;
            let hex = rest.split_whitespace().next()?;
            u64::from_str_radix(hex, 16).ok()
        })
        .collect()
}

fn persist_regression_seed(path: &Path, name: &str, failure: &Failure) {
    let exists = path.exists();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        cdpd_obs::event!(
            "warning: could not persist failure seed to {}",
            path.display()
        );
        return;
    };
    let mut minimal_one_line = failure.minimal.replace('\n', " ");
    minimal_one_line.truncate(160);
    if !exists {
        let _ = writeln!(
            file,
            "# cdpd-testkit failure seeds for `{name}`.\n\
             # One `seed = 0x<hex>` per line; replayed before new cases on every run.\n\
             # Check this file in so everyone re-runs the saved cases."
        );
    }
    let _ = writeln!(
        file,
        "seed = {:#018x} # shrinks to {}",
        failure.seed, minimal_one_line
    );
}

/// Define property tests. Each `fn` becomes a `#[test]` that draws its
/// arguments from the given strategies via [`check`], with failure
/// seeds persisted under `tests/regressions/` of the invoking crate.
///
/// ```ignore
/// cdpd_testkit::props! {
///     config: Config::default();
///     fn addition_commutes(a in any_i64(), b in any_i64()) {
///         assert_eq!(a.wrapping_add(*b), b.wrapping_add(*a));
///     }
/// }
/// ```
///
/// Arguments are bound by reference (`a: &i64` above) — deref scalars
/// where needed.
#[macro_export]
macro_rules! props {
    (
        config: $cfg:expr;
        $(
            $(#[$attr:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$attr])*
            #[test]
            fn $name() {
                let config: $crate::prop::Config = $cfg;
                let strategy = ( $($strat,)+ );
                let path = ::std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("tests")
                    .join("regressions")
                    .join(concat!(module_path!(), ".", stringify!($name), ".seeds"));
                $crate::prop::check(
                    concat!(module_path!(), "::", stringify!($name)),
                    Some(path.as_path()),
                    &config,
                    strategy,
                    |&( $(ref $arg,)+ )| $body,
                );
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_stable() {
        let strat = vec_of(0i64..1000, 1..20);
        let a = strat.generate(&mut Prng::seed_from_u64(99));
        let b = strat.generate(&mut Prng::seed_from_u64(99));
        let c = strat.generate(&mut Prng::seed_from_u64(100));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds virtually never collide");
    }

    #[test]
    fn passing_property_passes() {
        let cfg = Config::with_cases(50);
        check_quiet("t::pass", None, &cfg, (0i64..100, 0i64..100), |&(a, b)| {
            assert_eq!(a + b, b + a);
        })
        .unwrap();
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let cfg = Config::with_cases(200);
        check_quiet("t::bounds", None, &cfg, (5u32..17,), |&(v,)| {
            assert!((5..17).contains(&v));
        })
        .unwrap();
    }

    #[test]
    fn one_of_macro_generates_all_variants() {
        let strat = one_of![2 => 0i64..10, 1 => 100i64..110];
        let mut rng = Prng::seed_from_u64(7);
        let (mut lo, mut hi) = (0, 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            if v < 100 {
                lo += 1
            } else {
                hi += 1
            }
        }
        assert!(lo > 80 && hi > 20, "lo {lo} hi {hi}");
    }
}

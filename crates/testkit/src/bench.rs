//! Micro-benchmarking: warmup, timed samples, median/p95 report — a
//! minimal criterion replacement keeping the familiar bench layout:
//!
//! ```ignore
//! use cdpd_testkit::bench::{BenchmarkId, Criterion};
//! use cdpd_testkit::{criterion_group, criterion_main};
//!
//! fn bench_foo(criterion: &mut Criterion) {
//!     let mut group = criterion.benchmark_group("foo");
//!     group.bench_function("fast_path", |b| b.iter(|| work()));
//!     group.finish();
//! }
//! criterion_group!(benches, bench_foo);
//! criterion_main!(benches);
//! ```
//!
//! Each benchmark warms up, picks an iteration count targeting a fixed
//! per-sample duration, then records `sample_size` samples of mean
//! ns/iteration. The report prints median and p95; when
//! `CDPD_BENCH_JSON_DIR` is set, each group also writes
//! `BENCH_<group>.json` there, so repeated runs build a trajectory.

use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

const WARMUP_NANOS: u64 = 30_000_000; // 30 ms
const SAMPLE_TARGET_NANOS: u64 = 10_000_000; // 10 ms

/// Top-level bench context; one per process, passed to every bench fn.
pub struct Criterion {
    json_dir: Option<PathBuf>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            json_dir: std::env::var_os("CDPD_BENCH_JSON_DIR").map(PathBuf::from),
            default_sample_size: 15,
        }
    }
}

impl Criterion {
    /// Set the default sample count groups start with (builder-style,
    /// for `criterion_group!`'s `config = ...` form).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.default_sample_size = n.max(2);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size,
            results: Vec::new(),
            metrics: Vec::new(),
        }
    }
}

/// A parameterized benchmark name: `BenchmarkId::new("solve", k)`
/// renders as `solve/k`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_owned(),
        }
    }
}

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Benchmark id within its group.
    pub id: String,
    /// Median ns/iter across samples.
    pub median_ns: f64,
    /// 95th-percentile ns/iter across samples.
    pub p95_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    results: Vec<Stats>,
    metrics: Vec<(String, f64)>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark (default 15).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        self.run(id.name, f);
    }

    /// Run one benchmark with an input value (criterion-compatible
    /// shape; the input is simply passed through to the closure).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id.name, |b| f(b, input));
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: Mode::Warmup,
            samples: Vec::new(),
            iters: 1,
        };
        f(&mut bencher); // warmup + calibration
        bencher.mode = Mode::Measure(self.sample_size);
        bencher.samples.clear();
        f(&mut bencher);
        let stats = bencher.stats(&id);
        println!(
            "{:<44} median {:>12}  p95 {:>12}  ({} samples × {} iters)",
            format!("{}/{}", self.name, stats.id),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            stats.samples,
            stats.iters_per_sample,
        );
        self.results.push(stats);
    }

    /// Record a scalar, non-timing metric (a counter, a byte count, a
    /// ratio) alongside the group's timing results. Metrics print with
    /// the report and land in the JSON file as
    /// `{"group", "id", "metric"}` records, so trajectories can track
    /// work counts as well as durations.
    pub fn metric(&mut self, id: impl Into<String>, value: f64) {
        let id = id.into();
        println!(
            "{:<44} metric {:>14}",
            format!("{}/{}", self.name, id),
            fmt_metric(value)
        );
        self.metrics.push((id, value));
    }

    /// Write the group's JSON report (if configured). Dropping the
    /// group without calling `finish` does the same.
    pub fn finish(self) {}
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        let Some(dir) = self.criterion.json_dir.clone() else {
            return;
        };
        if self.results.is_empty() && self.metrics.is_empty() {
            return;
        }
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = dir.join(format!("BENCH_{}.json", self.name.replace('/', "_")));
        // Every report leads with a uniform host stanza: bench numbers
        // are only comparable across runs on like hardware, and the
        // ci.sh bench-diff gate reads `cores` to skip cross-host diffs.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut records: Vec<String> = vec![format!(
            "  {{\"group\": {:?}, \"id\": \"host\", \"cores\": {cores}, \"os\": {:?}}}",
            self.name,
            std::env::consts::OS,
        )];
        records.extend(self
            .results
            .iter()
            .map(|s| {
                format!(
                    "  {{\"group\": {:?}, \"id\": {:?}, \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
                    self.name, s.id, s.median_ns, s.p95_ns, s.samples, s.iters_per_sample,
                )
            }));
        records.extend(self.metrics.iter().map(|(id, value)| {
            format!(
                "  {{\"group\": {:?}, \"id\": {:?}, \"metric\": {value}}}",
                self.name, id
            )
        }));
        let json = format!("[\n{}\n]\n", records.join(",\n"));
        if std::fs::write(&path, json).is_err() {
            cdpd_obs::event!("warning: could not write {}", path.display());
        }
    }
}

enum Mode {
    Warmup,
    Measure(usize),
}

/// Passed to every benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    mode: Mode,
    samples: Vec<f64>,
    iters: u64,
}

impl Bencher {
    /// Measure a closure. The closure's return value is passed through
    /// [`std::hint::black_box`] so the computation is not optimized out.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        match self.mode {
            Mode::Warmup => {
                // Run for the warmup budget, counting iterations to
                // calibrate how many fit in one sample.
                let start = Instant::now();
                let mut iters: u64 = 0;
                loop {
                    std::hint::black_box(f());
                    iters += 1;
                    let elapsed = start.elapsed().as_nanos() as u64;
                    if elapsed >= WARMUP_NANOS {
                        let per_iter = (elapsed / iters).max(1);
                        self.iters = (SAMPLE_TARGET_NANOS / per_iter).clamp(1, 1_000_000);
                        break;
                    }
                }
            }
            Mode::Measure(samples) => {
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..self.iters {
                        std::hint::black_box(f());
                    }
                    let elapsed = start.elapsed().as_nanos() as f64;
                    self.samples.push(elapsed / self.iters as f64);
                }
            }
        }
    }

    fn stats(&self, id: &str) -> Stats {
        let mut sorted = self.samples.clone();
        assert!(
            !sorted.is_empty(),
            "benchmark closure never called Bencher::iter"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = sorted[sorted.len() / 2];
        let p95 = sorted[((sorted.len() - 1) as f64 * 0.95) as usize];
        Stats {
            id: id.to_owned(),
            median_ns: median,
            p95_ns: p95,
            samples: sorted.len(),
            iters_per_sample: self.iters,
        }
    }
}

fn fmt_metric(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value:.3}")
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collect bench functions into one runnable group, criterion-style:
/// `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $group;
            config = $crate::bench::Criterion::default();
            targets = $($target),+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion: $crate::bench::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a `harness = false` bench target:
/// `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_sane_stats() {
        let mut bencher = Bencher {
            mode: Mode::Measure(8),
            samples: Vec::new(),
            iters: 100,
        };
        bencher.iter(|| std::hint::black_box((0..50u64).sum::<u64>()));
        let stats = bencher.stats("sum");
        assert_eq!(stats.samples, 8);
        assert!(stats.median_ns > 0.0);
        assert!(stats.p95_ns >= stats.median_ns);
    }
}

//! Deterministic fault injection for the durable storage tier.
//!
//! [`FaultyVfs`] wraps any [`Vfs`] and kills the "process" at the N-th
//! mutating operation (`write_at` / `sync` / `truncate`): the fatal
//! write lands only a pseudo-random prefix of its bytes (a torn write,
//! derived from the injected seed so runs replay exactly), and every
//! mutating operation after the kill fails. This models a crash at an
//! arbitrary instruction boundary: whatever bytes reached the inner VFS
//! before the kill are exactly what recovery gets to see.
//!
//! The recovery property suite drives this with the xoshiro PRNG:
//! enumerate a workload once against an unbounded `FaultyVfs` to learn
//! its mutating-op count, then re-run it with `kill_at` drawn from that
//! range and reopen the surviving bytes — so kill points shrink and
//! replay like any other property-test input.

use cdpd_storage::{Vfs, VfsFile};
use cdpd_types::{Error, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::rng::splitmix64;

/// Shared fault state: one per [`FaultyVfs`], shared by every file
/// handle opened through it (the kill point is global to the "process",
/// not per file).
struct FaultState {
    /// Mutating operations performed so far.
    ops: AtomicU64,
    /// The op index (1-based) at which the process dies; `u64::MAX`
    /// never kills (counting mode).
    kill_at: u64,
    /// Seed for the torn-write prefix length.
    seed: u64,
    killed: AtomicBool,
}

impl FaultState {
    /// Account one mutating op; returns what the op must do.
    fn step(&self) -> Fate {
        if self.killed.load(Ordering::Relaxed) {
            return Fate::Dead;
        }
        let op = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if op == self.kill_at {
            self.killed.store(true, Ordering::Relaxed);
            Fate::KillNow { op }
        } else {
            Fate::Proceed
        }
    }
}

enum Fate {
    Proceed,
    KillNow { op: u64 },
    Dead,
}

fn crashed() -> Error {
    Error::Io(std::io::Error::other("injected crash: process killed"))
}

/// A [`Vfs`] wrapper that injects a deterministic process-kill at the
/// `kill_at`-th mutating operation. See the [module docs](self).
#[derive(Clone)]
pub struct FaultyVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<FaultState>,
}

impl FaultyVfs {
    /// Wrap `inner`, killing at the `kill_at`-th mutating op (1-based).
    /// `seed` drives the torn-write prefix of the fatal write. Pass
    /// `u64::MAX` as `kill_at` to never kill — run a workload once in
    /// that mode and read [`FaultyVfs::ops`] to learn the valid kill
    /// range.
    pub fn new(inner: Arc<dyn Vfs>, kill_at: u64, seed: u64) -> FaultyVfs {
        FaultyVfs {
            inner,
            state: Arc::new(FaultState {
                ops: AtomicU64::new(0),
                kill_at,
                seed,
                killed: AtomicBool::new(false),
            }),
        }
    }

    /// Mutating operations performed so far.
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::Relaxed)
    }

    /// Whether the kill point has been hit.
    pub fn killed(&self) -> bool {
        self.state.killed.load(Ordering::Relaxed)
    }
}

impl Vfs for FaultyVfs {
    fn open(&self, name: &str) -> Result<Box<dyn VfsFile>> {
        // Opening is not a mutating op (a crashed process cannot open
        // files anyway — recovery reopens through the *inner* VFS).
        if self.killed() {
            return Err(crashed());
        }
        Ok(Box::new(FaultyFile {
            inner: self.inner.open(name)?,
            state: Arc::clone(&self.state),
        }))
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn delete(&self, name: &str) -> Result<()> {
        match self.state.step() {
            Fate::Proceed => self.inner.delete(name),
            // The fatal delete does not happen — a crash mid-unlink is
            // modeled as not-unlinked (the stricter case for recovery).
            Fate::KillNow { .. } | Fate::Dead => Err(crashed()),
        }
    }
}

struct FaultyFile {
    inner: Box<dyn VfsFile>,
    state: Arc<FaultState>,
}

impl VfsFile for FaultyFile {
    fn read_at(&self, off: u64, buf: &mut [u8]) -> Result<usize> {
        if self.state.killed.load(Ordering::Relaxed) {
            return Err(crashed());
        }
        self.inner.read_at(off, buf)
    }

    fn write_at(&self, off: u64, data: &[u8]) -> Result<()> {
        match self.state.step() {
            Fate::Proceed => self.inner.write_at(off, data),
            Fate::KillNow { op } => {
                // Torn write: a pseudo-random prefix reaches storage.
                let mut s = self.state.seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let keep = (splitmix64(&mut s) % (data.len() as u64 + 1)) as usize;
                if keep > 0 {
                    self.inner.write_at(off, &data[..keep])?;
                }
                Err(crashed())
            }
            Fate::Dead => Err(crashed()),
        }
    }

    fn sync(&self) -> Result<()> {
        match self.state.step() {
            // A kill on fsync: the sync does not happen. (With a
            // memory-backed inner VFS all prior writes are visible
            // anyway; on a real disk this would be where unsynced data
            // could vanish.)
            Fate::Proceed => self.inner.sync(),
            Fate::KillNow { .. } | Fate::Dead => Err(crashed()),
        }
    }

    fn len(&self) -> Result<u64> {
        if self.state.killed.load(Ordering::Relaxed) {
            return Err(crashed());
        }
        self.inner.len()
    }

    fn truncate(&self, len: u64) -> Result<()> {
        match self.state.step() {
            Fate::Proceed => self.inner.truncate(len),
            Fate::KillNow { .. } | Fate::Dead => Err(crashed()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpd_storage::MemVfs;

    #[test]
    fn counts_mutating_ops_without_killing() {
        let mem = MemVfs::new();
        let vfs = FaultyVfs::new(Arc::new(mem.clone()), u64::MAX, 0);
        let f = vfs.open("x").unwrap();
        f.write_at(0, b"abc").unwrap();
        f.sync().unwrap();
        f.truncate(1).unwrap();
        let mut buf = [0u8; 1];
        f.read_at(0, &mut buf).unwrap(); // reads don't count
        assert_eq!(vfs.ops(), 3);
        assert!(!vfs.killed());
    }

    #[test]
    fn kill_tears_the_fatal_write_and_blocks_the_rest() {
        let mem = MemVfs::new();
        let vfs = FaultyVfs::new(Arc::new(mem.clone()), 2, 42);
        let f = vfs.open("x").unwrap();
        f.write_at(0, b"first").unwrap();
        let err = f.write_at(5, b"second").unwrap_err();
        assert!(err.to_string().contains("injected crash"), "{err}");
        assert!(vfs.killed());
        // Everything after the kill fails, including new opens.
        assert!(f.sync().is_err());
        assert!(f.write_at(0, b"z").is_err());
        assert!(vfs.open("y").is_err());
        // The surviving bytes: all of write 1, a prefix of write 2.
        let bytes = mem.snapshot("x").unwrap();
        assert!(bytes.len() >= 5, "first write fully present");
        assert_eq!(&bytes[..5], b"first");
        assert!(bytes.len() <= 11, "fatal write at most a prefix");
    }

    #[test]
    fn torn_prefix_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mem = MemVfs::new();
            let vfs = FaultyVfs::new(Arc::new(mem.clone()), 1, seed);
            let f = vfs.open("x").unwrap();
            let _ = f.write_at(0, b"0123456789");
            mem.snapshot("x").unwrap_or_default()
        };
        assert_eq!(run(7), run(7), "same seed, same torn prefix");
    }
}

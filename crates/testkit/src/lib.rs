//! # cdpd-testkit — the repo's hermetic test substrate
//!
//! Everything the workspace needs from `rand`, `proptest`, and
//! `criterion`, reimplemented in-tree on `std` alone, so the whole
//! repository builds and tests with an empty cargo registry:
//!
//! * [`rng`] — a deterministic PRNG ([`Prng`]: SplitMix64-seeded
//!   xoshiro256++) with the `gen_range`/`shuffle`/`choose_weighted`
//!   surface the workload generator, examples, and bench binaries use.
//!   Seed-stable across platforms: the same seed always produces the
//!   same stream, which is what makes every experiment replayable.
//! * [`prop`] — a property-testing harness: composable [`prop::Strategy`]
//!   generators with input shrinking, case counts configurable via
//!   `CDPD_PROP_CASES`, and failure-seed persistence in
//!   `tests/regressions/*.seeds` files (the in-tree analogue of
//!   proptest's `*.proptest-regressions`).
//! * [`mod@bench`] — a minimal criterion replacement (warmup, timed samples,
//!   median/p95 report, optional JSON output via `CDPD_BENCH_JSON_DIR`)
//!   keeping the `criterion_group!`/`criterion_main!` bench layout.
//! * [`fault`] — deterministic crash injection ([`FaultyVfs`]): a VFS
//!   wrapper that kills the process-model at the N-th mutating storage
//!   operation with a seeded torn write, powering the kill-at-any-point
//!   recovery property suite.

#![warn(missing_docs)]

pub mod bench;
pub mod fault;
pub mod prop;
pub mod rng;

pub use fault::FaultyVfs;
pub use rng::Prng;

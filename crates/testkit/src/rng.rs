//! Deterministic pseudo-random numbers: SplitMix64 seeding a
//! xoshiro256++ core.
//!
//! The same `u64` seed yields the same stream on every platform and
//! every run — the property the whole experiment harness leans on
//! (Definition: `generate(spec, seed)` must be byte-identical forever).
//! xoshiro256++ passes BigCrush and is the generator family `rand`'s
//! `SmallRng` used; SplitMix64 expansion of the one-word seed matches
//! the reference `seed_from_u64` convention, so the first outputs agree
//! with the published test vectors.

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Used to expand a 64-bit seed into the 256-bit xoshiro state, and
/// handy on its own for deriving independent sub-seeds (e.g. one seed
/// per property-test case) without correlating the streams.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ PRNG.
///
/// Not cryptographic; for workload generation, property testing, and
/// benchmarks only.
#[derive(Clone, Debug)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Seed via SplitMix64 expansion (the `rand` `seed_from_u64`
    /// convention, so known-answer vectors apply).
    pub fn seed_from_u64(seed: u64) -> Prng {
        let mut sm = seed;
        Prng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from a half-open range: `lo <= x < hi`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // Compare against a fixed-point threshold so the decision is a
        // pure integer comparison (bit-stable across platforms).
        let threshold = (p.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64;
        self.next_u64() <= threshold
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }

    /// An element drawn with probability proportional to `weight(item)`.
    /// Returns `None` if the slice is empty or all weights are zero.
    pub fn choose_weighted<'a, T>(
        &mut self,
        slice: &'a [T],
        weight: impl Fn(&T) -> u64,
    ) -> Option<&'a T> {
        let total: u64 = slice.iter().map(&weight).sum();
        if total == 0 {
            return None;
        }
        let mut pick = self.gen_range(0..total);
        for item in slice {
            let w = weight(item);
            if pick < w {
                return Some(item);
            }
            pick -= w;
        }
        unreachable!("pick < total guarantees a hit")
    }
}

/// Integer types [`Prng::gen_range`] can sample uniformly.
pub trait SampleRange: Sized {
    /// Uniform draw from `range` (panics on an empty range).
    fn sample(rng: &mut Prng, range: std::ops::Range<Self>) -> Self;
}

/// Uniform `u64` in `[0, n)` by widening multiply (Lemire), with a
/// rejection pass so the result is exactly uniform — and, since the
/// algorithm is pure integer arithmetic, identical on every platform.
fn uniform_below(rng: &mut Prng, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let low = m as u64;
        if low >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected: retry (probability < n / 2^64).
    }
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),+) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Prng, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end - range.start) as u64;
                range.start + uniform_below(rng, span) as $t
            }
        }
    )+};
}
impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),+) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Prng, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                (range.start as $u).wrapping_add(uniform_below(rng, span) as $u) as $t
            }
        }
    )+};
}
impl_sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-7i64..13);
            assert!((-7..13).contains(&v));
            let u = rng.gen_range(5u32..6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn full_signed_range_is_reachable() {
        let mut rng = Prng::seed_from_u64(2);
        let (mut neg, mut pos) = (false, false);
        for _ in 0..64 {
            let v = rng.gen_range(i64::MIN..i64::MAX);
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Prng::seed_from_u64(0).gen_range(3i64..3);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Prng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = Prng::seed_from_u64(4);
        let items = [("a", 90u64), ("b", 10u64)];
        let mut a = 0;
        for _ in 0..1000 {
            if rng.choose_weighted(&items, |i| i.1).unwrap().0 == "a" {
                a += 1;
            }
        }
        assert!((850..950).contains(&a), "got {a}");
        assert!(rng.choose_weighted(&[] as &[u32], |_| 1).is_none());
        assert!(rng.choose_weighted(&[1, 2], |_| 0).is_none());
    }
}

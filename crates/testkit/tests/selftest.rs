//! The testkit testing itself: known-answer vectors for the PRNG,
//! shrinker convergence on a planted minimal counterexample, failure
//! seed persistence + replay, and a bench smoke test (including the
//! JSON report).

use cdpd_testkit::prop::{self, vec_of, Config};
use cdpd_testkit::props;
use cdpd_testkit::Prng;
use std::path::PathBuf;

/// First 8 outputs for three seeds, computed with an independent
/// implementation of SplitMix64-seeded xoshiro256++. The seed-0 head
/// (0x53175d61490b23df) also matches the published `rand_xoshiro`
/// `seed_from_u64(0)` vector, pinning the whole seeding convention.
#[test]
fn prng_matches_reference_vectors() {
    const VECTORS: &[(u64, [u64; 8])] = &[
        (
            0,
            [
                0x53175d61490b23df,
                0x61da6f3dc380d507,
                0x5c0fdf91ec9a7bfc,
                0x02eebf8c3bbe5e1a,
                0x7eca04ebaf4a5eea,
                0x0543c37757f08d9a,
                0xdb7490c75ab5026e,
                0xd87343e6464bc959,
            ],
        ),
        (
            42,
            [
                0xd0764d4f4476689f,
                0x519e4174576f3791,
                0xfbe07cfb0c24ed8c,
                0xb37d9f600cd835b8,
                0xcb231c3874846a73,
                0x968d9f004e50de7d,
                0x201718ff221a3556,
                0x9ae94e070ed8cb46,
            ],
        ),
        (
            0xDEADBEEF,
            [
                0x0c520eb8fea98ede,
                0x2b74a6338b80e0e2,
                0xbe238770c3795322,
                0x5f235f98a244ea97,
                0xe004f0cc1514d858,
                0x436a209963ff9223,
                0x8302e81b9685b6d4,
                0xa7eec00b77ec3019,
            ],
        ),
    ];
    for &(seed, expected) in VECTORS {
        let mut rng = Prng::seed_from_u64(seed);
        let got: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(got, expected, "stream for seed {seed:#x} diverged");
    }
}

/// The planted property: fails iff the vector has >= 3 elements and any
/// element >= 50. The greedy shrinker must walk an arbitrary failing
/// input all the way down to the unique minimal shape — exactly three
/// elements, two zeros, and a single 50.
#[test]
fn shrinker_converges_to_minimal_counterexample() {
    let cfg = Config::with_cases(30);
    let failure = prop::check_quiet(
        "selftest::planted",
        None,
        &cfg,
        vec_of(0i64..100, 0..50),
        |v| {
            assert!(v.len() < 3 || v.iter().all(|&x| x < 50), "planted failure");
        },
    )
    .expect_err("the planted property must fail");

    // `minimal` is the Debug rendering of a Vec<i64>; parse it back.
    let mut elems: Vec<i64> = failure
        .minimal
        .trim()
        .trim_start_matches('[')
        .trim_end_matches(']')
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .expect("minimal must be a Vec<i64> debug string")
        })
        .collect();
    elems.sort_unstable();
    assert_eq!(
        elems,
        vec![0, 0, 50],
        "not fully shrunk: {}",
        failure.minimal
    );
    assert!(failure.shrink_steps > 0);
}

/// A failing case's seed is appended to the regressions file, and the
/// next run replays it before any random cases.
#[test]
fn failure_seeds_persist_and_replay() {
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("selftest_persist.seeds");
    let _ = std::fs::remove_file(&path);
    let cfg = Config::with_cases(30);
    let strategy = || vec_of(0i64..100, 0..50);
    let test = |v: &Vec<i64>| {
        assert!(v.len() < 3 || v.iter().all(|&x| x < 50), "planted failure");
    };

    let first = prop::check_quiet("selftest::persist", Some(&path), &cfg, strategy(), test)
        .expect_err("must fail");
    let text = std::fs::read_to_string(&path).expect("seed file must be written");
    assert!(
        text.contains(&format!("seed = {:#018x}", first.seed)),
        "persisted file must name the failing seed: {text}"
    );

    // Replay: the persisted seed fires before any random case.
    let replayed = prop::check_quiet("selftest::persist", Some(&path), &cfg, strategy(), test)
        .expect_err("replay must fail");
    assert_eq!(replayed.seed, first.seed);
    assert_eq!(
        replayed.case, None,
        "failure must come from the persisted seed"
    );
    let _ = std::fs::remove_file(&path);
}

/// Same name + same config => the runner feeds the test the exact same
/// sequence of generated cases.
#[test]
fn case_stream_is_deterministic() {
    let collect = || {
        let seen = std::sync::Mutex::new(Vec::new());
        let cfg = Config::with_cases(10);
        prop::check_quiet(
            "selftest::stream",
            None,
            &cfg,
            vec_of(0i64..1000, 1..20),
            |v| {
                seen.lock().unwrap().push(v.clone());
            },
        )
        .unwrap();
        seen.into_inner().unwrap()
    };
    let first = collect();
    assert_eq!(first.len(), 10);
    assert_eq!(first, collect(), "two runs must generate identical cases");
}

/// End-to-end bench smoke: a trivial benchmark produces sane stats and
/// a JSON report when `CDPD_BENCH_JSON_DIR` is set.
#[test]
fn bench_smoke_writes_json_report() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("bench_smoke");
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("CDPD_BENCH_JSON_DIR", &dir);
    {
        let mut criterion = cdpd_testkit::bench::Criterion::default().sample_size(3);
        let mut group = criterion.benchmark_group("smoke");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }
    std::env::remove_var("CDPD_BENCH_JSON_DIR");
    let json = std::fs::read_to_string(dir.join("BENCH_smoke.json"))
        .expect("bench must write its JSON report");
    assert!(json.contains("\"id\": \"sum\""), "{json}");
    assert!(json.contains("median_ns"), "{json}");
    assert!(
        json.contains("\"id\": \"host\"") && json.contains("\"cores\":"),
        "report must lead with the host stanza: {json}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// The props! macro must work from an external crate (this is how every
// ported suite uses it).
props! {
    config: Config::with_cases(16);

    fn props_macro_works_externally(v in vec_of(0u32..10, 1..5), flip in prop::any_bool()) {
        assert!(v.len() < 5);
        assert!(v.iter().all(|&x| x < 10));
        let _ = *flip;
    }
}

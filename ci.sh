#!/usr/bin/env bash
# Hermetic CI: the whole workspace must build, test, and run its
# experiment binaries offline with an empty cargo registry, and no
# Cargo.toml may reintroduce an external (registry) dependency.
set -euo pipefail
cd "$(dirname "$0")"

echo "== dependency guard: workspace must stay zero-dependency =="
# Every dependency of every workspace member must itself be a workspace
# member (a path crate). cargo metadata resolves the full graph, so a
# registry dependency anywhere — including dev- and build-deps — fails.
mkdir -p target
cargo metadata --format-version 1 --offline > target/ci-metadata.json
python3 - target/ci-metadata.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    meta = json.load(f)
members = {pkg["id"] for pkg in meta["packages"] if pkg["source"] is None}
external = [pkg for pkg in meta["packages"] if pkg["source"] is not None]
if external:
    for pkg in external:
        print(f"external crate in dependency graph: {pkg['name']} {pkg['version']} ({pkg['source']})")
    sys.exit(1)
for pkg in meta["packages"]:
    for dep in pkg["dependencies"]:
        if dep.get("path") is None:
            print(f"{pkg['name']}: dependency `{dep['name']}` is not a path dependency")
            sys.exit(1)
print(f"ok: {len(members)} path crates, zero external dependencies")
EOF

echo "== format check =="
cargo fmt --check

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

echo "== benches + examples compile (offline) =="
cargo build --offline --workspace --benches --examples

echo "== table1 regenerates =="
cargo run --release --offline -p cdpd-bench --bin table1

echo "== oracle layer beats the seed memo path =="
CDPD_BENCH_JSON_DIR="$(pwd)" cargo bench --offline -p cdpd-bench --bench oracle

echo "== online pipeline is bit-identical to batch =="
cargo test -q --offline -p cdpd --test online_equiv

echo "== wide-vocabulary smoke: 128 candidates end-to-end =="
# Break-the-64-ceiling gate: a 128-candidate instance must route
# through Advisor::recommend and an OnlineAdvisor window seal (the
# CoPhy-style decomposed path), not error out at the old width cap.
cargo test -q --offline -p cdpd --test wide_vocab

echo "== config-escape guard: no raw-u64 configs outside the Config type =="
# Configurations are width-agnostic; production code must speak Config,
# never raw u64 bitmasks. Flag `from_bits(` / `.bits()` in non-test
# code outside crates/core/src/config.rs (where the representation
# lives). `f64::from_bits` is the float codec, not a Config escape, and
# src/online.rs decodes legacy v1 (bare-u64) state blobs by design.
python3 - <<'EOF'
import pathlib, sys

ALLOWED_FILES = {"crates/core/src/config.rs", "src/online.rs"}
bad = []
for path in sorted(pathlib.Path(".").glob("**/*.rs")):
    rel = path.as_posix()
    if rel.startswith("target/") or rel in ALLOWED_FILES:
        continue
    if "/tests/" in rel or rel.startswith("tests/") or "/benches/" in rel:
        continue
    prod = []
    for line in path.read_text().splitlines():
        if line.strip().startswith("#[cfg(test)]"):
            break  # everything below is test code
        prod.append(line)
    for n, line in enumerate(prod, 1):
        if ".bits()" in line or (
            "from_bits(" in line and "f64::from_bits(" not in line
        ):
            bad.append(f"{rel}:{n}: {line.strip()}")
if bad:
    print("raw-u64 config escapes in production code:")
    print("\n".join(bad))
    sys.exit(1)
print("ok: production code speaks Config, not raw u64 masks")
EOF

echo "== warm re-solve beats cold rebuild (>=2x, asserted in-bench) =="
CDPD_BENCH_JSON_DIR="$(pwd)" cargo bench --offline -p cdpd-bench --bench online

echo "== concurrency stress: parallel replay bit-identical, 8 seeds x {1,2,8} threads =="
# Each run crosses thread counts {1, 2, 8} against the serial baseline
# in-process (tests/parallel_equiv.rs); CDPD_SEED varies the traces.
for seed in 7 41 97 1234 4242 7777 90210 424242; do
  echo "-- seed $seed --"
  CDPD_SEED="$seed" cargo test -q --offline -p cdpd --test parallel_equiv
done

echo "== concurrency stress: racing writers serialize, 8 seeds =="
# Statement-level serializability of the &self mutator surface
# (tests/concurrent_writers.rs): disjoint sessions bit-identical to
# serial, commuting inserts under racing DDL, online-build catch-up
# equal to a quiesced rebuild. CDPD_SEED varies traces and interleaving.
for seed in 7 41 97 1234 4242 7777 90210 424242; do
  echo "-- seed $seed --"
  CDPD_SEED="$seed" cargo test -q --offline -p cdpd --test concurrent_writers
done

echo "== recovery gate: kill-at-any-point crash matrix =="
# The full suite first (fixed 8-seed x 50-kill-point sweep, advisor
# warm-resume, restore strictness), then the shrinking property re-run
# under a fixed seed matrix so CI replays the same crash schedules on
# every host.
cargo test -q --offline -p cdpd --test recovery_prop
for seed in 0x5eed 0xc0ffee 0xdecade; do
  echo "-- prop seed $seed --"
  CDPD_PROP_SEED="$seed" CDPD_PROP_CASES=8 cargo test -q --offline -p cdpd \
    --test recovery_prop kill_at_any_point_recovers_to_committed_prefix
done

echo "== storage bench: read scaling + WAL/checkpoint/recovery (asserted in-bench) =="
CDPD_BENCH_JSON_DIR="$(pwd)" cargo bench --offline -p cdpd-bench --bench storage

echo "== docs build clean =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps --quiet

echo "== traced quickstart emits valid JSONL =="
CDPD_TRACE=1 CDPD_TRACE_FILE=target/trace.jsonl \
  cargo run --release --offline --example quickstart > /dev/null
python3 - target/trace.jsonl <<'EOF'
import json, sys

spans = events = 0
last_ts = -1
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        rec = json.loads(line)
        kind = rec.get("type")
        assert kind in ("span", "event"), f"line {n}: bad type {kind!r}"
        ts = rec["ts"]
        assert isinstance(ts, int) and ts >= last_ts, f"line {n}: ts not monotonic"
        last_ts = ts
        if kind == "span":
            spans += 1
            for field in ("seq", "name", "path", "start_ns", "dur_ns",
                          "thread", "depth", "attrs", "counters"):
                assert field in rec, f"line {n}: span record missing {field!r}"
            assert rec["start_ns"] + rec["dur_ns"] == ts, f"line {n}: timing mismatch"
        else:
            events += 1
            assert isinstance(rec["msg"], str), f"line {n}: event missing msg"
assert spans > 0, "trace contains no span records"
print(f"ok: {spans} span + {events} event records, monotonic timestamps")
EOF

echo "== calibration report: example emits schema-valid JSON =="
# The calibrate example replays W1 under ModelAccount calibration and
# prints exactly one CalibrationReport JSON object on stdout; validate
# the schema and the reconciliation invariant (live-shape oracle ==
# executor model account, statement for statement).
cargo run --release --offline --example calibrate > target/calibration.json
python3 - target/calibration.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    rep = json.load(f)
SCHEMA = {
    "mode": str, "windows": int, "samples": int, "predicted_ios": int,
    "actual_ios": int, "abs_err_ios": int, "overestimates": int,
    "underestimates": int, "exact": int, "signed_error": float,
    "drift": float, "band": float, "alerts": int, "tripped": bool,
    "by_path": list,
}
for key, ty in SCHEMA.items():
    assert key in rep, f"report missing {key!r}"
    assert isinstance(rep[key], ty), f"{key!r} is {type(rep[key]).__name__}, want {ty.__name__}"
assert rep["mode"] in ("measured_io", "model_account"), rep["mode"]
PATHS = {"seq_scan", "index_seek", "index_range", "index_only_scan",
         "index_extremum", "index_and", "index_or", "write", "other"}
for entry in rep["by_path"]:
    assert set(entry) == {"path", "samples", "predicted_ios", "actual_ios"}, entry
    assert entry["path"] in PATHS, entry["path"]
    assert entry["samples"] > 0, "by_path only lists exercised paths"
assert sum(e["samples"] for e in rep["by_path"]) == rep["samples"]
assert rep["overestimates"] + rep["underestimates"] + rep["exact"] == rep["samples"]
# ModelAccount reconciliation: exact to the page, watchdog silent.
assert rep["samples"] > 0 and rep["exact"] == rep["samples"], \
    f"{rep['samples'] - rep['exact']} of {rep['samples']} predictions diverged"
assert rep["abs_err_ios"] == 0 and rep["drift"] == 0.0
assert rep["alerts"] == 0 and not rep["tripped"]
print(f"ok: CalibrationReport schema valid, {rep['samples']} statements "
      f"reconciled exactly across {len(rep['by_path'])} access paths")
EOF

echo "== disabled-tracing + calibration overhead stays under budget =="
CDPD_BENCH_JSON_DIR="$(pwd)" cargo bench --offline -p cdpd-bench --bench obs

echo "== predicate-tree paths: IndexAnd/IndexOr beat the scan (asserted in-bench) =="
CDPD_BENCH_JSON_DIR="$(pwd)" cargo bench --offline -p cdpd-bench --bench planner

echo "== wire serving: throughput at 1/2/8 sessions, advisor in the loop =="
# Real TCP round trips against cdpd-server; the in-loop advisor must
# not collapse foreground throughput (asserted in-bench).
CDPD_BENCH_JSON_DIR="$(pwd)" cargo bench --offline -p cdpd-bench --bench server

echo "== W4 smoke: generate -> advise -> replay under the recommended schedule =="
# Range/IN/OR-heavy workload end-to-end through OnlineAdvisor; the
# recommended design must be multi-index-serving and the replay must
# actually take the union/intersection paths.
cargo test -q --offline -p cdpd --test w4_workload

echo "== plan equivalence: every access path matches the seq-scan baseline =="
cargo test -q --offline -p cdpd --test predicate_equiv

echo "== bench diff: fresh vs committed metrics (per-metric regression floors) =="
python3 - <<'EOF'
import json, subprocess, sys

# Gate the metrics the benches assert on (higher is better), each with
# its own minimum fresh/committed ratio. Raw timings vary too much
# across hosts to diff; read throughput and scaling ratios are stable
# enough for a 25% band, while WAL commit throughput swings ~2x
# run-to-run on 1-core CI containers, so its band only catches
# order-of-magnitude collapses. Files whose committed run came from a
# host with a different core count are skipped: scaling ratios are not
# comparable across core counts.
GATED = {
    "BENCH_storage.json": {
        "read/threads_1_stmts_per_sec": 0.75,
        "read/scaling_x8": 0.75,
        "wal/commits_per_sec": 0.30,
    },
    # Wide-but-sparse solve time must stay within 2x of the 64-wide
    # solve (t64/t256 >= 0.5, also asserted in-bench); the CI floor
    # sits lower to absorb host noise while still catching a collapse
    # of the decomposition's width independence.
    "BENCH_oracle.json": {
        "width_scaling/within_2x_256": 0.30,
    },
    # Calibrated replay throughput: the predicted-vs-actual loop is on
    # by default in replay_with, so a collapse here means the
    # calibration layer started costing real time. Wide band: raw
    # throughput swings with host load.
    "BENCH_obs.json": {
        "calibration/replay_stmts_per_sec": 0.30,
    },
    # Modelled win margins of the multi-index paths over the scan they
    # displace. These are *deterministic* (logical page I/Os at fixed
    # scale/seed), so the tight floor catches any cost-model change
    # that erodes the IndexOr/IndexAnd advantage.
    "BENCH_planner.json": {
        "win_margin/in_vs_scan": 0.90,
        "win_margin/or_vs_scan": 0.90,
        "win_margin/and_vs_scan": 0.90,
    },
    # Wire-serving throughput and the in-loop advisor's cost. Loopback
    # round trips are noisy on shared hosts, so the bands only catch
    # collapses — a reintroduced Nagle/delayed-ACK stall in the frame
    # codec shows up as a ~100x single-session drop.
    "BENCH_server.json": {
        "sessions_1/stmts_per_sec": 0.30,
        "advisor/overhead_ratio": 0.50,
    },
}

def host_cores(records):
    # The uniform host stanza every report now leads with; fall back to
    # the legacy per-bench `host_cores` metric for older baselines.
    for r in records:
        if r.get("id") == "host":
            return r.get("cores")
    for r in records:
        if r.get("id") == "host_cores":
            return int(r["metric"])
    return None

failed = False
for path, gated in GATED.items():
    show = subprocess.run(
        ["git", "show", f"HEAD:{path}"], capture_output=True, text=True
    )
    if show.returncode != 0:
        print(f"{path}: no committed baseline yet, skipping")
        continue
    old_records = json.loads(show.stdout)
    with open(path) as f:
        new_records = json.load(f)
    old = {r["id"]: r["metric"] for r in old_records if "metric" in r}
    new = {r["id"]: r["metric"] for r in new_records if "metric" in r}
    old_host, new_host = host_cores(old_records), host_cores(new_records)
    if old_host is not None and old_host != new_host:
        print(f"{path}: committed baseline is from a {old_host}-core "
              f"host, this is a {new_host}-core host; skipping")
        continue
    for m, floor in gated.items():
        if m not in new:
            print(f"{path}: {m}: missing from the fresh run")
            failed = True
            continue
        if m not in old:
            print(f"{path}: {m}: new metric, no committed baseline yet, skipping")
            continue
        ratio = new[m] / old[m] if old[m] else 1.0
        verdict = "REGRESSION" if ratio < floor else "ok"
        failed = failed or ratio < floor
        print(f"{path}: {m}: {old[m]:.3f} -> {new[m]:.3f} "
              f"({ratio:.2f}x, floor {floor}) {verdict}")
if failed:
    sys.exit(1)
print("ok: no gated bench metric regressed past its floor")
EOF

echo "== tmpdir hygiene: tests must not leak files into the workspace =="
# Disk-backed tests create their stores under the OS tempdir and clean
# up after themselves; anything untracked left inside the repo after a
# full run (stray db dirs, leaked WALs, bench droppings) is a bug.
# Regenerated BENCH_*.json files are tracked, so they do not trip this.
stray="$(git ls-files --others --exclude-standard)"
if [ -n "$stray" ]; then
  echo "untracked files leaked into the workspace:"
  echo "$stray"
  exit 1
fi
echo "ok: working tree holds no untracked files"

echo "== ci.sh: all green =="

use cdpd_engine::IndexSpec;
use cdpd_sql::{Condition, Dml};
use cdpd_types::{Error, Result, Schema};
use cdpd_workload::SummarizedWorkload;
use std::collections::BTreeMap;

/// Derive candidate index structures from a summarized workload.
///
/// The paper sidesteps candidate generation (*"There are several
/// techniques that can be used to generate such candidates … we will
/// not be concerned with the means by which they are determined"*);
/// this is a standard syntactic generator in the spirit of the index
/// advisors it cites:
///
/// * **per-statement candidates** — for each distinct statement shape,
///   an index on its predicate column(s), and a *covering* index
///   (predicate columns followed by any additionally projected
///   columns);
/// * **per-block merged candidates** — for each workload block, a
///   two-column covering index combining the block's two most frequent
///   predicate columns, in both frequency orders. This is what
///   produces `I(a,b)` and `I(c,d)` from the paper's mixes: a block of
///   mix A queries on `a` and `b` yields the merged candidate
///   `I(a,b)`, which serves `a`-queries with seeks and `b`-queries with
///   index-only scans.
///
/// Results are deduplicated and restricted to columns that exist in
/// `schema`. There is no width cap: configurations are width-agnostic,
/// so every motivated candidate is returned (the second element of the
/// pair — candidates dropped by truncation — is always `0` here).
/// Callers that want a bounded design space use
/// [`candidate_indexes_capped`], which keeps the ranked truncation as
/// an explicit policy instead of a hard-wired encoding limit.
pub fn candidate_indexes(
    schema: &Schema,
    workload: &SummarizedWorkload,
) -> Result<(Vec<IndexSpec>, usize)> {
    candidate_indexes_capped(schema, workload, usize::MAX)
}

/// [`candidate_indexes`] with an explicit candidate budget: the ranked
/// list is truncated to the `max_candidates` most frequently useful
/// candidates, and the number dropped is returned alongside so callers
/// can surface the truncation instead of silently narrowing the design
/// space.
pub fn candidate_indexes_capped(
    schema: &Schema,
    workload: &SummarizedWorkload,
    max_candidates: usize,
) -> Result<(Vec<IndexSpec>, usize)> {
    let table = &workload.table;
    // candidate -> how many weighted statements motivated it
    let mut scored: BTreeMap<IndexSpec, u64> = BTreeMap::new();
    let mut bump = |spec: IndexSpec, weight: u64| {
        *scored.entry(spec).or_insert(0) += weight;
    };

    for block in &workload.blocks {
        // Frequency of predicate columns within this block.
        let mut pred_freq: BTreeMap<&str, u64> = BTreeMap::new();
        for w in &block.weighted {
            let stmt = &w.statement;
            // Conjunctive predicate columns drive composite candidates;
            // an OR term's branches are only ever probed one at a time
            // (rowid-union plans), so each branch column motivates its
            // own single-column candidate instead.
            let mut pred_cols: Vec<&str> = Vec::new();
            let mut or_cols: Vec<&str> = Vec::new();
            for c in stmt.conditions() {
                match c {
                    Condition::Or(_) => {
                        for col in c.columns() {
                            if !or_cols.contains(&col) {
                                or_cols.push(col);
                            }
                        }
                    }
                    _ => pred_cols.push(c.column()),
                }
            }
            for col in pred_cols.iter().chain(&or_cols) {
                if schema.column_id(col).is_none() {
                    return Err(Error::NotFound(format!("column {col} in workload")));
                }
                *pred_freq.entry(col).or_insert(0) += w.count;
            }
            for col in &or_cols {
                bump(IndexSpec::new(table.clone(), &[col]), w.count);
            }
            if pred_cols.is_empty() {
                continue; // unpredicated scans gain nothing from indexes
            }
            // Index on the predicate columns (writes benefit too: the
            // locate phase of UPDATE/DELETE seeks through it).
            bump(IndexSpec::new(table.clone(), &pred_cols), w.count);
            // Covering index: predicate columns + extra projected ones
            // (queries only — writes fetch the heap row regardless).
            if let Dml::Select(sel) = stmt {
                if let Some(proj) = sel.referenced_columns() {
                    let mut cols = pred_cols.clone();
                    for c in proj {
                        if !cols.contains(&c) {
                            cols.push(c);
                        }
                    }
                    if cols.len() > pred_cols.len() {
                        bump(IndexSpec::new(table.clone(), &cols), w.count);
                    }
                }
            }
        }
        // Merged candidate: the block's two hottest predicate columns.
        let mut by_freq: Vec<(&str, u64)> = pred_freq.into_iter().collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        if by_freq.len() >= 2 {
            let (x, wx) = by_freq[0];
            let (y, wy) = by_freq[1];
            bump(IndexSpec::new(table.clone(), &[x, y]), wx + wy);
            bump(IndexSpec::new(table.clone(), &[y, x]), wy);
        }
    }

    let mut ranked: Vec<(IndexSpec, u64)> = scored.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let dropped = ranked.len().saturating_sub(max_candidates);
    if dropped > 0 {
        cdpd_obs::counter!("candidates.dropped").add(dropped as u64);
        cdpd_obs::event!(
            "candidate_indexes: {} candidates exceed the {max_candidates}-candidate \
             budget; dropping the {dropped} least useful",
            ranked.len()
        );
        ranked.truncate(max_candidates);
    }
    // Stable, readable order for the final list: by name.
    let mut out: Vec<IndexSpec> = ranked.into_iter().map(|(s, _)| s).collect();
    out.sort();
    Ok((out, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpd_types::ColumnDef;
    use cdpd_workload::{generate, paper, summarize};

    fn abcd() -> Schema {
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ])
    }

    #[test]
    fn paper_workload_yields_paper_candidates() {
        let params = paper::PaperParams {
            domain: 1000,
            window_len: 200,
            ..Default::default()
        };
        let trace = generate(&paper::w1_with(&params), 3);
        let workload = summarize(&trace, 200).unwrap();
        let (cands, dropped) = candidate_indexes(&abcd(), &workload).unwrap();
        assert_eq!(dropped, 0, "the uncapped generator never truncates");
        let names: Vec<String> = cands.iter().map(|c| c.display_short()).collect();
        // The paper's hand-picked design space must be a subset.
        for want in ["I(a)", "I(b)", "I(c)", "I(d)", "I(a,b)", "I(c,d)"] {
            assert!(
                names.iter().any(|n| n == want),
                "missing {want} in {names:?}"
            );
        }
    }

    #[test]
    fn unknown_columns_rejected() {
        let trace = cdpd_workload::Trace::from_selects(
            "t",
            vec![cdpd_sql::SelectStmt::point("t", "zz", 1)],
        );
        let workload = summarize(&trace, 10).unwrap();
        assert!(candidate_indexes(&abcd(), &workload).is_err());
    }

    #[test]
    fn covering_candidates_for_multi_column_statements() {
        let stmt = match cdpd_sql::parse("SELECT b, c FROM t WHERE a = 5").unwrap() {
            cdpd_sql::Statement::Select(s) => Dml::Select(s),
            _ => unreachable!(),
        };
        let trace = cdpd_workload::Trace::new("t", vec![stmt]);
        let workload = summarize(&trace, 10).unwrap();
        let (cands, _) = candidate_indexes(&abcd(), &workload).unwrap();
        let names: Vec<String> = cands.iter().map(|c| c.display_short()).collect();
        assert!(names.contains(&"I(a)".to_owned()), "{names:?}");
        assert!(
            names.contains(&"I(a,b,c)".to_owned()),
            "covering: {names:?}"
        );
    }

    #[test]
    fn deterministic_order() {
        let params = paper::PaperParams {
            domain: 500,
            window_len: 100,
            ..Default::default()
        };
        let trace = generate(&paper::w2_with(&params), 9);
        let workload = summarize(&trace, 100).unwrap();
        let a = candidate_indexes(&abcd(), &workload).unwrap();
        let b = candidate_indexes(&abcd(), &workload).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.1, 0);
    }

    #[test]
    fn overflowing_candidate_pool_is_ranked_and_truncated() {
        // A 40-column schema with two-column queries motivates far more
        // than 64 candidates (predicate + covering + merged per block).
        // The uncapped generator returns them all; the capped variant
        // keeps the hottest 64 and reports the rest dropped.
        let cols: Vec<String> = (0..40).map(|i| format!("c{i:02}")).collect();
        let schema = Schema::new(cols.iter().map(|c| ColumnDef::int(c.as_str())).collect());
        let mut stmts = Vec::new();
        for i in 0..40usize {
            let j = (i + 1) % 40;
            let sql = format!("SELECT {} FROM t WHERE {} = 1", cols[j], cols[i]);
            let stmt = match cdpd_sql::parse(&sql).unwrap() {
                cdpd_sql::Statement::Select(s) => Dml::Select(s),
                _ => unreachable!(),
            };
            // Distinct weights so the ranking has a strict order.
            for _ in 0..=(i % 7) {
                stmts.push(stmt.clone());
            }
        }
        let trace = cdpd_workload::Trace::new("t", stmts);
        let workload = summarize(&trace, 50).unwrap();
        let (all, none_dropped) = candidate_indexes(&schema, &workload).unwrap();
        assert!(all.len() > 64, "this pool must exceed the old cap");
        assert_eq!(none_dropped, 0);
        // Every candidate is addressable by the width-agnostic Config.
        for (i, _) in all.iter().enumerate() {
            let _ = cdpd_core::Config::single(i);
        }
        let (cands, dropped) = candidate_indexes_capped(&schema, &workload, 64).unwrap();
        assert_eq!(cands.len(), 64, "explicit budget keeps the hottest 64");
        assert_eq!(dropped, all.len() - 64);
        // The kept set is a subset of the uncapped pool.
        assert!(cands.iter().all(|c| all.contains(c)));
    }
}

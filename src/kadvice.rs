//! One-call answer to the paper's §8 open question — "how to choose an
//! appropriate change constraint (k)?" — by cross-validation against
//! perturbed tomorrows.
//!
//! Given a workload *spec* (not just one trace), this generates a
//! training trace plus held-out variants in the spirit of §6.3's
//! W2/W3: fresh literal re-samples (same structure, different noise)
//! and a window-rotated variant (same mixes, out of phase). The k
//! whose constrained-optimal schedule (trained on the training trace)
//! is cheapest *on the holdouts* is the recommended budget.

use crate::candidates::candidate_indexes;
use crate::oracle::EngineOracle;
use cdpd_core::{
    enumerate_configs, kselect, OracleStatsSnapshot, Problem, ProjectedOracle, SharedOracle,
};
use cdpd_engine::{Database, IndexSpec, WhatIfEngine};
use cdpd_types::{Error, Result};
use cdpd_workload::{generate, perturb, summarize, WorkloadSpec};

/// Options for [`suggest_k_robust`].
#[derive(Clone, Debug)]
pub struct KAdviceOptions {
    /// Candidate structures; `None` derives them from the training trace.
    pub structures: Option<Vec<IndexSpec>>,
    /// Maximum indexes per configuration (see
    /// [`crate::AdvisorOptions::max_structures_per_config`]).
    pub max_structures_per_config: Option<usize>,
    /// Largest budget to sweep.
    pub k_max: usize,
    /// Base seed for trace generation.
    pub seed: u64,
    /// Number of re-sampled holdout traces (fresh literals). Note:
    /// for pure point-query workloads the literals do not affect
    /// estimated costs, so re-samples are near-copies of the training
    /// trace — they anchor the mean but do not penalize overfitting.
    pub resampled_holdouts: usize,
    /// Window rotations to hold out (out-of-phase drift; e.g. rotating
    /// W1 by 2 windows produces exactly the paper's W3 pattern). These
    /// are the holdouts that punish chasing minor shifts.
    pub rotations: Vec<usize>,
}

impl Default for KAdviceOptions {
    fn default() -> Self {
        KAdviceOptions {
            structures: None,
            max_structures_per_config: Some(1),
            k_max: 10,
            seed: 42,
            resampled_holdouts: 1,
            rotations: vec![1, 2],
        }
    }
}

/// Result of the sweep: the curve and the recommended budget.
#[derive(Clone, Debug)]
pub struct KAdvice {
    /// Per-k training and mean holdout costs.
    pub curve: Vec<kselect::RobustPoint>,
    /// The recommended change budget.
    pub k: usize,
    /// Instrumentation for the *training* oracle across the whole
    /// k-sweep (see [`cdpd_core::OracleStats`]).
    pub oracle_stats: OracleStatsSnapshot,
    /// Process-wide metrics delta over the [`suggest_k_robust`] call.
    pub metrics: cdpd_obs::MetricsSnapshot,
    /// Rendered span-tree profile of the sweep, when tracing is on.
    pub profile: Option<String>,
}

/// Sweep `k` on a trace generated from `spec`, evaluating each budget's
/// schedule on perturbed holdout traces, and return the budget that
/// generalizes best.
pub fn suggest_k_robust(
    db: &Database,
    spec: &WorkloadSpec,
    options: &KAdviceOptions,
) -> Result<KAdvice> {
    if options.resampled_holdouts == 0 && options.rotations.is_empty() {
        return Err(Error::InvalidArgument(
            "need at least one holdout (resampled or rotated)".into(),
        ));
    }
    let metrics_before = cdpd_obs::registry().snapshot();
    let started_ns = cdpd_obs::trace::now_ns();
    let span = cdpd_obs::span!("kadvice.suggest_k_robust", k_max = options.k_max);
    let train_trace = generate(spec, options.seed);
    let train_sum = summarize(&train_trace, spec.window_len)?;
    let structures = match &options.structures {
        Some(s) => s.clone(),
        None => {
            let schema = db.schema(&spec.table)?;
            candidate_indexes(&schema, &train_sum)?.0
        }
    };
    let mk_oracle = |trace: &cdpd_workload::Trace| -> Result<ProjectedOracle<EngineOracle>> {
        let summarized = summarize(trace, spec.window_len)?;
        Ok(EngineOracle::new(
            WhatIfEngine::snapshot(db, &spec.table)?,
            structures.clone(),
            &summarized,
        )?
        .into_shared())
    };
    let train = mk_oracle(&train_trace)?;

    let mut holdouts: Vec<ProjectedOracle<EngineOracle>> = Vec::new();
    for i in 0..options.resampled_holdouts {
        holdouts.push(mk_oracle(&generate(spec, options.seed + 1 + i as u64))?);
    }
    for (i, &n) in options.rotations.iter().enumerate() {
        let rotated = perturb::rotate_windows(spec, n);
        holdouts.push(mk_oracle(&generate(
            &rotated,
            options.seed + 101 + i as u64,
        ))?);
    }
    let holdout_refs: Vec<&dyn SharedOracle> =
        holdouts.iter().map(|o| o as &dyn SharedOracle).collect();

    let problem = Problem::paper_experiment();
    let candidates = enumerate_configs(&train, None, options.max_structures_per_config)?;
    let curve = kselect::robust_curve(&train, &holdout_refs, &problem, &candidates, options.k_max)?;
    let k = kselect::suggest_robust_k(&curve)
        .ok_or_else(|| Error::Infeasible("empty robustness curve".into()))?;
    drop(span);
    Ok(KAdvice {
        curve,
        k,
        oracle_stats: train.stats_snapshot(),
        metrics: cdpd_obs::registry().snapshot().delta(&metrics_before),
        profile: cdpd_obs::profile_since(started_ns),
    })
}

//! Primitive byte codec for the advisory layer's persisted state.
//!
//! [`crate::OnlineAdvisor::save_state`] serializes the session into an
//! opaque blob the engine persists alongside its catalog
//! ([`cdpd_engine::Database::set_app_state`]); these are the shared
//! little-endian write/read primitives. The format is strict: any
//! truncation or trailing garbage decodes to
//! [`Error::Corrupt`](cdpd_types::Error::Corrupt), never to a
//! half-restored session.

use cdpd_core::Config;
use cdpd_types::{Error, Result};

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// `f64` as IEEE-754 bits: exact round-trip.
pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, u32::try_from(s.len()).expect("string too large"));
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => put_u8(out, 0),
        Some(v) => {
            put_u8(out, 1);
            put_u64(out, v);
        }
    }
}

/// A configuration as a word-count-prefixed little-endian word list —
/// the width-agnostic on-disk form (v2 blobs). The count bounds at
/// `MAX_STRUCTURE_INDEX / 64` words, so a corrupt length can never
/// drive a huge allocation.
pub(crate) fn put_config(out: &mut Vec<u8>, cfg: &Config) {
    let words = cfg.words();
    put_u16(
        out,
        u16::try_from(words.len()).expect("config words fit u16"),
    );
    for w in words {
        put_u64(out, *w);
    }
}

/// Strict cursor over a state blob.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(Error::Corrupt(format!(
                "state truncated: need {n} bytes, have {}",
                self.buf.len()
            )));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corrupt("state string is not UTF-8".into()))
    }

    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(Error::Corrupt(format!("bad option tag {t}"))),
        }
    }

    /// Inverse of [`put_config`].
    pub(crate) fn config(&mut self) -> Result<Config> {
        let n = self.u16()? as usize;
        if n > cdpd_core::MAX_STRUCTURE_INDEX / 64 {
            return Err(Error::Corrupt(format!(
                "persisted configuration claims {n} words"
            )));
        }
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(self.u64()?);
        }
        Ok(Config::from_words(&words))
    }

    pub(crate) fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(Error::Corrupt(format!("bad bool tag {t}"))),
        }
    }

    pub(crate) fn finish(self) -> Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(Error::Corrupt(format!(
                "state has {} trailing bytes",
                self.buf.len()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        put_u8(&mut out, 3);
        put_u16(&mut out, 515);
        put_u32(&mut out, 70_000);
        put_u64(&mut out, u64::MAX - 1);
        put_f64(&mut out, -0.125);
        put_str(&mut out, "héllo");
        put_opt_u64(&mut out, Some(9));
        put_opt_u64(&mut out, None);
        let mut r = Reader::new(&out);
        assert_eq!(r.u8().unwrap(), 3);
        assert_eq!(r.u16().unwrap(), 515);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.opt_u64().unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn configs_round_trip_across_the_spill_boundary() {
        let cases = [
            Config::EMPTY,
            Config::single(0),
            Config::single(63),
            Config::single(64),
            Config::full(64),
            Config::full(65),
            Config::single(5).with(200).with(70),
        ];
        let mut out = Vec::new();
        for c in &cases {
            put_config(&mut out, c);
        }
        let mut r = Reader::new(&out);
        for c in &cases {
            assert_eq!(&r.config().unwrap(), c);
        }
        r.finish().unwrap();

        // A corrupt word count is rejected before it can allocate.
        let mut bad = Vec::new();
        put_u16(&mut bad, u16::MAX);
        assert!(Reader::new(&bad).config().is_err());
    }

    #[test]
    fn truncation_and_trailing_bytes_are_corrupt() {
        let mut out = Vec::new();
        put_str(&mut out, "abc");
        assert!(Reader::new(&out[..5]).str().is_err());
        let mut r = Reader::new(&out);
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }
}

//! Execute a workload under a design schedule, measuring real I/O.
//!
//! Two drivers share one window-execution core:
//!
//! * [`replay`] — the batch form (Figure 3): a *precomputed* schedule
//!   is applied window by window via online DDL, and every trace
//!   statement executed with the pager counting logical page I/O;
//! * [`drive`] — the online form: statements are executed and fed to
//!   an [`OnlineAdvisor`] one at a time, its design decisions applied
//!   as they are emitted, and its delta statistics folded in at every
//!   window boundary. The schedule is *discovered en route*.
//!
//! Both drivers execute each window's *read statements* across a
//! std-only scoped worker pool ([`cdpd_engine::parallel_map`]): a
//! window is partitioned at its writes into maximal runs of
//! consecutive `SELECT`s, each run fans out over the engine's `&self`
//! read surface, and every write runs serially at its original
//! sequence position. Reads commute (their only side effects are I/O
//! counters, measured per-thread), so the parallel replay is
//! **bit-identical** to the serial one: same `QueryResult`s, same
//! per-window EXEC/TRANS sums, same final schedule — property-tested
//! in `tests/parallel_equiv.rs` across seeds and thread counts.
//!
//! Both drivers also close the **predicted-vs-actual loop**: each
//! statement's planner estimate is paired with the page I/O its
//! thread-local scope measured, folded per window into a drift score
//! ([`crate::calibrate`]), and surfaced on
//! [`ReplayReport::calibration`]. [`replay_calibrated`] exposes the
//! knobs (comparison mode, drift band, fault injection);
//! `tests/calibration.rs` uses them to prove the oracle and the
//! executor keep exactly one cost model between them.

use crate::advisor::Recommendation;
use crate::calibrate::{
    self, CalibrationOptions, CalibrationReport, CalibrationTracker, WindowCalibration,
};
use crate::online::OnlineAdvisor;
use cdpd_engine::{default_threads, parallel_map, Database, IndexSpec};
use cdpd_sql::Dml;
use cdpd_types::{Error, Result};
use cdpd_workload::Trace;
use std::time::{Duration, Instant};

/// Measured outcome of one stage (window) of a replay.
#[derive(Clone, Debug, Default)]
pub struct StageReport {
    /// Logical I/O spent changing the design before this window.
    pub trans_io: u64,
    /// Logical I/O spent executing the window's statements.
    pub exec_io: u64,
    /// Indexes created entering this window.
    pub created: Vec<String>,
    /// Indexes dropped entering this window.
    pub dropped: Vec<String>,
}

/// Measured outcome of a full replay.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Per-window measurements.
    pub stages: Vec<StageReport>,
    /// Logical I/O of the closing transition (when the schedule pins a
    /// final configuration).
    pub final_trans_io: u64,
    /// Wall-clock time of the whole replay.
    pub wall: Duration,
    /// Statements executed.
    pub statements: u64,
    /// Total matched/affected rows across all statements. For
    /// *read-only* traces this is a design-independent checksum
    /// (identical across schedules); traces with writes mutate the
    /// database, so replays are only comparable across freshly loaded
    /// databases.
    pub row_checksum: u64,
    /// Predicted-vs-actual calibration summary over the replay: every
    /// statement's planner estimate paired with its measured page I/O
    /// (or with a live-shape what-if prediction — see
    /// [`crate::calibrate::CalibrationMode`]), folded per window into
    /// a drift score. Deterministic at any thread count, like the rest
    /// of the report.
    pub calibration: Option<CalibrationReport>,
}

impl ReplayReport {
    /// Total execution I/O.
    pub fn exec_io(&self) -> u64 {
        self.stages.iter().map(|s| s.exec_io).sum()
    }

    /// Total transition I/O (including the closing transition).
    pub fn trans_io(&self) -> u64 {
        self.stages.iter().map(|s| s.trans_io).sum::<u64>() + self.final_trans_io
    }

    /// Total measured I/O — the Figure 3 quantity.
    pub fn total_io(&self) -> u64 {
        self.exec_io() + self.trans_io()
    }
}

/// Execute window `stage` (`lo..hi` of the trace) with up to `threads`
/// concurrent readers, returning `(exec_io, rows, statements)` — the
/// core both drivers run.
///
/// The window is split at its writes: each maximal run of consecutive
/// `SELECT`s executes across the scoped worker pool against `&db`
/// (single-writer/multi-reader — the engine's read surface is
/// `&self`), while every `UPDATE`/`DELETE` runs serially at its
/// original sequence position, so writes observe exactly the state a
/// serial replay would give them and later reads observe the writes.
/// Per-statement I/O comes from thread-local scopes, so the summed
/// `exec_io` is bit-identical to a serial run at any thread count.
#[allow(clippy::too_many_arguments)]
fn execute_window(
    db: &Database,
    trace: &Trace,
    stage: usize,
    lo: usize,
    hi: usize,
    threads: usize,
    calibration: &CalibrationOptions,
    window: &mut WindowCalibration,
) -> Result<(u64, u64, u64)> {
    let _span = cdpd_obs::span!("replay.window", stage = stage, statements = hi - lo);
    let stmts = &trace.statements()[lo..hi];
    let mut exec_io = 0u64;
    let mut rows = 0u64;
    let mut i = 0;
    while i < stmts.len() {
        if matches!(stmts[i], Dml::Select(_)) {
            let mut j = i + 1;
            while j < stmts.len() && matches!(stmts[j], Dml::Select(_)) {
                j += 1;
            }
            let run = &stmts[i..j];
            // Reads don't move index shapes, so one prediction pass
            // over the whole run sees exactly the state it executes on.
            let predicted = calibrate::predict(calibration, db, trace.table(), run)?;
            let shared: &Database = db;
            let results = parallel_map(run.len(), threads, |k| match &run[k] {
                Dml::Select(s) => shared.query_count(s),
                _ => unreachable!("run contains only selects"),
            })?;
            for (k, r) in results.iter().enumerate() {
                exec_io += r.io.total();
                rows += r.count;
                calibrate::record_result(calibration, window, r, predicted.as_ref().map(|p| p[k]));
            }
            i = j;
        } else {
            // Writes split and merge index pages, so each one is
            // predicted against the shapes it actually meets.
            let predicted = calibrate::predict(calibration, db, trace.table(), &stmts[i..i + 1])?;
            let r = db.execute_dml(&stmts[i])?;
            exec_io += r.io.total();
            rows += r.count;
            calibrate::record_result(calibration, window, &r, predicted.map(|p| p[0]));
            i += 1;
        }
    }
    Ok((exec_io, rows, (hi - lo) as u64))
}

/// Replay `trace` against `db`, applying `stage_specs[i]` before window
/// `i` (windows are `window_len` statements). `final_specs` pins the
/// configuration restored after the run, like the paper's "final
/// configuration empty".
///
/// The trace is windowed exactly like the advisor summarized it, so a
/// schedule recommended from one trace can be replayed against a
/// *different* trace of the same length — that is the Figure 3
/// experiment (W1's designs replayed on W2 and W3).
pub fn replay(
    db: &Database,
    trace: &Trace,
    window_len: usize,
    stage_specs: &[Vec<IndexSpec>],
    final_specs: Option<&[IndexSpec]>,
) -> Result<ReplayReport> {
    replay_with(
        db,
        trace,
        window_len,
        stage_specs,
        final_specs,
        default_threads(),
    )
}

/// [`replay`] with an explicit worker-thread count for window reads
/// and concurrent index builds. `threads == 1` is the serial replay;
/// any `threads` produces a bit-identical [`ReplayReport`]
/// (thread-count knob: the `CDPD_THREADS` environment variable drives
/// the default).
pub fn replay_with(
    db: &Database,
    trace: &Trace,
    window_len: usize,
    stage_specs: &[Vec<IndexSpec>],
    final_specs: Option<&[IndexSpec]>,
    threads: usize,
) -> Result<ReplayReport> {
    replay_calibrated(
        db,
        trace,
        window_len,
        stage_specs,
        final_specs,
        threads,
        CalibrationOptions::default(),
    )
}

/// [`replay_with`] under explicit [`CalibrationOptions`]: choose the
/// comparison mode, tighten or widen the drift band, or inject a
/// mis-costing ([`CalibrationOptions::index_cost_scale`]) to prove the
/// watchdog fires. The default options give [`replay_with`]'s
/// behavior: measured-I/O calibration with the stock band.
#[allow(clippy::too_many_arguments)]
pub fn replay_calibrated(
    db: &Database,
    trace: &Trace,
    window_len: usize,
    stage_specs: &[Vec<IndexSpec>],
    final_specs: Option<&[IndexSpec]>,
    threads: usize,
    calibration: CalibrationOptions,
) -> Result<ReplayReport> {
    if window_len == 0 {
        return Err(Error::InvalidArgument("window_len must be positive".into()));
    }
    let expected = trace.len().div_ceil(window_len);
    if stage_specs.len() != expected {
        return Err(Error::InvalidArgument(format!(
            "schedule has {} stages, trace windows into {expected}",
            stage_specs.len()
        )));
    }
    let _span = cdpd_obs::span!("replay.run", stages = stage_specs.len());
    let start = Instant::now();
    let table = trace.table().to_owned();
    let mut stages = Vec::with_capacity(stage_specs.len());
    let mut statements = 0u64;
    let mut row_checksum = 0u64;
    let mut tracker = CalibrationTracker::new(calibration);

    for (i, specs) in stage_specs.iter().enumerate() {
        let ddl = {
            let _span = cdpd_obs::span!("replay.transition", stage = i);
            db.apply_configuration_with(&table, specs, threads)?
        };
        let lo = i * window_len;
        let hi = ((i + 1) * window_len).min(trace.len());
        let mut window = WindowCalibration::default();
        let (exec_io, rows, stmts) = execute_window(
            db,
            trace,
            i,
            lo,
            hi,
            threads,
            tracker.options(),
            &mut window,
        )?;
        tracker.observe_window(&window);
        row_checksum += rows;
        statements += stmts;
        stages.push(StageReport {
            trans_io: ddl.io.total(),
            exec_io,
            created: ddl.created,
            dropped: ddl.dropped,
        });
    }

    let final_trans_io = match final_specs {
        Some(specs) => db
            .apply_configuration_with(&table, specs, threads)?
            .io
            .total(),
        None => 0,
    };

    Ok(ReplayReport {
        stages,
        final_trans_io,
        wall: start.elapsed(),
        statements,
        row_checksum,
        calibration: Some(tracker.report()),
    })
}

/// Replay a trace under an advisor [`Recommendation`].
pub fn replay_recommendation(
    db: &Database,
    trace: &Trace,
    rec: &Recommendation,
) -> Result<ReplayReport> {
    let final_specs: Option<Vec<IndexSpec>> = rec
        .problem
        .final_config
        .as_ref()
        .map(|f| f.structures().map(|i| rec.structures[i].clone()).collect());
    replay(
        db,
        trace,
        rec.window_len,
        &rec.stage_specs(),
        final_specs.as_deref(),
    )
}

/// Online replay: the thin driver over [`OnlineAdvisor`]. Each window
/// is executed under the currently live design, then fed to the
/// advisor statement by statement (with the window's statistics deltas
/// folded in first, so the seal-time re-solve sees fresh stats); the
/// decision the seal emits is applied entering the *next* window — the
/// online loop has no hindsight, which is exactly the difference
/// between this driver and [`replay`] of a batch recommendation.
///
/// The advisor's decision log stays on `advisor` ([`OnlineAdvisor::decisions`]),
/// and a final [`OnlineAdvisor::finish`] gives the batch-quality
/// hindsight recommendation for the whole observed trace.
///
/// # Errors
/// The trace must target the advisor's table; execution, ingestion,
/// and solver errors propagate.
pub fn drive(db: &Database, trace: &Trace, advisor: &mut OnlineAdvisor) -> Result<ReplayReport> {
    drive_with(db, trace, advisor, default_threads())
}

/// [`drive`] with an explicit worker-thread count for window reads and
/// concurrent index builds. `threads == 1` is the serial online loop;
/// any `threads` produces bit-identical decisions and reports.
pub fn drive_with(
    db: &Database,
    trace: &Trace,
    advisor: &mut OnlineAdvisor,
    threads: usize,
) -> Result<ReplayReport> {
    if trace.table() != advisor.table() {
        return Err(Error::InvalidArgument(format!(
            "trace is on table {}, advisor on {}",
            trace.table(),
            advisor.table()
        )));
    }
    run_online(db, trace, advisor, threads)
}

fn run_online(
    db: &Database,
    trace: &Trace,
    advisor: &mut OnlineAdvisor,
    threads: usize,
) -> Result<ReplayReport> {
    let _span = cdpd_obs::span!("replay.drive", statements = trace.len());
    let start = Instant::now();
    let table = trace.table().to_owned();
    let window_len = advisor.window_len();
    let windows = trace.len().div_ceil(window_len);
    let mut stages = Vec::with_capacity(windows);
    let mut statements = 0u64;
    let mut row_checksum = 0u64;
    let mut pending: Option<cdpd_engine::DdlReport> = None;
    let calibration = advisor.options().calibration.clone();

    for w in 0..windows {
        let ddl = pending.take();
        let lo = w * window_len;
        let hi = ((w + 1) * window_len).min(trace.len());
        let mut window = WindowCalibration::default();
        let (exec_io, rows, stmts) =
            execute_window(db, trace, w, lo, hi, threads, &calibration, &mut window)?;
        row_checksum += rows;
        statements += stmts;

        // Fold this window's calibration pairs and statistics deltas
        // before the advisor seals it, so the decision the seal emits
        // carries this window's drift and the re-solve prices the
        // post-write table.
        advisor.note_calibration(&window);
        let refresh = db.refresh_stats(&table)?;
        advisor.note_stats_refresh(db, &refresh)?;

        let mut decision = None;
        for stmt in &trace.statements()[lo..hi] {
            if let Some(d) = advisor.ingest(db, stmt)? {
                decision = Some(d);
            }
        }

        stages.push(match ddl {
            Some(ddl) => StageReport {
                trans_io: ddl.io.total(),
                exec_io,
                created: ddl.created,
                dropped: ddl.dropped,
            },
            None => StageReport {
                exec_io,
                ..StageReport::default()
            },
        });

        if let Some(d) = decision {
            if w + 1 < windows && d.changed {
                let _span = cdpd_obs::span!("replay.transition", stage = w + 1);
                pending = Some(db.apply_configuration_with(&table, &d.specs, threads)?);
            }
        }
    }

    Ok(ReplayReport {
        stages,
        final_trans_io: 0,
        wall: start.elapsed(),
        statements,
        row_checksum,
        calibration: Some(advisor.calibration().report()),
    })
}

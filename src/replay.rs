//! Execute a workload under a design schedule, measuring real I/O.
//!
//! This is how Figure 3 is reproduced: the recommended schedule is
//! *actually applied* — indexes built and dropped at the recommended
//! points via online DDL — and every trace statement executed, with the
//! pager counting logical page I/O for both execution and transitions.

use crate::advisor::Recommendation;
use cdpd_engine::{Database, IndexSpec};
use cdpd_types::{Error, Result};
use cdpd_workload::Trace;
use std::time::{Duration, Instant};

/// Measured outcome of one stage (window) of a replay.
#[derive(Clone, Debug)]
pub struct StageReport {
    /// Logical I/O spent changing the design before this window.
    pub trans_io: u64,
    /// Logical I/O spent executing the window's statements.
    pub exec_io: u64,
    /// Indexes created entering this window.
    pub created: Vec<String>,
    /// Indexes dropped entering this window.
    pub dropped: Vec<String>,
}

/// Measured outcome of a full replay.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Per-window measurements.
    pub stages: Vec<StageReport>,
    /// Logical I/O of the closing transition (when the schedule pins a
    /// final configuration).
    pub final_trans_io: u64,
    /// Wall-clock time of the whole replay.
    pub wall: Duration,
    /// Statements executed.
    pub statements: u64,
    /// Total matched/affected rows across all statements. For
    /// *read-only* traces this is a design-independent checksum
    /// (identical across schedules); traces with writes mutate the
    /// database, so replays are only comparable across freshly loaded
    /// databases.
    pub row_checksum: u64,
}

impl ReplayReport {
    /// Total execution I/O.
    pub fn exec_io(&self) -> u64 {
        self.stages.iter().map(|s| s.exec_io).sum()
    }

    /// Total transition I/O (including the closing transition).
    pub fn trans_io(&self) -> u64 {
        self.stages.iter().map(|s| s.trans_io).sum::<u64>() + self.final_trans_io
    }

    /// Total measured I/O — the Figure 3 quantity.
    pub fn total_io(&self) -> u64 {
        self.exec_io() + self.trans_io()
    }
}

/// Replay `trace` against `db`, applying `stage_specs[i]` before window
/// `i` (windows are `window_len` statements). `final_specs` pins the
/// configuration restored after the run, like the paper's "final
/// configuration empty".
///
/// The trace is windowed exactly like the advisor summarized it, so a
/// schedule recommended from one trace can be replayed against a
/// *different* trace of the same length — that is the Figure 3
/// experiment (W1's designs replayed on W2 and W3).
pub fn replay(
    db: &mut Database,
    trace: &Trace,
    window_len: usize,
    stage_specs: &[Vec<IndexSpec>],
    final_specs: Option<&[IndexSpec]>,
) -> Result<ReplayReport> {
    if window_len == 0 {
        return Err(Error::InvalidArgument("window_len must be positive".into()));
    }
    let expected = trace.len().div_ceil(window_len);
    if stage_specs.len() != expected {
        return Err(Error::InvalidArgument(format!(
            "schedule has {} stages, trace windows into {expected}",
            stage_specs.len()
        )));
    }
    let _span = cdpd_obs::span!("replay.run", stages = stage_specs.len());
    let start = Instant::now();
    let table = trace.table().to_owned();
    let mut stages = Vec::with_capacity(stage_specs.len());
    let mut statements = 0u64;
    let mut row_checksum = 0u64;

    for (i, specs) in stage_specs.iter().enumerate() {
        let ddl = {
            let _span = cdpd_obs::span!("replay.transition", stage = i);
            db.apply_configuration(&table, specs)?
        };
        let mut exec_io = 0u64;
        let lo = i * window_len;
        let hi = ((i + 1) * window_len).min(trace.len());
        {
            let _span = cdpd_obs::span!("replay.window", stage = i, statements = hi - lo);
            for stmt in &trace.statements()[lo..hi] {
                let r = db.execute_dml(stmt)?;
                exec_io += r.io.total();
                row_checksum += r.count;
                statements += 1;
            }
        }
        stages.push(StageReport {
            trans_io: ddl.io.total(),
            exec_io,
            created: ddl.created,
            dropped: ddl.dropped,
        });
    }

    let final_trans_io = match final_specs {
        Some(specs) => db.apply_configuration(&table, specs)?.io.total(),
        None => 0,
    };

    Ok(ReplayReport {
        stages,
        final_trans_io,
        wall: start.elapsed(),
        statements,
        row_checksum,
    })
}

/// Replay a trace under an advisor [`Recommendation`].
pub fn replay_recommendation(
    db: &mut Database,
    trace: &Trace,
    rec: &Recommendation,
) -> Result<ReplayReport> {
    let final_specs: Option<Vec<IndexSpec>> = rec
        .problem
        .final_config
        .map(|f| f.structures().map(|i| rec.structures[i].clone()).collect());
    replay(
        db,
        trace,
        rec.window_len,
        &rec.stage_specs(),
        final_specs.as_deref(),
    )
}

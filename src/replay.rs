//! Execute a workload under a design schedule, measuring real I/O.
//!
//! Two drivers share one window-execution core:
//!
//! * [`replay`] — the batch form (Figure 3): a *precomputed* schedule
//!   is applied window by window via online DDL, and every trace
//!   statement executed with the pager counting logical page I/O;
//! * [`drive`] — the online form: statements are executed and fed to
//!   an [`OnlineAdvisor`] one at a time, its design decisions applied
//!   as they are emitted, and its delta statistics folded in at every
//!   window boundary. The schedule is *discovered en route*.

use crate::advisor::Recommendation;
use crate::online::OnlineAdvisor;
use cdpd_engine::{Database, IndexSpec};
use cdpd_types::{Error, Result};
use cdpd_workload::Trace;
use std::time::{Duration, Instant};

/// Measured outcome of one stage (window) of a replay.
#[derive(Clone, Debug, Default)]
pub struct StageReport {
    /// Logical I/O spent changing the design before this window.
    pub trans_io: u64,
    /// Logical I/O spent executing the window's statements.
    pub exec_io: u64,
    /// Indexes created entering this window.
    pub created: Vec<String>,
    /// Indexes dropped entering this window.
    pub dropped: Vec<String>,
}

/// Measured outcome of a full replay.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Per-window measurements.
    pub stages: Vec<StageReport>,
    /// Logical I/O of the closing transition (when the schedule pins a
    /// final configuration).
    pub final_trans_io: u64,
    /// Wall-clock time of the whole replay.
    pub wall: Duration,
    /// Statements executed.
    pub statements: u64,
    /// Total matched/affected rows across all statements. For
    /// *read-only* traces this is a design-independent checksum
    /// (identical across schedules); traces with writes mutate the
    /// database, so replays are only comparable across freshly loaded
    /// databases.
    pub row_checksum: u64,
}

impl ReplayReport {
    /// Total execution I/O.
    pub fn exec_io(&self) -> u64 {
        self.stages.iter().map(|s| s.exec_io).sum()
    }

    /// Total transition I/O (including the closing transition).
    pub fn trans_io(&self) -> u64 {
        self.stages.iter().map(|s| s.trans_io).sum::<u64>() + self.final_trans_io
    }

    /// Total measured I/O — the Figure 3 quantity.
    pub fn total_io(&self) -> u64 {
        self.exec_io() + self.trans_io()
    }
}

/// Execute window `stage` (`lo..hi` of the trace), returning
/// `(exec_io, rows, statements)` — the core both drivers run.
fn execute_window(
    db: &mut Database,
    trace: &Trace,
    stage: usize,
    lo: usize,
    hi: usize,
) -> Result<(u64, u64, u64)> {
    let _span = cdpd_obs::span!("replay.window", stage = stage, statements = hi - lo);
    let mut exec_io = 0u64;
    let mut rows = 0u64;
    for stmt in &trace.statements()[lo..hi] {
        let r = db.execute_dml(stmt)?;
        exec_io += r.io.total();
        rows += r.count;
    }
    Ok((exec_io, rows, (hi - lo) as u64))
}

/// Replay `trace` against `db`, applying `stage_specs[i]` before window
/// `i` (windows are `window_len` statements). `final_specs` pins the
/// configuration restored after the run, like the paper's "final
/// configuration empty".
///
/// The trace is windowed exactly like the advisor summarized it, so a
/// schedule recommended from one trace can be replayed against a
/// *different* trace of the same length — that is the Figure 3
/// experiment (W1's designs replayed on W2 and W3).
pub fn replay(
    db: &mut Database,
    trace: &Trace,
    window_len: usize,
    stage_specs: &[Vec<IndexSpec>],
    final_specs: Option<&[IndexSpec]>,
) -> Result<ReplayReport> {
    if window_len == 0 {
        return Err(Error::InvalidArgument("window_len must be positive".into()));
    }
    let expected = trace.len().div_ceil(window_len);
    if stage_specs.len() != expected {
        return Err(Error::InvalidArgument(format!(
            "schedule has {} stages, trace windows into {expected}",
            stage_specs.len()
        )));
    }
    let _span = cdpd_obs::span!("replay.run", stages = stage_specs.len());
    let start = Instant::now();
    let table = trace.table().to_owned();
    let mut stages = Vec::with_capacity(stage_specs.len());
    let mut statements = 0u64;
    let mut row_checksum = 0u64;

    for (i, specs) in stage_specs.iter().enumerate() {
        let ddl = {
            let _span = cdpd_obs::span!("replay.transition", stage = i);
            db.apply_configuration(&table, specs)?
        };
        let lo = i * window_len;
        let hi = ((i + 1) * window_len).min(trace.len());
        let (exec_io, rows, stmts) = execute_window(db, trace, i, lo, hi)?;
        row_checksum += rows;
        statements += stmts;
        stages.push(StageReport {
            trans_io: ddl.io.total(),
            exec_io,
            created: ddl.created,
            dropped: ddl.dropped,
        });
    }

    let final_trans_io = match final_specs {
        Some(specs) => db.apply_configuration(&table, specs)?.io.total(),
        None => 0,
    };

    Ok(ReplayReport {
        stages,
        final_trans_io,
        wall: start.elapsed(),
        statements,
        row_checksum,
    })
}

/// Replay a trace under an advisor [`Recommendation`].
pub fn replay_recommendation(
    db: &mut Database,
    trace: &Trace,
    rec: &Recommendation,
) -> Result<ReplayReport> {
    let final_specs: Option<Vec<IndexSpec>> = rec
        .problem
        .final_config
        .map(|f| f.structures().map(|i| rec.structures[i].clone()).collect());
    replay(
        db,
        trace,
        rec.window_len,
        &rec.stage_specs(),
        final_specs.as_deref(),
    )
}

/// Online replay: the thin driver over [`OnlineAdvisor`]. Each window
/// is executed under the currently live design, then fed to the
/// advisor statement by statement (with the window's statistics deltas
/// folded in first, so the seal-time re-solve sees fresh stats); the
/// decision the seal emits is applied entering the *next* window — the
/// online loop has no hindsight, which is exactly the difference
/// between this driver and [`replay`] of a batch recommendation.
///
/// The advisor's decision log stays on `advisor` ([`OnlineAdvisor::decisions`]),
/// and a final [`OnlineAdvisor::finish`] gives the batch-quality
/// hindsight recommendation for the whole observed trace.
///
/// # Errors
/// The trace must target the advisor's table; execution, ingestion,
/// and solver errors propagate.
pub fn drive(
    db: &mut Database,
    trace: &Trace,
    advisor: &mut OnlineAdvisor,
) -> Result<ReplayReport> {
    if trace.table() != advisor.table() {
        return Err(Error::InvalidArgument(format!(
            "trace is on table {}, advisor on {}",
            trace.table(),
            advisor.table()
        )));
    }
    run_online(db, trace, advisor)
}

fn run_online(
    db: &mut Database,
    trace: &Trace,
    advisor: &mut OnlineAdvisor,
) -> Result<ReplayReport> {
    let _span = cdpd_obs::span!("replay.drive", statements = trace.len());
    let start = Instant::now();
    let table = trace.table().to_owned();
    let window_len = advisor.window_len();
    let windows = trace.len().div_ceil(window_len);
    let mut stages = Vec::with_capacity(windows);
    let mut statements = 0u64;
    let mut row_checksum = 0u64;
    let mut pending: Option<cdpd_engine::DdlReport> = None;

    for w in 0..windows {
        let ddl = pending.take();
        let lo = w * window_len;
        let hi = ((w + 1) * window_len).min(trace.len());
        let (exec_io, rows, stmts) = execute_window(db, trace, w, lo, hi)?;
        row_checksum += rows;
        statements += stmts;

        // Fold this window's statistics deltas before the advisor
        // seals it, so the re-solve prices the post-write table.
        let refresh = db.refresh_stats(&table)?;
        advisor.note_stats_refresh(db, &refresh)?;

        let mut decision = None;
        for stmt in &trace.statements()[lo..hi] {
            if let Some(d) = advisor.ingest(db, stmt)? {
                decision = Some(d);
            }
        }

        stages.push(match ddl {
            Some(ddl) => StageReport {
                trans_io: ddl.io.total(),
                exec_io,
                created: ddl.created,
                dropped: ddl.dropped,
            },
            None => StageReport {
                exec_io,
                ..StageReport::default()
            },
        });

        if let Some(d) = decision {
            if w + 1 < windows && d.changed {
                let _span = cdpd_obs::span!("replay.transition", stage = w + 1);
                pending = Some(db.apply_configuration(&table, &d.specs)?);
            }
        }
    }

    Ok(ReplayReport {
        stages,
        final_trans_io: 0,
        wall: start.elapsed(),
        statements,
        row_checksum,
    })
}

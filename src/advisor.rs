use crate::candidates::candidate_indexes;
use crate::oracle::EngineOracle;
use cdpd_core::decompose::{self, Decomposition};
use cdpd_core::{
    enumerate_configs, greedy, hybrid, kaware, merging, ranking, seqgraph, Config, CostOracle,
    OracleStats, OracleStatsSnapshot, Problem, ProjectedOracle, Schedule,
};
use cdpd_engine::{Database, IndexSpec, WhatIfEngine};
use cdpd_obs::MetricsSnapshot;
use cdpd_types::{Error, Result};
use cdpd_workload::{summarize, Trace};
use std::ops::Range;

/// Which solver the advisor runs.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum Algorithm {
    /// The k-aware sequence graph (§3) — optimal.
    KAware,
    /// Sequential design merging (§4.2) — heuristic.
    Merging,
    /// Shortest-path ranking (§5) — optimal, with a path budget.
    Ranking {
        /// Abort after ranking this many paths.
        max_paths: usize,
    },
    /// GREEDY-SEQ candidate restriction (§4.1) — heuristic, scales to
    /// large `m`.
    Greedy,
    /// Graph for small `k`, merging for large `k` (§6.4).
    #[default]
    Hybrid,
}

/// Tuning knobs for [`Advisor`].
#[derive(Clone, Debug)]
pub struct AdvisorOptions {
    /// Change budget. `None` solves the unconstrained problem
    /// (Agrawal et al.'s formulation).
    pub k: Option<usize>,
    /// Space bound `b` in pages for every recommended configuration.
    pub space_bound_pages: Option<u64>,
    /// Statements per summarization window (problem stage). The
    /// paper's Table 2 granularity is 500.
    pub window_len: usize,
    /// Maximum indexes per configuration when enumerating candidates.
    /// `Some(1)` is the paper's experimental regime; the default of 2
    /// keeps full enumeration tractable for derived candidate sets.
    pub max_structures_per_config: Option<usize>,
    /// Solver choice.
    pub algorithm: Algorithm,
    /// Explicit candidate structures; `None` derives them from the
    /// trace via [`candidate_indexes`].
    pub structures: Option<Vec<IndexSpec>>,
    /// Require the schedule to end in the empty configuration (the
    /// paper's experiments do).
    pub end_empty: bool,
    /// Count the initial build against `k` (strict Definition 1; see
    /// [`Problem::count_initial_change`]).
    pub count_initial_change: bool,
}

impl Default for AdvisorOptions {
    fn default() -> Self {
        AdvisorOptions {
            k: None,
            space_bound_pages: None,
            window_len: 500,
            max_structures_per_config: Some(2),
            algorithm: Algorithm::Hybrid,
            structures: None,
            end_empty: false,
            count_initial_change: false,
        }
    }
}

/// The advisor's output: a design schedule with its structure
/// vocabulary resolved back to index specs.
#[derive(Clone, Debug)]
pub struct Recommendation {
    /// The recommended schedule over [`Config`] bitmasks.
    pub schedule: Schedule,
    /// Candidate structures; bit `i` of a config = `structures[i]`.
    pub structures: Vec<IndexSpec>,
    /// Statements per stage used during summarization.
    pub window_len: usize,
    /// The problem boundary conditions that were solved.
    pub problem: Problem,
    /// Strategy the hybrid solver picked, when it ran.
    pub hybrid_strategy: Option<hybrid::Strategy>,
    /// Cost-oracle instrumentation for the solve: raw what-if calls,
    /// projected cache hits, and memo residency (see
    /// [`cdpd_core::OracleStats`]).
    pub oracle_stats: OracleStatsSnapshot,
    /// Process-wide metrics delta over this `recommend` call (what-if
    /// calls, planner picks, pager I/O, solver timings — everything the
    /// `cdpd-obs` registry saw).
    pub metrics: MetricsSnapshot,
    /// Rendered span-tree profile of the call, present when tracing was
    /// enabled (`CDPD_TRACE=1` or `cdpd_obs::trace::set_enabled(true)`).
    pub profile: Option<String>,
    /// Predicted-vs-actual calibration state, when the recommendation
    /// came out of a session that executed statements
    /// ([`crate::OnlineAdvisor::finish`] attaches its tracker).
    /// `None` from the pure batch path — [`Advisor::recommend`] only
    /// estimates, it never executes.
    pub calibration: Option<crate::calibrate::CalibrationReport>,
}

impl Recommendation {
    /// The index specs recommended for stage `stage`.
    pub fn specs_at(&self, stage: usize) -> Vec<IndexSpec> {
        self.schedule.configs[stage]
            .structures()
            .map(|i| self.structures[i].clone())
            .collect()
    }

    /// One spec list per stage (input shape for [`crate::replay`]).
    pub fn stage_specs(&self) -> Vec<Vec<IndexSpec>> {
        (0..self.schedule.len()).map(|s| self.specs_at(s)).collect()
    }

    /// Maximal runs of equal configurations with resolved specs.
    pub fn segment_specs(&self) -> Vec<(Range<usize>, Vec<IndexSpec>)> {
        self.schedule
            .segments()
            .into_iter()
            .map(|(range, _)| {
                let specs = self.specs_at(range.start);
                (range, specs)
            })
            .collect()
    }

    /// Full cost-breakdown table (via [`cdpd_core::report::render`]),
    /// re-deriving the cost oracle from `db` and `trace`. Rows are
    /// segments; columns are exec and transition I/Os.
    pub fn render_with(&self, db: &Database, trace: &Trace) -> Result<String> {
        let workload = summarize(trace, self.window_len)?;
        let whatif = WhatIfEngine::snapshot(db, trace.table())?;
        let oracle = EngineOracle::new(whatif, self.structures.clone(), &workload)?.into_shared();
        let structures = self.structures.clone();
        let label = move |cfg: &cdpd_core::Config| -> String {
            let names: Vec<String> = cfg
                .structures()
                .map(|i| structures[i].display_short())
                .collect();
            if names.is_empty() {
                "(no index)".to_owned()
            } else {
                names.join(" + ")
            }
        };
        Ok(cdpd_core::report::render(
            &oracle,
            &self.problem,
            &self.schedule,
            &label,
        ))
    }

    /// Export the schedule as an annotated DDL script: one block per
    /// design change, with comments marking the window boundaries at
    /// which a DBA (or a scheduler) should apply each block. The
    /// statements parse back through `cdpd_sql::parse_many`, and
    /// applying a block is exactly what
    /// [`cdpd_engine::Database::apply_configuration`] does at that
    /// stage of a [`crate::replay`].
    pub fn to_ddl_script(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "-- dynamic physical design: {} change(s), est. cost {} I/Os\n",
            self.schedule.changes,
            self.schedule.total_cost()
        ));
        let mut prev: Vec<IndexSpec> = self
            .problem
            .initial
            .structures()
            .map(|i| self.structures[i].clone())
            .collect();
        for (range, specs) in self.segment_specs() {
            let dropped: Vec<&IndexSpec> = prev.iter().filter(|s| !specs.contains(s)).collect();
            let created: Vec<&IndexSpec> = specs.iter().filter(|s| !prev.contains(s)).collect();
            if !dropped.is_empty() || !created.is_empty() || range.start == 0 {
                out.push_str(&format!(
                    "\n-- before window {} (statements {}..{}):\n",
                    range.start,
                    range.start * self.window_len,
                    range.end * self.window_len
                ));
                for spec in dropped {
                    out.push_str(&format!("DROP INDEX {};\n", spec.name()));
                }
                for spec in created {
                    out.push_str(&format!(
                        "CREATE INDEX {} ON {} ({});\n",
                        spec.name(),
                        spec.table,
                        spec.columns.join(", ")
                    ));
                }
            }
            prev = specs;
        }
        if let Some(final_cfg) = &self.problem.final_config {
            let fin: Vec<IndexSpec> = final_cfg
                .structures()
                .map(|i| self.structures[i].clone())
                .collect();
            let closing: Vec<&IndexSpec> = prev.iter().filter(|s| !fin.contains(s)).collect();
            if !closing.is_empty() {
                out.push_str("\n-- after the workload:\n");
                for spec in closing {
                    out.push_str(&format!("DROP INDEX {};\n", spec.name()));
                }
            }
        }
        out
    }

    /// Paper-style rendering: one line per segment, `I(...)` notation.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "{} change(s), estimated cost {} I/Os (exec {}, trans {})\n",
            self.schedule.changes,
            self.schedule.total_cost(),
            self.schedule.exec_cost,
            self.schedule.trans_cost
        );
        for (range, specs) in self.segment_specs() {
            let names = if specs.is_empty() {
                "(no index)".to_owned()
            } else {
                specs
                    .iter()
                    .map(IndexSpec::display_short)
                    .collect::<Vec<_>>()
                    .join(" + ")
            };
            out.push_str(&format!(
                "  windows {:>3}..{:<3} {names}\n",
                range.start, range.end
            ));
        }
        out
    }
}

/// High-level one-call interface: trace in, design schedule out.
pub struct Advisor<'db> {
    db: &'db Database,
    table: String,
    options: AdvisorOptions,
}

impl<'db> Advisor<'db> {
    /// An advisor for `table` in `db` with default options.
    pub fn new(db: &'db Database, table: impl Into<String>) -> Advisor<'db> {
        Advisor {
            db,
            table: table.into(),
            options: AdvisorOptions::default(),
        }
    }

    /// Replace the options.
    pub fn options(mut self, options: AdvisorOptions) -> Advisor<'db> {
        self.options = options;
        self
    }

    /// Recommend a dynamic design for `trace`.
    pub fn recommend(&self, trace: &Trace) -> Result<Recommendation> {
        if trace.table() != self.table {
            return Err(Error::InvalidArgument(format!(
                "trace is on table {}, advisor on {}",
                trace.table(),
                self.table
            )));
        }
        let workload = summarize(trace, self.options.window_len)?;
        recommend_for_workload(self.db, &self.table, &self.options, &workload)
    }
}

/// The batch pipeline behind [`Advisor::recommend`], factored over an
/// already-summarized workload so [`crate::OnlineAdvisor::finish`] can
/// run the *identical* code path on its streamed summary — that shared
/// body is what makes the online/batch equivalence claim structural
/// rather than coincidental.
pub(crate) fn recommend_for_workload(
    db: &Database,
    table: &str,
    options: &AdvisorOptions,
    workload: &cdpd_workload::SummarizedWorkload,
) -> Result<Recommendation> {
    let metrics_before = cdpd_obs::registry().snapshot();
    let started_ns = cdpd_obs::trace::now_ns();
    let statements: usize = workload.blocks.iter().map(|b| b.len).sum();
    let span = cdpd_obs::span!("advisor.recommend", statements = statements);
    let whatif = WhatIfEngine::snapshot(db, table)?;

    // Candidate structures: explicit or derived; the currently
    // materialized indexes must be representable (they are C_0).
    let mut structures = match &options.structures {
        Some(s) => s.clone(),
        None => candidate_indexes(whatif.schema(), workload)?.0,
    };
    let current = db.index_specs(table)?;
    for spec in &current {
        if !structures.contains(spec) {
            structures.push(spec.clone());
        }
    }

    let mut engine = EngineOracle::new(whatif, structures, workload)?;
    let initial = engine
        .config_of(&current)
        .expect("current indexes were added to the structure list");
    let problem = Problem {
        initial,
        final_config: options.end_empty.then_some(Config::EMPTY),
        space_bound: options.space_bound_pages,
        count_initial_change: options.count_initial_change,
    };

    let mut hybrid_strategy = None;
    let (schedule, structures, oracle_stats) = if engine.n_structures() <= ENUMERABLE_VOCABULARY {
        // Narrow vocabulary: the seed pipeline, byte for byte — full
        // enumeration over the whole structure list.
        let oracle = engine.into_shared();
        let candidates = enumerate_configs(
            &oracle,
            options.space_bound_pages,
            options.max_structures_per_config,
        )?;
        let schedule = run_solver(
            &oracle,
            &problem,
            &candidates,
            options,
            &mut hybrid_strategy,
        )?;
        schedule.validate(&oracle, &problem, options.k)?;
        (
            schedule,
            oracle.inner().structures().to_vec(),
            oracle.stats_snapshot(),
        )
    } else {
        // Wide vocabulary: CoPhy-style decomposition. Rename the active
        // set (union of per-stage relevance masks + boundary configs) to
        // local coordinates, generate candidates and solve there, then
        // map the schedule back. When the active set itself is narrow
        // this is bit-identical to solving the narrow instance directly;
        // the seed pipeline simply refused these instances.
        let stats = OracleStats::shared();
        engine.attach_stats(stats.clone());
        let decomp = Decomposition::from_oracle(&engine, &problem, &[]);
        cdpd_obs::event!(
            "advisor: decomposed {} candidates to {} active structures",
            engine.n_structures(),
            decomp.n_local()
        );
        let local_problem = decomp.localize_problem(&problem);
        let oracle = ProjectedOracle::with_stats(decomp.local_oracle(&engine), stats);
        let candidates = if decomp.n_local() <= ENUMERABLE_VOCABULARY {
            enumerate_configs(
                &oracle,
                options.space_bound_pages,
                options.max_structures_per_config,
            )?
        } else {
            decompose::candidate_configs(&oracle, &local_problem)?
        };
        let schedule = run_solver(
            &oracle,
            &local_problem,
            &candidates,
            options,
            &mut hybrid_strategy,
        )?;
        schedule.validate(&oracle, &local_problem, options.k)?;
        let snapshot = oracle.stats_snapshot();
        drop(oracle);
        (
            decomp.globalize_schedule(schedule),
            engine.structures().to_vec(),
            snapshot,
        )
    };

    // Close the span before rendering so the recommend record itself
    // lands in the ring and the profile covers the whole call.
    drop(span);
    let profile = cdpd_obs::profile_since(started_ns);
    Ok(Recommendation {
        schedule,
        structures,
        window_len: options.window_len,
        problem,
        hybrid_strategy,
        oracle_stats,
        metrics: cdpd_obs::registry().snapshot().delta(&metrics_before),
        profile,
        calibration: None,
    })
}

/// Vocabularies up to this width take the seed path: full `2^m`
/// enumeration (the historical `enumerate_configs` wall). Wider ones
/// go through the CoPhy decomposition above.
pub(crate) const ENUMERABLE_VOCABULARY: usize = 20;

/// One solver dispatch shared by the narrow and decomposed paths.
fn run_solver(
    oracle: &dyn CostOracle,
    problem: &Problem,
    candidates: &[Config],
    options: &AdvisorOptions,
    hybrid_strategy: &mut Option<hybrid::Strategy>,
) -> Result<Schedule> {
    Ok(match (options.k, options.algorithm) {
        (None, _) => seqgraph::solve(oracle, problem, candidates)?,
        (Some(k), Algorithm::KAware) => kaware::solve(oracle, problem, candidates, k)?,
        (Some(k), Algorithm::Merging) => merging::solve(oracle, problem, candidates, k)?,
        (Some(k), Algorithm::Ranking { max_paths }) => {
            ranking::solve(oracle, problem, candidates, k, max_paths)?
        }
        (Some(k), Algorithm::Greedy) => greedy::solve(oracle, problem, k)?,
        (Some(k), Algorithm::Hybrid) => {
            let out = hybrid::solve(oracle, problem, candidates, k)?;
            *hybrid_strategy = Some(out.strategy);
            out.schedule
        }
    })
}

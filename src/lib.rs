//! # cdpd — Constrained Dynamic Physical Database Design
//!
//! A full reproduction of *Voigt, Salem, Lehner: "Constrained Dynamic
//! Physical Database Design"* (ICDE Workshops 2008), from the storage
//! engine up:
//!
//! * [`storage`] — pager, heap files, B+-trees with I/O accounting;
//! * [`sql`] — the query dialect of the paper's workloads;
//! * [`engine`] — executor, statistics, cost model, and the *what-if*
//!   optimizer design advisors are built on;
//! * [`workload`] — the paper's query mixes, workload generators, and
//!   trace summarization;
//! * [`core`] — the constrained dynamic design algorithms themselves
//!   (sequence graphs, k-aware graphs, merging, ranking, hybrid);
//! * this crate — the glue: [`EngineOracle`] adapts the what-if engine
//!   to the solver-facing [`core::CostOracle`] trait,
//!   [`candidate_indexes`] derives candidate structures from a trace,
//!   [`Advisor`] is the one-call API, [`OnlineAdvisor`] is its
//!   streaming counterpart (ingest statements, get design-change
//!   decisions at every window seal), [`replay`] executes a workload
//!   under a recommended design schedule, measuring real I/O, and
//!   [`calibrate`] closes the predicted-vs-actual loop over those
//!   executions (drift scores and a watchdog over the cost model).
//!
//! ## Quickstart
//!
//! ```no_run
//! use cdpd::{Advisor, AdvisorOptions};
//! use cdpd_engine::Database;
//! use cdpd_workload::{generate, paper};
//!
//! let mut db = Database::new();
//! // ... create and load the table, then db.analyze("t") ...
//! let trace = generate(&paper::w1(), 42);
//! let rec = Advisor::new(&db, "t")
//!     .options(AdvisorOptions { k: Some(2), ..Default::default() })
//!     .recommend(&trace)
//!     .unwrap();
//! for (window, indexes) in rec.segment_specs() {
//!     println!("windows {window:?}: {indexes:?}");
//! }
//! ```

#![warn(missing_docs)]

pub use cdpd_core as core;
pub use cdpd_engine as engine;
pub use cdpd_graph as graph;
pub use cdpd_obs as obs;
pub use cdpd_sql as sql;
pub use cdpd_storage as storage;
pub use cdpd_testkit as testkit;
pub use cdpd_types as types;
pub use cdpd_workload as workload;

mod advisor;
pub mod alerter;
pub mod calibrate;
mod candidates;
pub mod kadvice;
pub mod online;
mod oracle;
pub mod replay;
mod state;

pub use advisor::{Advisor, AdvisorOptions, Algorithm, Recommendation};
pub use alerter::{Alert, Alerter};
pub use calibrate::{
    CalibrationMode, CalibrationOptions, CalibrationReport, CalibrationTracker, PathKind,
    WindowCalibration,
};
pub use candidates::{candidate_indexes, candidate_indexes_capped};
pub use cdpd_core::OracleStatsSnapshot;
pub use cdpd_obs::MetricsSnapshot;
pub use kadvice::{suggest_k_robust, KAdvice, KAdviceOptions};
pub use online::{OnlineAdvisor, OnlineDecision, OnlineOptions};
pub use oracle::EngineOracle;

use cdpd_core::{Config, CostOracle};
use cdpd_engine::{IndexSpec, WhatIfEngine};
use cdpd_sql::Dml;
use cdpd_types::{Cost, Error, Result};
use cdpd_workload::SummarizedWorkload;

/// Adapts the engine's [`WhatIfEngine`] to the solver-facing
/// [`CostOracle`] trait.
///
/// A [`Config`] bit `i` means "candidate structure `structures[i]` is
/// materialized". `EXEC(stage, C)` is the weighted sum of what-if
/// estimates for the stage's summarized statements under that index
/// set; `TRANS`/`SIZE` delegate to the what-if engine's build/drop/size
/// estimates.
///
/// The oracle performs no caching itself: wrap it in
/// [`cdpd_core::MemoOracle`] before handing it to a solver (the solvers
/// probe the same `(stage, config)` pairs many times).
pub struct EngineOracle {
    whatif: WhatIfEngine,
    structures: Vec<IndexSpec>,
    /// Per stage: `(statement, multiplicity)`.
    blocks: Vec<Vec<(Dml, u64)>>,
}

impl EngineOracle {
    /// Build an oracle for `workload` over candidate `structures`.
    ///
    /// Validates everything up front — structures resolvable against
    /// the schema, statements on the oracle's table, `m ≤ 64` — so the
    /// trait methods (which cannot return errors) cannot fail later.
    pub fn new(
        whatif: WhatIfEngine,
        structures: Vec<IndexSpec>,
        workload: &SummarizedWorkload,
    ) -> Result<EngineOracle> {
        if structures.len() > 64 {
            return Err(Error::InvalidArgument(format!(
                "{} candidate structures exceed the 64-structure configuration encoding",
                structures.len()
            )));
        }
        if workload.is_empty() {
            return Err(Error::InvalidArgument("workload has no blocks".into()));
        }
        if workload.table != whatif.table() {
            return Err(Error::InvalidArgument(format!(
                "workload is on table {}, what-if oracle on {}",
                workload.table,
                whatif.table()
            )));
        }
        for spec in &structures {
            whatif.shape(spec)?; // validates table + columns
        }
        let blocks: Vec<Vec<(Dml, u64)>> = workload
            .blocks
            .iter()
            .map(|b| {
                b.weighted
                    .iter()
                    .map(|w| (w.statement.clone(), w.count))
                    .collect()
            })
            .collect();
        // Probe every statement once under the empty configuration so
        // unknown columns and type mismatches surface now.
        for block in &blocks {
            for (stmt, _) in block {
                whatif.dml_cost(stmt, &[])?;
            }
        }
        Ok(EngineOracle { whatif, structures, blocks })
    }

    /// The candidate structure list (bit order of [`Config`]).
    pub fn structures(&self) -> &[IndexSpec] {
        &self.structures
    }

    /// The index specs present in `config`, in bit order.
    pub fn specs_of(&self, config: Config) -> Vec<IndexSpec> {
        config
            .structures()
            .map(|i| self.structures[i].clone())
            .collect()
    }

    /// The configuration encoding exactly `specs`, if every spec is a
    /// known candidate structure.
    pub fn config_of(&self, specs: &[IndexSpec]) -> Option<Config> {
        let mut config = Config::EMPTY;
        for spec in specs {
            let i = self.structures.iter().position(|s| s == spec)?;
            config = config.with(i);
        }
        Some(config)
    }

    /// The underlying what-if engine.
    pub fn whatif(&self) -> &WhatIfEngine {
        &self.whatif
    }
}

impl CostOracle for EngineOracle {
    fn n_stages(&self) -> usize {
        self.blocks.len()
    }

    fn n_structures(&self) -> usize {
        self.structures.len()
    }

    fn exec(&self, stage: usize, config: Config) -> Cost {
        let specs = self.specs_of(config);
        self.blocks[stage]
            .iter()
            .map(|(stmt, count)| {
                self.whatif
                    .dml_cost(stmt, &specs)
                    .expect("constructor validated statements and structures")
                    .scale(*count)
            })
            .sum()
    }

    fn trans(&self, from: Config, to: Config) -> Cost {
        self.whatif
            .trans_cost(&self.specs_of(from), &self.specs_of(to))
            .expect("constructor validated structures")
    }

    fn size(&self, config: Config) -> u64 {
        self.whatif
            .config_size_pages(&self.specs_of(config))
            .expect("constructor validated structures")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpd_engine::Database;
    use cdpd_types::{ColumnDef, Schema, Value};
    use cdpd_workload::{generate, paper, summarize};

    fn test_db(rows: i64) -> Database {
        let mut db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::int("a"),
                ColumnDef::int("b"),
                ColumnDef::int("c"),
                ColumnDef::int("d"),
            ]),
        )
        .unwrap();
        let dom = rows / 5;
        for i in 0..rows {
            let h = |k: i64| Value::Int((i * 2654435761 * (k + 1)).rem_euclid(dom));
            db.insert("t", &[h(0), h(1), h(2), h(3)]).unwrap();
        }
        db.analyze("t").unwrap();
        db
    }

    fn paper_structures() -> Vec<IndexSpec> {
        vec![
            IndexSpec::new("t", &["a"]),
            IndexSpec::new("t", &["b"]),
            IndexSpec::new("t", &["c"]),
            IndexSpec::new("t", &["d"]),
            IndexSpec::new("t", &["a", "b"]),
            IndexSpec::new("t", &["c", "d"]),
        ]
    }

    fn oracle(rows: i64) -> EngineOracle {
        let db = test_db(rows);
        let params = paper::PaperParams { domain: rows / 5, window_len: 100, ..Default::default() };
        let trace = generate(&paper::w1_with(&params), 11);
        let workload = summarize(&trace, 100).unwrap();
        EngineOracle::new(
            WhatIfEngine::snapshot(&db, "t").unwrap(),
            paper_structures(),
            &workload,
        )
        .unwrap()
    }

    #[test]
    fn dimensions_match_workload() {
        let o = oracle(10_000);
        assert_eq!(o.n_stages(), 30);
        assert_eq!(o.n_structures(), 6);
    }

    #[test]
    fn spec_config_roundtrip() {
        let o = oracle(5_000);
        let config = Config::EMPTY.with(1).with(4);
        let specs = o.specs_of(config);
        assert_eq!(specs.len(), 2);
        assert_eq!(o.config_of(&specs), Some(config));
        assert_eq!(o.config_of(&[IndexSpec::new("t", &["z"])]), None);
        assert_eq!(o.config_of(&[]), Some(Config::EMPTY));
    }

    #[test]
    fn exec_improves_with_relevant_index() {
        let o = oracle(10_000);
        // Stage 0 of W1 is mix A (a-heavy): I(a,b) must help a lot.
        let empty = o.exec(0, Config::EMPTY);
        let with_ab = o.exec(0, Config::single(4));
        assert!(with_ab.raw() * 2 < empty.raw(), "{with_ab} !<< {empty}");
        // An index on c helps mix A only a little.
        let with_c = o.exec(0, Config::single(2));
        assert!(with_c > with_ab);
    }

    #[test]
    fn trans_and_size_delegate() {
        let o = oracle(5_000);
        assert_eq!(o.trans(Config::EMPTY, Config::EMPTY), Cost::ZERO);
        assert!(o.trans(Config::EMPTY, Config::single(0)).ios() > 10);
        assert_eq!(o.size(Config::EMPTY), 0);
        assert!(o.size(Config::single(4)) > o.size(Config::single(0)));
    }

    #[test]
    fn constructor_validates() {
        let db = test_db(1_000);
        let whatif = WhatIfEngine::snapshot(&db, "t").unwrap();
        let trace = generate(
            &paper::w1_with(&paper::PaperParams {
                domain: 200,
                window_len: 10,
                ..Default::default()
            }),
            1,
        );
        let workload = summarize(&trace, 10).unwrap();
        // Unknown column in a structure.
        let bad = vec![IndexSpec::new("t", &["nope"])];
        assert!(EngineOracle::new(whatif, bad, &workload).is_err());
        // Wrong table in the workload.
        let whatif = WhatIfEngine::snapshot(&db, "t").unwrap();
        let other = cdpd_workload::Trace::from_selects(
            "u",
            vec![cdpd_sql::SelectStmt::point("u", "a", 1)],
        );
        let other_sum = summarize(&other, 10).unwrap();
        assert!(EngineOracle::new(whatif, vec![], &other_sum).is_err());
    }
}

use cdpd_core::{
    Config, CostOracle, DenseOracle, OracleStats, ProjectableOracle, ProjectedOracle, RelevanceMask,
};
use cdpd_engine::{IndexSpec, WhatIfEngine};
use cdpd_sql::Dml;
use cdpd_types::{Cost, Error, Result};
use cdpd_workload::SummarizedWorkload;
use std::sync::Arc;

/// A group of statements within one stage that share a relevance mask:
/// the unit of the oracle layer's projected caching.
struct Part {
    /// Structures that can affect these statements' costs.
    mask: Config,
    /// `(statement, multiplicity)` members.
    members: Vec<(Dml, u64)>,
}

/// The relevance vector the planner answers, as a [`Config`] mask.
fn mask_of(relevant: &[bool]) -> Config {
    relevant
        .iter()
        .enumerate()
        .filter(|(_, &r)| r)
        .fold(Config::EMPTY, |acc, (i, _)| acc.with(i))
}

/// Adapts the engine's [`WhatIfEngine`] to the solver-facing
/// [`CostOracle`] trait.
///
/// A [`Config`] bit `i` means "candidate structure `structures[i]` is
/// materialized". `EXEC(stage, C)` is the weighted sum of what-if
/// estimates for the stage's summarized statements under that index
/// set; `TRANS`/`SIZE` delegate to the what-if engine's build/drop/size
/// estimates.
///
/// The oracle performs no caching itself, but it *exports relevance*:
/// at construction it asks the planner which structures can affect
/// each statement and groups every stage's statements into equal-mask
/// parts, implementing [`ProjectableOracle`]. Hand it to a solver
/// through [`EngineOracle::into_shared`] (sharded projected memo) or
/// [`EngineOracle::into_dense`] (up-front dense tables) — both count
/// raw what-if calls into a shared [`OracleStats`] bundle.
pub struct EngineOracle {
    whatif: WhatIfEngine,
    structures: Vec<IndexSpec>,
    /// Per stage: equal-mask statement groups.
    parts: Vec<Vec<Part>>,
    /// Per stage: union of the stage's part masks.
    stage_masks: Vec<Config>,
    /// Counts raw what-if cost calls; shared with any wrapping layer.
    stats: Arc<OracleStats>,
}

impl EngineOracle {
    /// Build an oracle for `workload` over candidate `structures` —
    /// any number of them; configurations are width-agnostic.
    ///
    /// Validates everything up front — structures resolvable against
    /// the schema, statements on the oracle's table — so the trait
    /// methods (which cannot return errors) cannot fail later.
    pub fn new(
        whatif: WhatIfEngine,
        structures: Vec<IndexSpec>,
        workload: &SummarizedWorkload,
    ) -> Result<EngineOracle> {
        if workload.is_empty() {
            return Err(Error::InvalidArgument("workload has no blocks".into()));
        }
        if workload.table != whatif.table() {
            return Err(Error::InvalidArgument(format!(
                "workload is on table {}, what-if oracle on {}",
                workload.table,
                whatif.table()
            )));
        }
        for spec in &structures {
            whatif.shape(spec)?; // validates table + columns
        }
        // Probe every statement once under the empty configuration so
        // unknown columns and type mismatches surface now, and group
        // each stage's statements by their planner relevance mask.
        let mut parts: Vec<Vec<Part>> = Vec::with_capacity(workload.blocks.len());
        let mut stage_masks = Vec::with_capacity(workload.blocks.len());
        for block in &workload.blocks {
            let mut stage_parts: Vec<Part> = Vec::new();
            for w in &block.weighted {
                whatif.dml_cost(&w.statement, &[])?;
                let mask = mask_of(&whatif.relevant_structures(&w.statement, &structures)?);
                match stage_parts.iter_mut().find(|p| p.mask == mask) {
                    Some(part) => part.members.push((w.statement.clone(), w.count)),
                    None => stage_parts.push(Part {
                        mask,
                        members: vec![(w.statement.clone(), w.count)],
                    }),
                }
            }
            stage_masks.push(
                stage_parts
                    .iter()
                    .fold(Config::EMPTY, |acc, p| acc.union(&p.mask)),
            );
            parts.push(stage_parts);
        }
        Ok(EngineOracle {
            whatif,
            structures,
            parts,
            stage_masks,
            stats: OracleStats::shared(),
        })
    }

    /// Append one workload block as a new stage, without touching the
    /// existing stages: the streaming counterpart of the constructor's
    /// per-block loop. Stage indices of everything already built are
    /// stable, so a wrapping [`ProjectedOracle`] keeps every memo entry
    /// for earlier stages warm across the extension.
    ///
    /// # Errors
    /// Same per-statement validation as [`EngineOracle::new`].
    pub fn append_block(&mut self, block: &cdpd_workload::Block) -> Result<()> {
        let _span = cdpd_obs::span!(
            "oracle.engine.append_block",
            stage = self.parts.len(),
            statements = block.len
        );
        let mut stage_parts: Vec<Part> = Vec::new();
        for w in &block.weighted {
            self.whatif.dml_cost(&w.statement, &[])?;
            let mask = mask_of(
                &self
                    .whatif
                    .relevant_structures(&w.statement, &self.structures)?,
            );
            match stage_parts.iter_mut().find(|p| p.mask == mask) {
                Some(part) => part.members.push((w.statement.clone(), w.count)),
                None => stage_parts.push(Part {
                    mask,
                    members: vec![(w.statement.clone(), w.count)],
                }),
            }
        }
        self.stage_masks.push(
            stage_parts
                .iter()
                .fold(Config::EMPTY, |acc, p| acc.union(&p.mask)),
        );
        self.parts.push(stage_parts);
        Ok(())
    }

    /// Swap in a fresh what-if snapshot (same table, same structures)
    /// after a statistics refresh, keeping parts and relevance masks:
    /// which structures *can* affect a statement depends only on its
    /// shape and the structure columns, not on the statistics, so the
    /// part decomposition survives a stats change — only the cached
    /// *costs* go stale, and which of those to evict is exactly what
    /// [`EngineOracle::part_references`] answers.
    ///
    /// # Errors
    /// The new snapshot must be over the same table and resolve every
    /// candidate structure.
    pub fn refresh_whatif(&mut self, whatif: WhatIfEngine) -> Result<()> {
        if whatif.table() != self.whatif.table() {
            return Err(Error::InvalidArgument(format!(
                "refresh snapshot is on table {}, oracle on {}",
                whatif.table(),
                self.whatif.table()
            )));
        }
        for spec in &self.structures {
            whatif.shape(spec)?;
        }
        self.whatif = whatif;
        Ok(())
    }

    /// Whether any statement of `(stage, part)` predicates on one of
    /// `columns` — the staleness test for delta-maintained statistics:
    /// a histogram refresh on those columns can only move the costs of
    /// parts this returns `true` for (plan *choice* depends on the
    /// configuration, not the statistics, so predicate columns are the
    /// whole dependency).
    pub fn part_references(&self, stage: usize, part: usize, columns: &[String]) -> bool {
        self.parts[stage][part].members.iter().any(|(stmt, _)| {
            stmt.conditions().iter().any(|c| {
                c.columns()
                    .iter()
                    .any(|cc| columns.iter().any(|col| col == cc))
            })
        })
    }

    /// The candidate structure list (bit order of [`Config`]).
    pub fn structures(&self) -> &[IndexSpec] {
        &self.structures
    }

    /// The index specs present in `config`, in bit order.
    pub fn specs_of(&self, config: &Config) -> Vec<IndexSpec> {
        config
            .structures()
            .map(|i| self.structures[i].clone())
            .collect()
    }

    /// The configuration encoding exactly `specs`, if every spec is a
    /// known candidate structure.
    pub fn config_of(&self, specs: &[IndexSpec]) -> Option<Config> {
        let mut config = Config::EMPTY;
        for spec in specs {
            let i = self.structures.iter().position(|s| s == spec)?;
            config = config.with(i);
        }
        Some(config)
    }

    /// The underlying what-if engine.
    pub fn whatif(&self) -> &WhatIfEngine {
        &self.whatif
    }

    /// The per-stage relevance masks the planner derived for this
    /// workload (union over each stage's statement masks).
    pub fn relevance(&self) -> RelevanceMask {
        RelevanceMask::new(self.stage_masks.clone())
    }

    /// The stats bundle this oracle counts raw what-if calls into.
    pub fn stats(&self) -> &Arc<OracleStats> {
        &self.stats
    }

    /// Record counters into an existing bundle instead (callers that
    /// aggregate several oracles, or the `into_*` constructors below).
    pub fn attach_stats(&mut self, stats: Arc<OracleStats>) {
        self.stats = stats;
    }

    /// Wrap in the sharded projected-memo layer, sharing one stats
    /// bundle between the engine adapter (raw what-if calls) and the
    /// cache (hits/misses). The standard solver-facing form.
    pub fn into_shared(mut self) -> ProjectedOracle<EngineOracle> {
        let stats = OracleStats::shared();
        self.stats = stats.clone();
        ProjectedOracle::with_stats(self, stats)
    }

    /// Materialize dense per-part cost tables up front (parallel
    /// build; see [`DenseOracle`]), sharing one stats bundle like
    /// [`EngineOracle::into_shared`].
    pub fn into_dense(self) -> DenseOracle<EngineOracle> {
        self.into_dense_capped(cdpd_core::oracle::DENSE_MAX_BITS)
    }

    /// [`EngineOracle::into_dense`] with an explicit table-width cap.
    pub fn into_dense_capped(mut self, max_bits: usize) -> DenseOracle<EngineOracle> {
        let stats = OracleStats::shared();
        self.stats = stats.clone();
        DenseOracle::with_stats(self, stats, max_bits)
    }
}

impl CostOracle for EngineOracle {
    fn n_stages(&self) -> usize {
        self.parts.len()
    }

    fn n_structures(&self) -> usize {
        self.structures.len()
    }

    fn exec(&self, stage: usize, config: &Config) -> Cost {
        // Deliberately unprojected: the raw path sums every part under
        // the full configuration, which keeps this method a reference
        // implementation the projected/dense layers are differentially
        // tested against. (Saturating sums are grouping-independent,
        // so summing part-by-part equals the seed's statement order.)
        (0..self.parts[stage].len())
            .map(|p| self.exec_part(stage, p, config))
            .sum()
    }

    fn trans(&self, from: &Config, to: &Config) -> Cost {
        self.whatif
            .trans_cost(&self.specs_of(from), &self.specs_of(to))
            .expect("constructor validated structures")
    }

    fn size(&self, config: &Config) -> u64 {
        self.whatif
            .config_size_pages(&self.specs_of(config))
            .expect("constructor validated structures")
    }
}

impl ProjectableOracle for EngineOracle {
    fn relevance_mask(&self, stage: usize) -> Config {
        self.stage_masks[stage].clone()
    }

    fn n_parts(&self, stage: usize) -> usize {
        self.parts[stage].len()
    }

    fn part_mask(&self, stage: usize, part: usize) -> Config {
        self.parts[stage][part].mask.clone()
    }

    fn exec_part(&self, stage: usize, part: usize, config: &Config) -> Cost {
        let part = &self.parts[stage][part];
        let specs = self.specs_of(config);
        self.stats.record_whatif_calls(part.members.len() as u64);
        part.members
            .iter()
            .map(|(stmt, count)| {
                self.whatif
                    .dml_cost(stmt, &specs)
                    .expect("constructor validated statements and structures")
                    .scale(*count)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpd_engine::Database;
    use cdpd_types::{ColumnDef, Schema, Value};
    use cdpd_workload::{generate, paper, summarize};

    fn test_db(rows: i64) -> Database {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::int("a"),
                ColumnDef::int("b"),
                ColumnDef::int("c"),
                ColumnDef::int("d"),
            ]),
        )
        .unwrap();
        let dom = rows / 5;
        for i in 0..rows {
            let h = |k: i64| Value::Int((i * 2654435761 * (k + 1)).rem_euclid(dom));
            db.insert("t", &[h(0), h(1), h(2), h(3)]).unwrap();
        }
        db.analyze("t").unwrap();
        db
    }

    fn paper_structures() -> Vec<IndexSpec> {
        vec![
            IndexSpec::new("t", &["a"]),
            IndexSpec::new("t", &["b"]),
            IndexSpec::new("t", &["c"]),
            IndexSpec::new("t", &["d"]),
            IndexSpec::new("t", &["a", "b"]),
            IndexSpec::new("t", &["c", "d"]),
        ]
    }

    fn oracle(rows: i64) -> EngineOracle {
        let db = test_db(rows);
        let params = paper::PaperParams {
            domain: rows / 5,
            window_len: 100,
            ..Default::default()
        };
        let trace = generate(&paper::w1_with(&params), 11);
        let workload = summarize(&trace, 100).unwrap();
        EngineOracle::new(
            WhatIfEngine::snapshot(&db, "t").unwrap(),
            paper_structures(),
            &workload,
        )
        .unwrap()
    }

    #[test]
    fn dimensions_match_workload() {
        let o = oracle(10_000);
        assert_eq!(o.n_stages(), 30);
        assert_eq!(o.n_structures(), 6);
    }

    #[test]
    fn spec_config_roundtrip() {
        let o = oracle(5_000);
        let config = Config::EMPTY.with(1).with(4);
        let specs = o.specs_of(&config);
        assert_eq!(specs.len(), 2);
        assert_eq!(o.config_of(&specs), Some(config));
        assert_eq!(o.config_of(&[IndexSpec::new("t", &["z"])]), None);
        assert_eq!(o.config_of(&[]), Some(Config::EMPTY));
    }

    #[test]
    fn exec_improves_with_relevant_index() {
        let o = oracle(10_000);
        // Stage 0 of W1 is mix A (a-heavy): I(a,b) must help a lot.
        let empty = o.exec(0, &Config::EMPTY);
        let with_ab = o.exec(0, &Config::single(4));
        assert!(with_ab.raw() * 2 < empty.raw(), "{with_ab} !<< {empty}");
        // An index on c helps mix A only a little.
        let with_c = o.exec(0, &Config::single(2));
        assert!(with_c > with_ab);
    }

    #[test]
    fn trans_and_size_delegate() {
        let o = oracle(5_000);
        assert_eq!(o.trans(&Config::EMPTY, &Config::EMPTY), Cost::ZERO);
        assert!(o.trans(&Config::EMPTY, &Config::single(0)).ios() > 10);
        assert_eq!(o.size(&Config::EMPTY), 0);
        assert!(o.size(&Config::single(4)) > o.size(&Config::single(0)));
    }

    #[test]
    fn stages_decompose_into_equal_mask_parts() {
        let o = oracle(10_000);
        for stage in 0..o.n_stages() {
            // W1 point-queries every column, so each stage splits into
            // per-column parts: query on x ⇒ mask {I(x), composites
            // containing x} — four distinct masks, never one blob.
            assert!(
                o.n_parts(stage) >= 4,
                "stage {stage} has {} parts",
                o.n_parts(stage)
            );
            let union = (0..o.n_parts(stage))
                .fold(Config::EMPTY, |acc, p| acc.union(&o.part_mask(stage, p)));
            assert_eq!(union, o.relevance_mask(stage));
            // Parts are strictly narrower than the full structure set.
            for p in 0..o.n_parts(stage) {
                assert!(o.part_mask(stage, p).len() < o.n_structures());
            }
        }
        let rel = o.relevance();
        assert_eq!(rel.len(), o.n_stages());
    }

    #[test]
    fn part_decomposition_preserves_exec() {
        let o = oracle(10_000);
        for stage in [0, 10, 20] {
            for bits in [0u64, 0b1, 0b10000, 0b110011, 0b111111] {
                let cfg = Config::from_bits(bits);
                let whole = o.exec(stage, &cfg);
                let parts: Cost = (0..o.n_parts(stage))
                    .map(|p| o.exec_part(stage, p, &cfg.intersect(&o.part_mask(stage, p))))
                    .sum();
                assert_eq!(whole, parts, "stage {stage} cfg {cfg}");
            }
        }
    }

    #[test]
    fn shared_and_dense_count_fewer_whatif_calls_than_raw() {
        let probe = |o: &dyn CostOracle| {
            for stage in 0..o.n_stages() {
                for bits in 0..(1u64 << 6) {
                    o.exec(stage, &Config::from_bits(bits));
                }
            }
        };
        let raw = oracle(5_000);
        probe(&raw);
        let raw_calls = cdpd_core::OracleStatsSnapshot::from(&**raw.stats()).whatif_calls;

        let shared = oracle(5_000).into_shared();
        probe(&shared);
        let shared_calls = shared.stats_snapshot().whatif_calls;

        let dense = oracle(5_000).into_dense();
        probe(&dense);
        let dense_calls = dense.stats_snapshot().whatif_calls;

        assert!(shared_calls < raw_calls, "{shared_calls} !< {raw_calls}");
        assert!(dense_calls < raw_calls, "{dense_calls} !< {raw_calls}");
        // And the layers agree with the raw reference.
        for stage in [0, 15, 29] {
            for bits in [0u64, 0b101, 0b111111] {
                let cfg = Config::from_bits(bits);
                assert_eq!(shared.exec(stage, &cfg), raw.exec(stage, &cfg));
                assert_eq!(dense.exec(stage, &cfg), raw.exec(stage, &cfg));
            }
        }
    }

    #[test]
    fn append_block_matches_batch_construction() {
        let db = test_db(5_000);
        let params = paper::PaperParams {
            domain: 1_000,
            window_len: 100,
            ..Default::default()
        };
        let trace = generate(&paper::w1_with(&params), 11);
        let workload = summarize(&trace, 100).unwrap();
        let batch = EngineOracle::new(
            WhatIfEngine::snapshot(&db, "t").unwrap(),
            paper_structures(),
            &workload,
        )
        .unwrap();
        // Construct over the first block, then stream in the rest.
        let head = cdpd_workload::SummarizedWorkload {
            table: workload.table.clone(),
            blocks: vec![workload.blocks[0].clone()],
        };
        let mut inc = EngineOracle::new(
            WhatIfEngine::snapshot(&db, "t").unwrap(),
            paper_structures(),
            &head,
        )
        .unwrap();
        for block in &workload.blocks[1..] {
            inc.append_block(block).unwrap();
        }
        assert_eq!(inc.n_stages(), batch.n_stages());
        for stage in 0..batch.n_stages() {
            assert_eq!(inc.n_parts(stage), batch.n_parts(stage));
            assert_eq!(inc.relevance_mask(stage), batch.relevance_mask(stage));
            for bits in [0u64, 0b1, 0b10110, 0b111111] {
                let cfg = Config::from_bits(bits);
                assert_eq!(inc.exec(stage, &cfg), batch.exec(stage, &cfg));
            }
        }
        // Appending an invalid statement fails without corrupting state.
        let stages_before = inc.n_stages();
        let bad = cdpd_workload::summarize(
            &cdpd_workload::Trace::from_selects(
                "t",
                vec![cdpd_sql::SelectStmt::point("t", "nope", 1)],
            ),
            10,
        )
        .unwrap();
        assert!(inc.append_block(&bad.blocks[0]).is_err());
        assert_eq!(inc.n_stages(), stages_before);
    }

    #[test]
    fn part_references_tracks_predicate_columns() {
        let o = oracle(5_000);
        let a = vec!["a".to_owned()];
        let z = vec!["z".to_owned()];
        // W1 queries every column in every window: some part must
        // predicate on `a`, and none on an unknown column.
        let hits = (0..o.n_parts(0))
            .filter(|&p| o.part_references(0, p, &a))
            .count();
        assert!(hits >= 1);
        assert!((0..o.n_parts(0)).all(|p| !o.part_references(0, p, &z)));
    }

    #[test]
    fn constructor_validates() {
        let db = test_db(1_000);
        let whatif = WhatIfEngine::snapshot(&db, "t").unwrap();
        let trace = generate(
            &paper::w1_with(&paper::PaperParams {
                domain: 200,
                window_len: 10,
                ..Default::default()
            }),
            1,
        );
        let workload = summarize(&trace, 10).unwrap();
        // Unknown column in a structure.
        let bad = vec![IndexSpec::new("t", &["nope"])];
        assert!(EngineOracle::new(whatif, bad, &workload).is_err());
        // Wrong table in the workload.
        let whatif = WhatIfEngine::snapshot(&db, "t").unwrap();
        let other =
            cdpd_workload::Trace::from_selects("u", vec![cdpd_sql::SelectStmt::point("u", "a", 1)]);
        let other_sum = summarize(&other, 10).unwrap();
        assert!(EngineOracle::new(whatif, vec![], &other_sum).is_err());
    }
}

//! A lightweight *design alerter* — the §7 deployment story.
//!
//! The paper positions its advisor as an **off-line** optimizer and
//! points at alerters for the missing trigger:
//!
//! > *"Design alerters periodically check the quality of the existing
//! > physical configuration and send an alert to the database
//! > administrators if the quality appears to be deteriorating. Within
//! > our framework, we might rely on these technologies to trigger an
//! > off-line dynamic optimizer such as the one presented here."*
//!
//! [`Alerter`] implements that loop: it observes recently executed
//! statements in a sliding window, and on [`Alerter::check`] compares
//! the what-if cost of the window under the *current* configuration
//! against the best candidate configuration. When the current design
//! is more than `threshold` worse, it raises an [`Alert`] whose payload
//! is exactly what the offline advisor needs next: the recent trace.
//!
//! The check is deliberately cheap (a handful of what-if estimates over
//! the *summarized* window — no solving), in the spirit of Bruno &
//! Chaudhuri's "lightweight physical design alerter".
//!
//! The check has a second input besides degradation: **calibration
//! drift** ([`Alerter::note_calibration`]). The degradation signal is
//! built entirely out of what-if estimates, so when the cost model
//! itself has drifted out of its band the alerter can no longer prove
//! the design is fine — a tripped [`CalibrationReport`] therefore
//! forces an alert even while the estimated degradation looks
//! acceptable.

use crate::calibrate::CalibrationReport;
use cdpd_core::{Config, CostOracle, OracleStatsSnapshot};
use cdpd_engine::{Database, IndexSpec, WhatIfEngine};
use cdpd_sql::Dml;
use cdpd_types::{Cost, Error, Result};
use cdpd_workload::{summarize, Trace};
use std::collections::VecDeque;

/// Raised when the current design has deteriorated past the threshold.
#[derive(Clone, Debug)]
pub struct Alert {
    /// Estimated window cost under the current configuration.
    pub current_cost: Cost,
    /// Estimated window cost under the best candidate configuration.
    pub best_cost: Cost,
    /// The candidate configuration that would be best *right now*
    /// (a hint, not a recommendation — run the advisor for one).
    pub better_config: Vec<IndexSpec>,
    /// `current/best − 1`, e.g. `0.8` = 80% worse than achievable.
    pub degradation: f64,
    /// The observed statements, ready to feed to the offline advisor.
    pub recent_trace: Trace,
    /// Cost-oracle instrumentation for the check's cheap sweep (see
    /// [`cdpd_core::OracleStats`]).
    pub oracle_stats: OracleStatsSnapshot,
    /// Process-wide metrics delta over the [`Alerter::check`] call.
    pub metrics: cdpd_obs::MetricsSnapshot,
    /// Rendered span-tree profile of the check, when tracing is on.
    pub profile: Option<String>,
    /// The calibration state that was live at the check, when the
    /// caller has fed one in. When `calibration.tripped` the alert may
    /// have fired on drift alone (see [`Alerter::note_calibration`]).
    pub calibration: Option<CalibrationReport>,
}

/// Sliding-window quality monitor for one table's physical design.
///
/// [`Alerter::check`] snapshots fresh statistics each time (the data
/// may have changed since construction); the constructor's snapshot
/// exists only to validate the candidate structures eagerly.
pub struct Alerter {
    table: String,
    candidates: Vec<IndexSpec>,
    window: VecDeque<Dml>,
    capacity: usize,
    threshold: f64,
    calibration: Option<CalibrationReport>,
}

impl Alerter {
    /// Monitor `table`, comparing against `candidates` (e.g. the same
    /// structure list the advisor uses), alerting when the current
    /// design is `threshold` (fractional, e.g. `0.5` = 50%) worse than
    /// the best candidate over the last `capacity` statements.
    pub fn new(
        db: &Database,
        table: &str,
        candidates: Vec<IndexSpec>,
        capacity: usize,
        threshold: f64,
    ) -> Result<Alerter> {
        if capacity == 0 {
            return Err(Error::InvalidArgument(
                "alerter window must be positive".into(),
            ));
        }
        if candidates.is_empty() {
            return Err(Error::InvalidArgument(
                "alerter needs candidate structures".into(),
            ));
        }
        let whatif = WhatIfEngine::snapshot(db, table)?;
        for spec in &candidates {
            whatif.shape(spec)?;
        }
        Ok(Alerter {
            table: table.to_owned(),
            candidates,
            window: VecDeque::with_capacity(capacity),
            capacity,
            threshold,
            calibration: None,
        })
    }

    /// Record one executed statement.
    pub fn observe(&mut self, stmt: &Dml) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(stmt.clone());
    }

    /// Feed the latest predicted-vs-actual calibration state in (e.g.
    /// from [`crate::replay::ReplayReport::calibration`] or an
    /// [`crate::OnlineDecision`]). While the report is tripped —
    /// drift outside its band — [`Alerter::check`] alerts even when
    /// the estimated degradation is under the threshold: the
    /// degradation signal is made of the very estimates the drift has
    /// discredited.
    pub fn note_calibration(&mut self, report: CalibrationReport) {
        self.calibration = Some(report);
    }

    /// Number of statements currently in the window.
    pub fn observed(&self) -> usize {
        self.window.len()
    }

    /// Compare the current configuration against the best ≤1-index
    /// candidate configuration over the observed window. Returns an
    /// alert if the current design is more than `threshold` worse;
    /// `None` while the window is empty or the design holds up.
    pub fn check(&self, db: &Database) -> Result<Option<Alert>> {
        if self.window.is_empty() {
            return Ok(None);
        }
        let metrics_before = cdpd_obs::registry().snapshot();
        let started_ns = cdpd_obs::trace::now_ns();
        let span = cdpd_obs::span!("alerter.check", window = self.window.len());
        let trace = Trace::new(self.table.clone(), self.window.iter().cloned().collect());
        let summarized = summarize(&trace, self.window.len())?;

        // One oracle over candidates + current design's structures.
        let mut structures = self.candidates.clone();
        let current_specs = db.index_specs(&self.table)?;
        for spec in &current_specs {
            if !structures.contains(spec) {
                structures.push(spec.clone());
            }
        }
        let whatif = WhatIfEngine::snapshot(db, &self.table)?;
        let oracle = crate::EngineOracle::new(whatif, structures, &summarized)?.into_shared();
        let current = oracle
            .inner()
            .config_of(&current_specs)
            .expect("current specs were appended to the structure list");
        let current_cost = oracle.exec(0, &current);

        // Cheap sweep: empty + each single candidate (the alerter's job
        // is detection, not optimization).
        let mut best = (Config::EMPTY, oracle.exec(0, &Config::EMPTY));
        for i in 0..self.candidates.len() {
            let cfg = Config::single(i);
            let cost = oracle.exec(0, &cfg);
            if cost < best.1 {
                best = (cfg, cost);
            }
        }
        let (best_config, best_cost) = best;
        let degradation = if best_cost.raw() == 0 {
            0.0
        } else {
            current_cost.raw() as f64 / best_cost.raw() as f64 - 1.0
        };
        let drift_tripped = self.calibration.as_ref().is_some_and(|c| c.tripped);
        if degradation <= self.threshold && !drift_tripped {
            return Ok(None);
        }
        drop(span);
        Ok(Some(Alert {
            current_cost,
            best_cost,
            better_config: oracle.inner().specs_of(&best_config),
            degradation,
            recent_trace: trace,
            oracle_stats: oracle.stats_snapshot(),
            metrics: cdpd_obs::registry().snapshot().delta(&metrics_before),
            profile: cdpd_obs::profile_since(started_ns),
            calibration: self.calibration.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpd_sql::SelectStmt;
    use cdpd_testkit::Prng;
    use cdpd_types::{ColumnDef, Schema, Value};

    fn db_with(rows: i64, index_on: Option<&str>) -> Database {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::int("a"),
                ColumnDef::int("b"),
                ColumnDef::int("c"),
                ColumnDef::int("d"),
            ]),
        )
        .unwrap();
        let domain = rows / 5;
        let mut rng = Prng::seed_from_u64(9);
        for _ in 0..rows {
            let row: Vec<Value> = (0..4)
                .map(|_| Value::Int(rng.gen_range(0..domain)))
                .collect();
            db.insert("t", &row).unwrap();
        }
        db.analyze("t").unwrap();
        if let Some(col) = index_on {
            db.create_index(&IndexSpec::new("t", &[col])).unwrap();
        }
        db
    }

    fn candidates() -> Vec<IndexSpec> {
        ["a", "b", "c", "d"]
            .iter()
            .map(|c| IndexSpec::new("t", &[*c]))
            .collect()
    }

    #[test]
    fn quiet_while_design_matches_workload() {
        let db = db_with(10_000, Some("a"));
        let mut alerter = Alerter::new(&db, "t", candidates(), 100, 0.5).unwrap();
        assert!(
            alerter.check(&db).unwrap().is_none(),
            "empty window is quiet"
        );
        for i in 0..100 {
            alerter.observe(&SelectStmt::point("t", "a", i).into());
        }
        assert_eq!(alerter.observed(), 100);
        assert!(
            alerter.check(&db).unwrap().is_none(),
            "I(a) serves a-queries"
        );
    }

    #[test]
    fn alerts_when_workload_shifts_away() {
        let db = db_with(10_000, Some("a"));
        let mut alerter = Alerter::new(&db, "t", candidates(), 100, 0.5).unwrap();
        // The workload has moved to column c: I(a) is now useless.
        for i in 0..100 {
            alerter.observe(&SelectStmt::point("t", "c", i).into());
        }
        let alert = alerter.check(&db).unwrap().expect("must alert");
        assert!(alert.degradation > 0.5, "{alert:?}");
        assert_eq!(alert.better_config, vec![IndexSpec::new("t", &["c"])]);
        assert_eq!(alert.recent_trace.len(), 100);
        assert!(alert.current_cost > alert.best_cost);
    }

    #[test]
    fn window_slides() {
        let db = db_with(5_000, Some("a"));
        let mut alerter = Alerter::new(&db, "t", candidates(), 50, 0.5).unwrap();
        // Old c-queries age out as fresh a-queries arrive.
        for i in 0..50 {
            alerter.observe(&SelectStmt::point("t", "c", i).into());
        }
        assert!(alerter.check(&db).unwrap().is_some());
        for i in 0..50 {
            alerter.observe(&SelectStmt::point("t", "a", i).into());
        }
        assert_eq!(alerter.observed(), 50);
        assert!(
            alerter.check(&db).unwrap().is_none(),
            "window fully replaced"
        );
    }

    #[test]
    fn alert_trace_feeds_the_advisor() {
        let db = db_with(10_000, Some("a"));
        let mut alerter = Alerter::new(&db, "t", candidates(), 60, 0.5).unwrap();
        for i in 0..60 {
            alerter.observe(&SelectStmt::point("t", "c", i).into());
        }
        let alert = alerter.check(&db).unwrap().expect("must alert");
        // The §7 loop: alert → run the offline advisor on the trace.
        let rec = crate::Advisor::new(&db, "t")
            .options(crate::AdvisorOptions {
                k: Some(1),
                window_len: 30,
                max_structures_per_config: Some(1),
                ..Default::default()
            })
            .recommend(&alert.recent_trace)
            .unwrap();
        let specs = rec.specs_at(0);
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].columns, vec!["c".to_owned()]);
    }

    #[test]
    fn tripped_calibration_forces_an_alert() {
        use crate::calibrate::{
            CalibrationOptions, CalibrationTracker, PathKind, WindowCalibration,
        };
        let db = db_with(10_000, Some("a"));
        let mut alerter = Alerter::new(&db, "t", candidates(), 100, 0.5).unwrap();
        for i in 0..100 {
            alerter.observe(&SelectStmt::point("t", "a", i).into());
        }
        assert!(alerter.check(&db).unwrap().is_none(), "design holds");
        // A 10× systematic mis-costing trips the drift watchdog; the
        // degradation estimate is now untrustworthy, so check() must
        // alert even though it is still under the threshold.
        let mut tracker = CalibrationTracker::new(CalibrationOptions {
            band: 1.0,
            ewma_alpha: 1.0,
            ..Default::default()
        });
        let mut w = WindowCalibration::default();
        w.record(100, 10, PathKind::IndexSeek);
        assert!(tracker.observe_window(&w), "drift must trip");
        alerter.note_calibration(tracker.report());
        let alert = alerter
            .check(&db)
            .unwrap()
            .expect("tripped drift forces an alert");
        assert!(alert.degradation <= 0.5, "{}", alert.degradation);
        let report = alert.calibration.expect("alert carries the report");
        assert!(report.tripped);
        assert_eq!(report.alerts, 1);
    }

    #[test]
    fn constructor_validates() {
        let db = db_with(1_000, None);
        assert!(Alerter::new(&db, "t", candidates(), 0, 0.5).is_err());
        assert!(Alerter::new(&db, "t", vec![], 10, 0.5).is_err());
        assert!(Alerter::new(&db, "missing", candidates(), 10, 0.5).is_err());
        let bad = vec![IndexSpec::new("t", &["nope"])];
        assert!(Alerter::new(&db, "t", bad, 10, 0.5).is_err());
    }
}

//! Cost-model calibration: the predicted-vs-actual loop.
//!
//! Every replayed statement already carries both sides of the ledger:
//! the planner's estimate for the executed plan
//! ([`cdpd_engine::QueryResult::est_cost`]) and the logical page I/O a
//! thread-local scope measured during execution
//! ([`cdpd_engine::QueryResult::io`]). This module pairs them per
//! statement, folds the pairs into per-window summaries, and watches
//! the *drift* — a smoothed signed relative error — against a
//! configurable band, raising a watchdog [`cdpd_obs::event!`] (and an
//! alerter input, see [`crate::Alerter::note_calibration`]) when the
//! model can no longer be trusted.
//!
//! Two comparison modes ([`CalibrationMode`]):
//!
//! * [`MeasuredIo`](CalibrationMode::MeasuredIo) — predicted is the
//!   planner's model estimate, actual is the measured page I/O. This is
//!   the *deployment* signal: it captures selectivity noise, histogram
//!   staleness, and genuine model error, so the drift band must leave
//!   room for honest estimation slack.
//! * [`ModelAccount`](CalibrationMode::ModelAccount) — predicted is a
//!   what-if oracle backed by the **live** materialized index shapes
//!   ([`cdpd_engine::WhatIfEngine::snapshot_live`]), actual is the
//!   executor's own model account (`est_cost`). Both sides read the
//!   same statistics and the same shapes, so they must agree *exactly*;
//!   any daylight is a real divergence between the advisor's oracle and
//!   the executor's planner. This mode is the reconciliation harness
//!   behind `tests/calibration.rs`.
//!
//! Fault injection: [`CalibrationOptions::index_cost_scale`] multiplies
//! the predicted cost of index-backed plans, simulating a mis-costed
//! index model. The drift watchdog must catch it — that is the
//! end-to-end test that the loop actually closes.

use cdpd_engine::{Database, QueryResult, WhatIfEngine};
use cdpd_sql::Dml;
use cdpd_types::Result;

/// Access path of an executed plan, parsed from its one-line
/// description ([`cdpd_engine::QueryResult::plan`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathKind {
    /// Full heap scan.
    SeqScan,
    /// B-tree point lookup (possibly covering).
    IndexSeek,
    /// B-tree range scan.
    IndexRange,
    /// Index-only scan over a covering index.
    IndexOnlyScan,
    /// MIN/MAX answered by an index edge descent.
    IndexExtremum,
    /// Rowid intersection of equality probes on distinct indexes.
    IndexAnd,
    /// Rowid union of equality probes (IN lists / OR disjunctions).
    IndexOr,
    /// `UPDATE`/`DELETE` (find phase plus index maintenance).
    Write,
    /// Anything this parser does not recognize.
    Other,
}

impl PathKind {
    /// Every variant, in the order reports enumerate them.
    pub const ALL: [PathKind; 9] = [
        PathKind::SeqScan,
        PathKind::IndexSeek,
        PathKind::IndexRange,
        PathKind::IndexOnlyScan,
        PathKind::IndexExtremum,
        PathKind::IndexAnd,
        PathKind::IndexOr,
        PathKind::Write,
        PathKind::Other,
    ];

    /// Classify a plan description by its prefix.
    pub fn of_plan(plan: &str) -> PathKind {
        if plan.starts_with("SeqScan") {
            PathKind::SeqScan
        } else if plan.starts_with("IndexSeek") {
            PathKind::IndexSeek
        } else if plan.starts_with("IndexRange") {
            PathKind::IndexRange
        } else if plan.starts_with("IndexOnlyScan") {
            PathKind::IndexOnlyScan
        } else if plan.starts_with("IndexExtremum") {
            PathKind::IndexExtremum
        } else if plan.starts_with("IndexAnd") {
            PathKind::IndexAnd
        } else if plan.starts_with("IndexOr") {
            PathKind::IndexOr
        } else if plan.starts_with("Update via") || plan.starts_with("Delete via") {
            PathKind::Write
        } else {
            PathKind::Other
        }
    }

    /// Stable snake_case label used in metric names and JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            PathKind::SeqScan => "seq_scan",
            PathKind::IndexSeek => "index_seek",
            PathKind::IndexRange => "index_range",
            PathKind::IndexOnlyScan => "index_only_scan",
            PathKind::IndexExtremum => "index_extremum",
            PathKind::IndexAnd => "index_and",
            PathKind::IndexOr => "index_or",
            PathKind::Write => "write",
            PathKind::Other => "other",
        }
    }

    fn slot(self) -> usize {
        match self {
            PathKind::SeqScan => 0,
            PathKind::IndexSeek => 1,
            PathKind::IndexRange => 2,
            PathKind::IndexOnlyScan => 3,
            PathKind::IndexExtremum => 4,
            PathKind::IndexAnd => 5,
            PathKind::IndexOr => 6,
            PathKind::Write => 7,
            PathKind::Other => 8,
        }
    }
}

/// Which quantities a calibration pass compares. See the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CalibrationMode {
    /// Planner estimate vs measured page I/O (the deployment signal).
    #[default]
    MeasuredIo,
    /// Live-shape what-if prediction vs the executor's model account
    /// (exact by construction; used for reconciliation tests).
    ModelAccount,
}

/// Tuning knobs for a calibration pass.
#[derive(Clone, Debug)]
pub struct CalibrationOptions {
    /// What to compare.
    pub mode: CalibrationMode,
    /// Watchdog band: trip when `|drift| > band`. Drift is a smoothed
    /// signed relative error, so `2.0` means "predictions are 3× off".
    /// The default leaves room for honest estimation slack in
    /// [`CalibrationMode::MeasuredIo`] (the engine's estimates track
    /// measurements within ~2.5×) while still catching a genuinely
    /// broken model.
    pub band: f64,
    /// Smoothing factor for the per-window drift EWMA, in `(0, 1]`.
    /// `1.0` means the latest window alone is the drift.
    pub ewma_alpha: f64,
    /// Fault injection: multiply the *predicted* cost of index-backed
    /// plans by this factor. `1.0` is off. Lets tests (and operators
    /// staging a rollout) prove the watchdog actually fires.
    pub index_cost_scale: f64,
}

impl Default for CalibrationOptions {
    fn default() -> CalibrationOptions {
        CalibrationOptions {
            mode: CalibrationMode::MeasuredIo,
            band: 2.0,
            ewma_alpha: 0.25,
            index_cost_scale: 1.0,
        }
    }
}

/// Per-path slice of a calibration summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathCalibration {
    /// Statements executed through this access path.
    pub samples: u64,
    /// Summed predicted page I/Os.
    pub predicted_ios: u64,
    /// Summed actual page I/Os.
    pub actual_ios: u64,
}

/// Predicted-vs-actual accumulator over one replay window.
///
/// [`record`](WindowCalibration::record) also mirrors every pair into
/// the global metrics registry under `calibration.*`: sample and I/O
/// counters, over/under/exact tallies, an absolute-error histogram, and
/// a per-access-path breakdown.
#[derive(Clone, Debug, Default)]
pub struct WindowCalibration {
    /// Statements paired.
    pub samples: u64,
    /// Summed predicted page I/Os.
    pub predicted_ios: u64,
    /// Summed actual page I/Os.
    pub actual_ios: u64,
    /// Summed `|predicted − actual|` page I/Os.
    pub abs_err_ios: u64,
    /// Statements whose prediction exceeded the actual.
    pub overestimates: u64,
    /// Statements whose prediction fell short of the actual.
    pub underestimates: u64,
    /// Statements predicted exactly.
    pub exact: u64,
    per_path: [PathCalibration; PathKind::ALL.len()],
}

impl WindowCalibration {
    /// Fold one predicted-vs-actual pair in and emit the
    /// `calibration.*` metrics for it.
    pub fn record(&mut self, predicted_ios: u64, actual_ios: u64, path: PathKind) {
        self.samples += 1;
        self.predicted_ios += predicted_ios;
        self.actual_ios += actual_ios;
        let abs_err = predicted_ios.abs_diff(actual_ios);
        self.abs_err_ios += abs_err;
        cdpd_obs::counter!("calibration.samples").inc();
        cdpd_obs::counter!("calibration.predicted_ios").add(predicted_ios);
        cdpd_obs::counter!("calibration.actual_ios").add(actual_ios);
        cdpd_obs::histogram!("calibration.abs_err_ios").record(abs_err);
        match predicted_ios.cmp(&actual_ios) {
            std::cmp::Ordering::Greater => {
                self.overestimates += 1;
                cdpd_obs::counter!("calibration.overestimates").inc();
            }
            std::cmp::Ordering::Less => {
                self.underestimates += 1;
                cdpd_obs::counter!("calibration.underestimates").inc();
            }
            std::cmp::Ordering::Equal => {
                self.exact += 1;
                cdpd_obs::counter!("calibration.exact").inc();
            }
        }
        let slot = &mut self.per_path[path.slot()];
        slot.samples += 1;
        slot.predicted_ios += predicted_ios;
        slot.actual_ios += actual_ios;
        match path {
            PathKind::SeqScan => cdpd_obs::counter!("calibration.path.seq_scan").inc(),
            PathKind::IndexSeek => cdpd_obs::counter!("calibration.path.index_seek").inc(),
            PathKind::IndexRange => cdpd_obs::counter!("calibration.path.index_range").inc(),
            PathKind::IndexOnlyScan => cdpd_obs::counter!("calibration.path.index_only_scan").inc(),
            PathKind::IndexExtremum => cdpd_obs::counter!("calibration.path.index_extremum").inc(),
            PathKind::IndexAnd => cdpd_obs::counter!("calibration.path.index_and").inc(),
            PathKind::IndexOr => cdpd_obs::counter!("calibration.path.index_or").inc(),
            PathKind::Write => cdpd_obs::counter!("calibration.path.write").inc(),
            PathKind::Other => cdpd_obs::counter!("calibration.path.other").inc(),
        }
    }

    /// Signed relative error of the window:
    /// `(predicted − actual) / max(actual, 1)`.
    pub fn signed_error(&self) -> f64 {
        let denom = self.actual_ios.max(1) as f64;
        (self.predicted_ios as f64 - self.actual_ios as f64) / denom
    }

    /// The per-path breakdown, ordered like [`PathKind::ALL`].
    pub fn by_path(&self) -> impl Iterator<Item = (PathKind, &PathCalibration)> {
        PathKind::ALL.iter().map(|&p| (p, &self.per_path[p.slot()]))
    }

    fn merge(&mut self, other: &WindowCalibration) {
        self.samples += other.samples;
        self.predicted_ios += other.predicted_ios;
        self.actual_ios += other.actual_ios;
        self.abs_err_ios += other.abs_err_ios;
        self.overestimates += other.overestimates;
        self.underestimates += other.underestimates;
        self.exact += other.exact;
        for (mine, theirs) in self.per_path.iter_mut().zip(other.per_path.iter()) {
            mine.samples += theirs.samples;
            mine.predicted_ios += theirs.predicted_ios;
            mine.actual_ios += theirs.actual_ios;
        }
    }
}

/// Folds per-window [`WindowCalibration`]s into a session-level drift
/// score and trips the watchdog when the drift leaves the band.
///
/// Drift is an exponentially weighted moving average of the per-window
/// signed relative error, so one noisy window moves it by
/// `ewma_alpha × error` while a *systematic* mis-costing walks it out
/// of the band within a few windows. The watchdog is edge-triggered:
/// the `event!` fires on the window that *enters* the breach, not on
/// every window spent inside it.
#[derive(Clone, Debug)]
pub struct CalibrationTracker {
    options: CalibrationOptions,
    totals: WindowCalibration,
    windows: u64,
    drift: f64,
    alerts: u64,
    in_breach: bool,
}

impl CalibrationTracker {
    /// A tracker with the given knobs and no observations.
    pub fn new(options: CalibrationOptions) -> CalibrationTracker {
        CalibrationTracker {
            options,
            totals: WindowCalibration::default(),
            windows: 0,
            drift: 0.0,
            alerts: 0,
            in_breach: false,
        }
    }

    /// Fold one window in. Returns `true` while the drift is outside
    /// the band (the watchdog `event!` fires only on entry). Windows
    /// with no paired statements are ignored.
    pub fn observe_window(&mut self, window: &WindowCalibration) -> bool {
        if window.samples == 0 {
            return self.in_breach;
        }
        let err = window.signed_error();
        self.drift = if self.windows == 0 {
            err
        } else {
            self.options.ewma_alpha * err + (1.0 - self.options.ewma_alpha) * self.drift
        };
        self.windows += 1;
        self.totals.merge(window);
        cdpd_obs::counter!("calibration.windows").inc();
        cdpd_obs::gauge!("calibration.drift_millis").set((self.drift * 1000.0) as i64);
        let breached = self.drift.abs() > self.options.band;
        if breached && !self.in_breach {
            self.alerts += 1;
            cdpd_obs::counter!("calibration.watchdog_trips").inc();
            cdpd_obs::event!(
                "calibration watchdog: drift {:.3} left band ±{:.3} \
                 (window error {:.3}, {} samples)",
                self.drift,
                self.options.band,
                err,
                window.samples
            );
        }
        self.in_breach = breached;
        breached
    }

    /// Windows observed (empty windows excluded).
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// The current drift score.
    pub fn drift(&self) -> f64 {
        self.drift
    }

    /// The knobs this tracker runs under.
    pub fn options(&self) -> &CalibrationOptions {
        &self.options
    }

    /// Snapshot the tracker into a report.
    pub fn report(&self) -> CalibrationReport {
        CalibrationReport {
            mode: self.options.mode,
            windows: self.windows,
            samples: self.totals.samples,
            predicted_ios: self.totals.predicted_ios,
            actual_ios: self.totals.actual_ios,
            abs_err_ios: self.totals.abs_err_ios,
            overestimates: self.totals.overestimates,
            underestimates: self.totals.underestimates,
            exact: self.totals.exact,
            signed_error: self.totals.signed_error(),
            drift: self.drift,
            band: self.options.band,
            alerts: self.alerts,
            tripped: self.in_breach,
            by_path: self
                .totals
                .by_path()
                .filter(|(_, s)| s.samples > 0)
                .map(|(p, s)| (p, *s))
                .collect(),
        }
    }
}

/// Session-level calibration summary, surfaced on
/// [`crate::replay::ReplayReport`], [`crate::OnlineDecision`], and
/// [`crate::Recommendation`].
#[derive(Clone, Debug)]
pub struct CalibrationReport {
    /// What was compared.
    pub mode: CalibrationMode,
    /// Non-empty windows folded in.
    pub windows: u64,
    /// Statements paired.
    pub samples: u64,
    /// Summed predicted page I/Os.
    pub predicted_ios: u64,
    /// Summed actual page I/Os.
    pub actual_ios: u64,
    /// Summed absolute error in page I/Os.
    pub abs_err_ios: u64,
    /// Statements over-predicted.
    pub overestimates: u64,
    /// Statements under-predicted.
    pub underestimates: u64,
    /// Statements predicted exactly.
    pub exact: u64,
    /// Overall signed relative error.
    pub signed_error: f64,
    /// The drift score (EWMA of per-window signed error).
    pub drift: f64,
    /// The watchdog band the tracker ran under.
    pub band: f64,
    /// Watchdog trips (entries into breach).
    pub alerts: u64,
    /// Whether the drift is outside the band right now.
    pub tripped: bool,
    /// Per-access-path breakdown (paths with at least one sample).
    pub by_path: Vec<(PathKind, PathCalibration)>,
}

impl CalibrationReport {
    /// True when every single prediction matched its actual exactly —
    /// the reconciliation invariant of
    /// [`CalibrationMode::ModelAccount`].
    pub fn is_exact(&self) -> bool {
        self.samples > 0 && self.exact == self.samples
    }

    /// Render the report as a JSON object (stable key order; finite
    /// floats — NaN/∞ are clamped to `0.0` so the output always
    /// parses).
    pub fn to_json(&self) -> String {
        fn f(v: f64) -> f64 {
            if v.is_finite() {
                v
            } else {
                0.0
            }
        }
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"mode\":\"{}\",",
            match self.mode {
                CalibrationMode::MeasuredIo => "measured_io",
                CalibrationMode::ModelAccount => "model_account",
            }
        ));
        out.push_str(&format!("\"windows\":{},", self.windows));
        out.push_str(&format!("\"samples\":{},", self.samples));
        out.push_str(&format!("\"predicted_ios\":{},", self.predicted_ios));
        out.push_str(&format!("\"actual_ios\":{},", self.actual_ios));
        out.push_str(&format!("\"abs_err_ios\":{},", self.abs_err_ios));
        out.push_str(&format!("\"overestimates\":{},", self.overestimates));
        out.push_str(&format!("\"underestimates\":{},", self.underestimates));
        out.push_str(&format!("\"exact\":{},", self.exact));
        out.push_str(&format!("\"signed_error\":{:.6},", f(self.signed_error)));
        out.push_str(&format!("\"drift\":{:.6},", f(self.drift)));
        out.push_str(&format!("\"band\":{:.6},", f(self.band)));
        out.push_str(&format!("\"alerts\":{},", self.alerts));
        out.push_str(&format!("\"tripped\":{},", self.tripped));
        out.push_str("\"by_path\":[");
        for (i, (path, s)) in self.by_path.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":\"{}\",\"samples\":{},\"predicted_ios\":{},\"actual_ios\":{}}}",
                path.label(),
                s.samples,
                s.predicted_ios,
                s.actual_ios
            ));
        }
        out.push_str("]}");
        out
    }
}

/// True when the executed plan went through an index (including the
/// find phase of a write) — the surface
/// [`CalibrationOptions::index_cost_scale`] injects into.
fn index_backed(plan: &str) -> bool {
    plan.contains("Index")
}

/// Apply the fault-injection scale to a predicted cost.
fn inject(options: &CalibrationOptions, plan: &str, predicted_ios: u64) -> u64 {
    if options.index_cost_scale != 1.0 && index_backed(plan) {
        (predicted_ios as f64 * options.index_cost_scale) as u64
    } else {
        predicted_ios
    }
}

/// Pair one executed statement's result with its prediction and fold
/// it into `window`. `oracle_prediction` carries the
/// [`CalibrationMode::ModelAccount`] prediction in page I/Os (ignored
/// under [`CalibrationMode::MeasuredIo`]).
pub(crate) fn record_result(
    options: &CalibrationOptions,
    window: &mut WindowCalibration,
    r: &QueryResult,
    oracle_prediction: Option<u64>,
) {
    let path = PathKind::of_plan(&r.plan);
    let (predicted, actual) = match options.mode {
        CalibrationMode::MeasuredIo => (r.est_cost.ios(), r.io.total()),
        CalibrationMode::ModelAccount => (
            oracle_prediction.expect("ModelAccount requires a prediction"),
            r.est_cost.ios(),
        ),
    };
    window.record(inject(options, &r.plan, predicted), actual, path);
}

/// [`CalibrationMode::ModelAccount`] predictions for a batch of
/// statements, from a what-if oracle backed by the live materialized
/// shapes. `None` under [`CalibrationMode::MeasuredIo`] (the
/// prediction is free there — the executor reports it).
///
/// Callers must invoke this against the database state the statements
/// will execute on: reads don't move shapes, so one call per maximal
/// read run is exact, but every write needs a fresh call (its index
/// maintenance may split or merge pages).
pub(crate) fn predict(
    options: &CalibrationOptions,
    db: &Database,
    table: &str,
    stmts: &[Dml],
) -> Result<Option<Vec<u64>>> {
    if options.mode != CalibrationMode::ModelAccount {
        return Ok(None);
    }
    let whatif = WhatIfEngine::snapshot_live(db, table)?;
    let config = db.index_specs(table)?;
    let mut out = Vec::with_capacity(stmts.len());
    for stmt in stmts {
        out.push(whatif.dml_cost(stmt, &config)?.ios());
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_kinds_parse_plan_prefixes() {
        let cases = [
            ("SeqScan cost=12.0", PathKind::SeqScan),
            ("IndexSeek(t_a, covering) cost=3.0", PathKind::IndexSeek),
            ("IndexRange(t_a) cost=5.0", PathKind::IndexRange),
            ("IndexOnlyScan(t_a_b) cost=2.0", PathKind::IndexOnlyScan),
            ("IndexExtremum(t_a, min) cost=3.0", PathKind::IndexExtremum),
            ("IndexAnd(t_a, t_b, 2 probes) cost=7.0", PathKind::IndexAnd),
            ("IndexOr(t_a, 3 probes) cost=11.0", PathKind::IndexOr),
            ("IndexOr(t_a, 1 probe) cost=4.0", PathKind::IndexOr),
            (
                "Update via IndexSeek(t_a) maintaining 2 index(es), cost=9.0",
                PathKind::Write,
            ),
            ("Delete via SeqScan, cost=40.0", PathKind::Write),
            ("something new", PathKind::Other),
        ];
        for (plan, want) in cases {
            assert_eq!(PathKind::of_plan(plan), want, "{plan}");
        }
        assert_eq!(PathKind::ALL.len(), 9);
    }

    /// Satellite guarantee: every string [`Plan::describe`] can emit —
    /// produced here by *executing* one statement per access path
    /// against a live database — maps to a non-`Other` kind.
    #[test]
    fn every_live_plan_describe_string_round_trips() {
        use cdpd_types::Value;
        let db = Database::new();
        let schema = cdpd_types::Schema::new(vec![
            cdpd_types::ColumnDef::int("a"),
            cdpd_types::ColumnDef::int("b"),
            cdpd_types::ColumnDef::int("c"),
        ]);
        db.create_table("t", schema).unwrap();
        // a/b are 50-valued (each Eq matches ~80 rows → the a=..AND b=..
        // conjunction favours a rowid intersection); c is unique (IN/OR
        // probes on c match single rows → the union path wins).
        for i in 0..4000i64 {
            db.insert(
                "t",
                &[Value::Int(i % 50), Value::Int((i * 7) % 50), Value::Int(i)],
            )
            .unwrap();
        }
        db.analyze("t").unwrap();
        for col in ["a", "b", "c"] {
            db.create_index(&cdpd_engine::IndexSpec::new("t", &[col]))
                .unwrap();
        }
        let sqls = [
            "SELECT a FROM t",
            "SELECT a FROM t WHERE a = 5",
            "SELECT a FROM t WHERE a BETWEEN 3 AND 6",
            "SELECT MIN(a) FROM t",
            "SELECT * FROM t WHERE a = 5 AND b = 7",
            "SELECT * FROM t WHERE c IN (1, 2, 3)",
            "SELECT * FROM t WHERE (c = 1 OR c = 4000)",
            "UPDATE t SET b = 9 WHERE a = 5",
            "DELETE FROM t WHERE c IN (1, 2)",
        ];
        let mut seen = std::collections::BTreeSet::new();
        for sql in sqls {
            let stmt = match cdpd_sql::parse(sql).unwrap() {
                cdpd_sql::Statement::Select(s) => Dml::Select(s),
                cdpd_sql::Statement::Update(u) => Dml::Update(u),
                cdpd_sql::Statement::Delete(d) => Dml::Delete(d),
                _ => unreachable!(),
            };
            let plan = db.execute_dml(&stmt).unwrap().plan;
            let kind = PathKind::of_plan(&plan);
            assert_ne!(kind, PathKind::Other, "{sql} -> {plan}");
            seen.insert(kind.label());
        }
        // The sample must actually exercise the two new paths.
        assert!(seen.contains("index_and"), "{seen:?}");
        assert!(seen.contains("index_or"), "{seen:?}");
    }

    #[test]
    fn window_accumulates_and_signs_errors() {
        let mut w = WindowCalibration::default();
        w.record(10, 10, PathKind::IndexSeek); // exact
        w.record(20, 10, PathKind::SeqScan); // over by 10
        w.record(5, 10, PathKind::Write); // under by 5
        assert_eq!(w.samples, 3);
        assert_eq!(w.predicted_ios, 35);
        assert_eq!(w.actual_ios, 30);
        assert_eq!(w.abs_err_ios, 15);
        assert_eq!(w.overestimates, 1);
        assert_eq!(w.underestimates, 1);
        assert_eq!(w.exact, 1);
        let err = w.signed_error();
        assert!((err - 5.0 / 30.0).abs() < 1e-12, "{err}");
        let seek = w
            .by_path()
            .find(|(p, _)| *p == PathKind::IndexSeek)
            .unwrap()
            .1;
        assert_eq!(
            *seek,
            PathCalibration {
                samples: 1,
                predicted_ios: 10,
                actual_ios: 10
            }
        );
    }

    #[test]
    fn tracker_trips_on_systematic_drift_and_recovers() {
        let mut t = CalibrationTracker::new(CalibrationOptions {
            band: 1.0,
            ewma_alpha: 0.5,
            ..Default::default()
        });
        let mut honest = WindowCalibration::default();
        honest.record(10, 10, PathKind::IndexSeek);
        assert!(!t.observe_window(&honest), "exact window stays in band");
        assert_eq!(t.drift(), 0.0);

        // A 5× systematic overestimate walks the EWMA out of the band.
        let mut skewed = WindowCalibration::default();
        skewed.record(50, 10, PathKind::IndexSeek);
        let mut tripped = false;
        for _ in 0..6 {
            tripped = t.observe_window(&skewed);
        }
        assert!(tripped, "drift {} must leave band 1.0", t.drift());
        let r = t.report();
        assert_eq!(r.alerts, 1, "edge-triggered: one entry, one alert");
        assert!(r.tripped);
        assert!(!r.is_exact());

        // Honest windows pull the drift back inside.
        for _ in 0..8 {
            tripped = t.observe_window(&honest);
        }
        assert!(!tripped, "drift {} must decay back", t.drift());
        assert!(!t.report().tripped);
        assert_eq!(t.report().alerts, 1);
    }

    #[test]
    fn empty_windows_are_ignored() {
        let mut t = CalibrationTracker::new(CalibrationOptions::default());
        assert!(!t.observe_window(&WindowCalibration::default()));
        assert_eq!(t.windows(), 0);
        assert_eq!(t.drift(), 0.0);
        let r = t.report();
        assert_eq!(r.samples, 0);
        assert!(!r.is_exact(), "no samples is not exact");
    }

    #[test]
    fn report_json_is_well_formed() {
        let mut t = CalibrationTracker::new(CalibrationOptions::default());
        let mut w = WindowCalibration::default();
        w.record(12, 10, PathKind::SeqScan);
        w.record(3, 3, PathKind::IndexSeek);
        t.observe_window(&w);
        let json = t.report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"mode\":\"measured_io\"",
            "\"windows\":1",
            "\"samples\":2",
            "\"predicted_ios\":15",
            "\"actual_ios\":13",
            "\"abs_err_ios\":2",
            "\"exact\":1",
            "\"tripped\":false",
            "\"by_path\":[{\"path\":\"seq_scan\"",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
    }

    #[test]
    fn injection_scales_only_index_backed_plans() {
        let opts = CalibrationOptions {
            index_cost_scale: 4.0,
            ..Default::default()
        };
        assert_eq!(inject(&opts, "IndexSeek(t_a) cost=3.0", 10), 40);
        assert_eq!(
            inject(
                &opts,
                "Update via IndexSeek(t_a) maintaining 1 index(es)",
                10
            ),
            40
        );
        assert_eq!(inject(&opts, "SeqScan cost=12.0", 10), 10);
        let off = CalibrationOptions::default();
        assert_eq!(inject(&off, "IndexSeek(t_a) cost=3.0", 10), 10);
    }
}

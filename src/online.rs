//! The online advisory pipeline: statements in, design decisions out.
//!
//! [`crate::Advisor`] is the paper's **off-line** optimizer — full
//! trace in, schedule out, everything rebuilt from scratch per call.
//! [`OnlineAdvisor`] is the same optimizer run as a *session*: it
//! consumes one statement at a time, maintains the sliding window
//! ([`cdpd_workload::StatementStream`]), watches for workload shifts
//! ([`cdpd_workload::OnlineShiftDetector`]), extends its cost oracle by
//! one stage per sealed window ([`EngineOracle::append_block`] under a
//! warm [`ProjectedOracle`] memo), and re-solves with the committed
//! prefix pinned ([`cdpd_core::kaware::solve_with_prefix`]) under a
//! rolling change budget `k` — so each boundary costs suffix work, not
//! an O(n) cold solve.
//!
//! The §7 *design alerter* is folded into the same loop: every sealed
//! window is scored for degradation (live design vs best single
//! candidate, the exact [`crate::Alerter`] check), the signal rides on
//! every [`OnlineDecision`], and [`OnlineOptions::resolve_threshold`]
//! can gate re-solving on it.
//!
//! **Batch equivalence** is the anchor invariant, proven by test
//! (`tests/online_equiv.rs`): with an unbounded window,
//! [`OnlineAdvisor::finish`] routes the streamed summary — itself
//! bit-identical to batch summarization — through the *same* pipeline
//! body as [`crate::Advisor::recommend`], so the final recommendation
//! is bit-identical to the batch one. The per-window decisions are the
//! online approximation (no hindsight past the sealed window); the
//! finish-time commit is the batch answer.

use crate::advisor::{
    recommend_for_workload, AdvisorOptions, Recommendation, ENUMERABLE_VOCABULARY,
};
use crate::calibrate::{
    CalibrationOptions, CalibrationReport, CalibrationTracker, WindowCalibration,
};
use crate::candidates::candidate_indexes;
use crate::oracle::EngineOracle;
use cdpd_core::{
    decompose, enumerate_configs, kaware, seqgraph, Config, CostOracle, Decomposition, Problem,
    ProjectedOracle,
};
use cdpd_engine::{Database, IndexSpec, StatsRefresh, WhatIfEngine};
use cdpd_sql::Dml;
use cdpd_types::{Error, Result};
use cdpd_workload::{Block, OnlineShiftDetector, StatementStream, StreamState};

/// Tuning knobs for [`OnlineAdvisor`].
#[derive(Clone, Debug)]
pub struct OnlineOptions {
    /// The batch options the session optimizes under. `window_len`
    /// sets the stream's window; `k` is the rolling change budget over
    /// the retained horizon; `structures: None` derives candidates
    /// incrementally from sealed windows. The online loop always
    /// re-solves with the exact warm-start solvers (sequence graph /
    /// k-aware graph); `algorithm` is honored by
    /// [`OnlineAdvisor::finish`], which runs the full batch pipeline.
    pub advisor: AdvisorOptions,
    /// Fold of the §7 alerter into the loop: when `Some(t)`, a sealed
    /// window triggers a re-solve only if it ran more than `t`
    /// (fractional, e.g. `0.5` = 50%) worse under the live design than
    /// under the best single candidate; `None` re-solves at every
    /// window boundary.
    pub resolve_threshold: Option<f64>,
    /// Retain at most this many sealed windows (`None` = unbounded —
    /// required for batch equivalence). Bounding the window bounds
    /// memory and solve horizon, at the price of rebuilding the oracle
    /// when old windows are evicted (stage indices shift, so the warm
    /// memo cannot be kept).
    pub max_windows: Option<usize>,
    /// Ceiling on the candidate vocabulary. Configurations are
    /// width-agnostic, so this bounds *work*, not representation: wider
    /// vocabularies mean more what-if shapes to validate and a larger
    /// active set per re-solve. Once the ceiling is reached, new
    /// derived candidates are dropped in ranked order — the per-window
    /// derivation already emits candidates best-first, so the drops are
    /// the worst-ranked ones — counted in
    /// [`OnlineAdvisor::dropped_structures`] and the
    /// `online.structures_dropped` counter. Defaults to
    /// [`DEFAULT_MAX_CANDIDATES`].
    pub max_candidates: usize,
    /// Knobs for the predicted-vs-actual calibration tracker the
    /// session folds executed windows into (drivers feed it via
    /// [`OnlineAdvisor::note_calibration`]). The drift score and any
    /// watchdog state ride on every [`OnlineDecision::calibration`].
    pub calibration: CalibrationOptions,
}

/// Default [`OnlineOptions::max_candidates`]: four times the old
/// 64-structure encoding cap the `u64`-bitmask representation imposed.
pub const DEFAULT_MAX_CANDIDATES: usize = 256;

impl Default for OnlineOptions {
    fn default() -> OnlineOptions {
        OnlineOptions {
            advisor: AdvisorOptions::default(),
            resolve_threshold: None,
            max_windows: None,
            max_candidates: DEFAULT_MAX_CANDIDATES,
            calibration: CalibrationOptions::default(),
        }
    }
}

/// One design-change decision, emitted per sealed window.
#[derive(Clone, Debug)]
pub struct OnlineDecision {
    /// Absolute index of the window whose sealing produced this
    /// decision (the first window is 0, even after eviction).
    pub window: usize,
    /// The configuration committed for that window.
    pub config: Config,
    /// `config` resolved to index specs — what a driver applies.
    pub specs: Vec<IndexSpec>,
    /// Whether `config` differs from the previously committed one.
    pub changed: bool,
    /// The alerter signal for the sealed window: live-design cost over
    /// best-single-candidate cost, minus one (`0.8` = 80% worse).
    pub degradation: f64,
    /// Whether a re-solve ran (`false` when
    /// [`OnlineOptions::resolve_threshold`] gated it off and the live
    /// design was carried forward).
    pub resolved: bool,
    /// Wall-clock nanoseconds the re-solve took (0 when not resolved).
    pub solve_nanos: u64,
    /// Changes the committed schedule has spent within the retained
    /// horizon, counted as [`cdpd_core::Schedule`] counts them.
    pub changes_used: usize,
    /// The shift detector's current suggestion for `k` (number of
    /// major shifts observed so far).
    pub suggested_k: usize,
    /// Predicted-vs-actual calibration state at this seal, when a
    /// driver has fed executed windows in
    /// ([`OnlineAdvisor::note_calibration`]); `None` in sessions that
    /// only ingest. Runtime telemetry, not decision state: it is *not*
    /// persisted by [`OnlineAdvisor::save_state`], and restored
    /// decisions carry `None`.
    pub calibration: Option<CalibrationReport>,
}

/// A streaming advisory session over one table. See the module docs
/// for the pipeline; see [`crate::replay::drive`] for a driver that
/// executes statements and applies decisions.
pub struct OnlineAdvisor {
    table: String,
    options: OnlineOptions,
    stream: StatementStream,
    detector: OnlineShiftDetector,
    /// Candidate vocabulary (bit order of every [`Config`] here).
    /// Append-only, so committed configs and memo entries stay valid
    /// as it grows.
    structures: Vec<IndexSpec>,
    /// Whether the vocabulary is derived from the stream (as opposed
    /// to fixed by [`AdvisorOptions::structures`]).
    derived: bool,
    /// Candidates dropped because the vocabulary hit
    /// [`OnlineOptions::max_candidates`].
    dropped_structures: usize,
    /// Warm cost oracle over the retained sealed windows.
    oracle: Option<ProjectedOracle<EngineOracle>>,
    /// Absolute window index of the oracle's stage 0.
    oracle_first: usize,
    /// `true` while the next seal must rebuild the oracle instead of
    /// appending (vocabulary grew or windows were evicted).
    rebuild: bool,
    /// The design live before window 0 (the table's indexes at
    /// construction).
    initial: Config,
    /// One committed configuration per sealed window, absolute index.
    committed: Vec<Config>,
    decisions: Vec<OnlineDecision>,
    resolves: usize,
    rebuilds: usize,
    /// Predicted-vs-actual drift over the windows a driver executed.
    calibration: CalibrationTracker,
}

impl OnlineAdvisor {
    /// Open a session for `table`. The table's current indexes become
    /// the initial configuration (they are `C_0`) and join the
    /// candidate vocabulary.
    pub fn new(db: &Database, table: impl Into<String>, options: OnlineOptions) -> Result<Self> {
        let table = table.into();
        let stream = StatementStream::with_capacity(
            &table,
            options.advisor.window_len,
            options.max_windows,
        )?;
        let derived = options.advisor.structures.is_none();
        let mut structures = options.advisor.structures.clone().unwrap_or_default();
        let current = db.index_specs(&table)?;
        for spec in &current {
            if !structures.contains(spec) {
                structures.push(spec.clone());
            }
        }
        if options.max_candidates == 0 {
            return Err(Error::InvalidArgument(
                "max_candidates must be positive".into(),
            ));
        }
        if structures.len() > options.max_candidates {
            return Err(Error::InvalidArgument(format!(
                "{} candidate structures exceed max_candidates = {}",
                structures.len(),
                options.max_candidates
            )));
        }
        // Validate the vocabulary eagerly, like the batch advisor.
        let whatif = WhatIfEngine::snapshot(db, &table)?;
        for spec in &structures {
            whatif.shape(spec)?;
        }
        let mut initial = Config::EMPTY;
        for spec in &current {
            let i = structures
                .iter()
                .position(|s| s == spec)
                .expect("current specs were appended to the vocabulary");
            initial = initial.with(i);
        }
        let calibration = CalibrationTracker::new(options.calibration.clone());
        Ok(OnlineAdvisor {
            table,
            options,
            stream,
            detector: OnlineShiftDetector::new(),
            structures,
            derived,
            dropped_structures: 0,
            oracle: None,
            oracle_first: 0,
            rebuild: false,
            initial,
            committed: Vec::new(),
            decisions: Vec::new(),
            resolves: 0,
            rebuilds: 0,
            calibration,
        })
    }

    /// The target table.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Statements per window (the seal cadence).
    pub fn window_len(&self) -> usize {
        self.options.advisor.window_len
    }

    /// Total statements ingested.
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// True if nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }

    /// Whether the next [`OnlineAdvisor::ingest`] will seal a window
    /// (and therefore run the seal pipeline). Drivers use this to fold
    /// pending statistics deltas in *before* the re-solve.
    pub fn next_seals(&self) -> bool {
        (self.stream.len() + 1).is_multiple_of(self.options.advisor.window_len)
    }

    /// Decisions emitted so far, one per sealed window.
    pub fn decisions(&self) -> &[OnlineDecision] {
        &self.decisions
    }

    /// The committed configuration sequence (absolute window indices).
    pub fn committed(&self) -> &[Config] {
        &self.committed
    }

    /// The design the session currently holds live: the last committed
    /// configuration, resolved to specs.
    pub fn live_specs(&self) -> Vec<IndexSpec> {
        let cfg = self.committed.last().unwrap_or(&self.initial).clone();
        cfg.structures()
            .map(|i| self.structures[i].clone())
            .collect()
    }

    /// The candidate vocabulary accumulated so far.
    pub fn structures(&self) -> &[IndexSpec] {
        &self.structures
    }

    /// Candidates discarded because the vocabulary hit
    /// [`OnlineOptions::max_candidates`].
    pub fn dropped_structures(&self) -> usize {
        self.dropped_structures
    }

    /// Warm re-solves run so far.
    pub fn resolves(&self) -> usize {
        self.resolves
    }

    /// Cold oracle rebuilds forced by vocabulary growth or eviction.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// The shift detector's current suggestion for the change budget.
    pub fn suggested_k(&self) -> usize {
        self.detector.suggested_k()
    }

    /// The session's options, as supplied at construction.
    pub fn options(&self) -> &OnlineOptions {
        &self.options
    }

    /// The predicted-vs-actual drift tracker. Empty until a driver
    /// feeds executed windows in via
    /// [`OnlineAdvisor::note_calibration`].
    pub fn calibration(&self) -> &CalibrationTracker {
        &self.calibration
    }

    /// Fold one executed window's predicted-vs-actual pairs into the
    /// session's drift tracker ([`crate::replay::drive`] calls this
    /// before the window's statements are ingested, so the seal-time
    /// decision carries the window's drift). Returns `true` while the
    /// drift is outside the configured band — the watchdog state that
    /// also rides on [`OnlineDecision::calibration`].
    pub fn note_calibration(&mut self, window: &WindowCalibration) -> bool {
        self.calibration.observe_window(window)
    }

    /// Ingest one observed statement. Returns a decision when this
    /// statement seals a window.
    ///
    /// # Errors
    /// The statement must target this session's table and validate
    /// against the schema; solver errors (e.g. an infeasible space
    /// bound) propagate.
    pub fn ingest(&mut self, db: &Database, stmt: &Dml) -> Result<Option<OnlineDecision>> {
        let evicted_before = self.stream.evicted();
        let Some(window) = self.stream.push(stmt)? else {
            return Ok(None);
        };
        self.seal_pipeline(db, window, evicted_before).map(Some)
    }

    /// Seal the open window *now*, even though it is short of the
    /// statement-count boundary — the wall-clock boundary the serving
    /// loop imposes when traffic goes quiet — and run the full
    /// seal-time pipeline (shift detection, vocabulary extension,
    /// oracle sync, decision). Returns `None` when the open window is
    /// empty: nothing observed since the last seal, nothing to decide.
    ///
    /// # Errors
    /// Same conditions as [`OnlineAdvisor::ingest`].
    pub fn seal_now(&mut self, db: &Database) -> Result<Option<OnlineDecision>> {
        let evicted_before = self.stream.evicted();
        let Some(window) = self.stream.force_seal() else {
            return Ok(None);
        };
        self.seal_pipeline(db, window, evicted_before).map(Some)
    }

    /// Everything that happens when window `window` seals: observe the
    /// profile, extend the vocabulary, sync the oracle, decide. Shared
    /// by the statement-count path ([`OnlineAdvisor::ingest`]) and the
    /// wall-clock path ([`OnlineAdvisor::seal_now`]).
    fn seal_pipeline(
        &mut self,
        db: &Database,
        window: usize,
        evicted_before: usize,
    ) -> Result<OnlineDecision> {
        let _span = cdpd_obs::span!("online.seal", window = window);
        if self.stream.evicted() != evicted_before {
            // Stage indices shifted under the oracle: memo unusable.
            self.rebuild = true;
        }
        let (block, profile) = self
            .stream
            .last_sealed()
            .map(|(b, p)| (b.clone(), p.clone()))
            .expect("caller just sealed this window");
        self.detector.observe(&profile);
        if self.derived {
            self.extend_vocabulary(db, &block)?;
        }
        self.sync_oracle(db, &block)?;
        let decision = self.decide(window)?;
        self.decisions.push(decision.clone());
        Ok(decision)
    }

    /// Ingest a batch, returning every decision made along the way.
    ///
    /// # Errors
    /// Same conditions as [`OnlineAdvisor::ingest`]; ingestion stops at
    /// the first failure.
    pub fn ingest_all<'a>(
        &mut self,
        db: &Database,
        stmts: impl IntoIterator<Item = &'a Dml>,
    ) -> Result<Vec<OnlineDecision>> {
        let mut out = Vec::new();
        for stmt in stmts {
            if let Some(d) = self.ingest(db, stmt)? {
                out.push(d);
            }
        }
        Ok(out)
    }

    /// Fold a statistics refresh (from
    /// [`Database::refresh_stats`](cdpd_engine::Database::refresh_stats))
    /// into the warm oracle: swap in a fresh what-if snapshot and evict
    /// exactly the memo entries the delta can have moved — every part
    /// when row counts changed, only parts predicating on the changed
    /// columns otherwise. Returns the number of evicted memo entries.
    ///
    /// The part decomposition and relevance masks survive (they depend
    /// on statement shapes and structure columns, not statistics), so
    /// this is the "invalidate only the affected masks" half of the
    /// delta-stats story.
    pub fn note_stats_refresh(&mut self, db: &Database, refresh: &StatsRefresh) -> Result<usize> {
        if refresh.is_noop() {
            return Ok(0);
        }
        let Some(oracle) = self.oracle.as_mut() else {
            return Ok(0); // next build snapshots fresh stats anyway
        };
        oracle
            .inner_mut()
            .refresh_whatif(WhatIfEngine::snapshot(db, &self.table)?)?;
        let oracle = self.oracle.as_ref().expect("just updated");
        let evicted = if refresh.rows_changed {
            // Row-count changes move every selectivity and page count.
            oracle.invalidate_sizes();
            oracle.retain_parts(|_, _| false)
        } else {
            let schema = db.schema(&self.table)?;
            let changed: Vec<String> = refresh
                .changed_columns
                .iter()
                .filter_map(|&id| schema.column(id).map(|c| c.name.clone()))
                .collect();
            oracle
                .retain_parts(|stage, part| !oracle.inner().part_references(stage, part, &changed))
        };
        cdpd_obs::counter!("online.stats_refreshes").inc();
        Ok(evicted)
    }

    /// Final-stage commit: run the *batch* pipeline (the exact body of
    /// [`crate::Advisor::recommend`]) over everything the stream
    /// retains, including the open partial window. With an unbounded
    /// window this is bit-identical to the batch recommendation for the
    /// full trace; with a bounded window it covers the retained suffix.
    ///
    /// # Errors
    /// At least one statement must have been ingested; batch pipeline
    /// errors propagate.
    pub fn finish(&self, db: &Database) -> Result<Recommendation> {
        if self.stream.is_empty() {
            return Err(Error::InvalidArgument(
                "no statements ingested; nothing to recommend".into(),
            ));
        }
        let mut rec = recommend_for_workload(
            db,
            &self.table,
            &self.options.advisor,
            &self.stream.summarized(),
        )?;
        if self.calibration.windows() > 0 {
            rec.calibration = Some(self.calibration.report());
        }
        Ok(rec)
    }

    /// Grow the vocabulary with candidates motivated by the sealed
    /// block, keeping existing bit positions stable.
    fn extend_vocabulary(&mut self, db: &Database, block: &Block) -> Result<()> {
        let one = cdpd_workload::SummarizedWorkload {
            table: self.table.clone(),
            blocks: vec![block.clone()],
        };
        let schema = db.schema(&self.table)?;
        let (fresh, _) = candidate_indexes(&schema, &one)?;
        let mut dropped_now = 0;
        for spec in fresh {
            if self.structures.contains(&spec) {
                continue;
            }
            if self.structures.len() == self.options.max_candidates {
                dropped_now += 1;
                continue;
            }
            self.structures.push(spec);
            self.rebuild = true;
        }
        if dropped_now > 0 {
            self.dropped_structures += dropped_now;
            cdpd_obs::counter!("online.structures_dropped").add(dropped_now as u64);
            cdpd_obs::event!(
                "online advisor: vocabulary at max_candidates = {}; \
                 dropped {dropped_now} ranked-worst candidates ({} total)",
                self.options.max_candidates,
                self.dropped_structures
            );
        }
        Ok(())
    }

    /// Bring the oracle up to date with the just-sealed window: append
    /// the block to the warm oracle when possible, rebuild cold when
    /// the vocabulary grew or windows were evicted.
    fn sync_oracle(&mut self, db: &Database, block: &Block) -> Result<()> {
        if !self.rebuild {
            if let Some(oracle) = self.oracle.as_mut() {
                oracle.inner_mut().append_block(block)?;
                return Ok(());
            }
        }
        let _span = cdpd_obs::span!("online.rebuild", windows = self.stream.windows_sealed());
        // Right after a seal the open window is empty, so summarized()
        // is exactly the retained sealed blocks.
        let workload = self.stream.summarized();
        let engine = EngineOracle::new(
            WhatIfEngine::snapshot(db, &self.table)?,
            self.structures.clone(),
            &workload,
        )?;
        self.oracle = Some(engine.into_shared());
        self.oracle_first = self.stream.evicted();
        self.rebuild = false;
        self.rebuilds += 1;
        cdpd_obs::counter!("online.rebuilds").inc();
        Ok(())
    }

    /// The alerter check + (possibly gated) warm re-solve for the
    /// just-sealed window, committing its configuration.
    fn decide(&mut self, window: usize) -> Result<OnlineDecision> {
        let oracle = self.oracle.as_ref().expect("sync_oracle ran");
        let stage = oracle.n_stages() - 1;
        let live = self.committed.last().unwrap_or(&self.initial).clone();

        // Folded alerter: live design vs best single candidate on the
        // sealed window (detection, not optimization — see Alerter).
        let live_cost = oracle.exec(stage, &live);
        let mut best = oracle.exec(stage, &Config::EMPTY);
        for i in 0..self.structures.len() {
            best = best.min(oracle.exec(stage, &Config::single(i)));
        }
        let degradation = if best.raw() == 0 {
            0.0
        } else {
            live_cost.raw() as f64 / best.raw() as f64 - 1.0
        };
        let tripped = match self.options.resolve_threshold {
            None => true,
            // Always solve the first window: there is no committed
            // design yet to carry forward.
            Some(t) => degradation > t || self.committed.is_empty(),
        };
        if tripped && self.options.resolve_threshold.is_some() {
            cdpd_obs::counter!("online.alerts").inc();
        }

        let horizon = self.problem_over_horizon();
        let prefix: Vec<Config> = self.committed[self.oracle_first..].to_vec();
        let (config, solve_nanos) = if tripped {
            let started = std::time::Instant::now();
            let config = self.resolve_suffix(oracle, &horizon, &prefix)?;
            let nanos = started.elapsed().as_nanos() as u64;
            cdpd_obs::histogram!("online.resolve_ns").record(nanos);
            cdpd_obs::counter!("online.resolves").inc();
            self.resolves += 1;
            (config, nanos)
        } else {
            (live.clone(), 0)
        };
        self.committed.push(config.clone());

        // Changes spent within the horizon, counted like Schedule does.
        let mut changes_used = 0;
        let mut prev = &horizon.initial;
        for (s, cfg) in self.committed[self.oracle_first..].iter().enumerate() {
            if cfg != prev && (s > 0 || horizon.count_initial_change) {
                changes_used += 1;
            }
            prev = cfg;
        }

        Ok(OnlineDecision {
            window,
            specs: config
                .structures()
                .map(|i| self.structures[i].clone())
                .collect(),
            changed: config != live,
            config,
            degradation,
            resolved: tripped,
            solve_nanos,
            changes_used,
            suggested_k: self.detector.suggested_k(),
            calibration: (self.calibration.windows() > 0).then(|| self.calibration.report()),
        })
    }

    /// The warm suffix re-solve: derive candidates over the retained
    /// horizon and solve with the committed prefix pinned, returning
    /// the configuration for the just-sealed window.
    ///
    /// Narrow vocabularies take the seed path — full enumeration over
    /// the warm memoized oracle, byte-for-byte the old behavior. Wider
    /// ones rename through the CoPhy decomposition first: the committed
    /// prefix is pinned into the active set (localization is lossless
    /// on it), candidates are derived in local coordinates, and the
    /// chosen configuration is mapped back. Committed configurations
    /// always stay in *global* coordinates — the decomposition is
    /// per-re-solve, so local indexes never escape this function.
    fn resolve_suffix(
        &self,
        oracle: &ProjectedOracle<EngineOracle>,
        horizon: &Problem,
        prefix: &[Config],
    ) -> Result<Config> {
        let space = self.options.advisor.space_bound_pages;
        let max_per_config = self.options.advisor.max_structures_per_config;
        if self.structures.len() <= ENUMERABLE_VOCABULARY {
            let candidates = enumerate_configs(oracle, space, max_per_config)?;
            let schedule = match self.options.advisor.k {
                None => seqgraph::solve_with_prefix(oracle, horizon, &candidates, prefix)?,
                Some(k) => kaware::solve_with_prefix(oracle, horizon, &candidates, k, prefix)?,
            };
            Ok(schedule.configs[prefix.len()].clone())
        } else {
            let decomp = Decomposition::from_oracle(oracle, horizon, prefix);
            cdpd_obs::event!(
                "online advisor: decomposed {} candidates to {} active structures",
                self.structures.len(),
                decomp.n_local()
            );
            // The rename goes through the *warm* oracle: probes
            // globalize back before they hit the memo, so cache entries
            // survive across re-solves regardless of the active set.
            let local = decomp.local_oracle(oracle);
            let local_problem = decomp.localize_problem(horizon);
            let local_prefix: Vec<Config> = prefix.iter().map(|c| decomp.localize(c)).collect();
            let candidates = if decomp.n_local() <= ENUMERABLE_VOCABULARY {
                enumerate_configs(&local, space, max_per_config)?
            } else {
                decompose::candidate_configs(&local, &local_problem)?
            };
            let schedule = match self.options.advisor.k {
                None => {
                    seqgraph::solve_with_prefix(&local, &local_problem, &candidates, &local_prefix)?
                }
                Some(k) => kaware::solve_with_prefix(
                    &local,
                    &local_problem,
                    &candidates,
                    k,
                    &local_prefix,
                )?,
            };
            Ok(decomp.globalize(&schedule.configs[prefix.len()]))
        }
    }

    /// Serialize the session's complete dynamic state into an opaque
    /// blob, fit for [`Database::set_app_state`](cdpd_engine::Database::set_app_state).
    /// Everything observable round-trips: the sliding window (sealed
    /// blocks, profiles, the open partial window), the shift detector,
    /// the candidate vocabulary with its bit order, the committed
    /// configuration sequence, past decisions, and counters. The warm
    /// oracle memo and the calibration tracker are deliberately *not*
    /// persisted — the memo is a cache (a restored session rebuilds it
    /// cold at the next window seal and then decides identically), and
    /// drift is runtime telemetry about an execution environment the
    /// restored session may not share.
    pub fn save_state(&self) -> Vec<u8> {
        self.save_state_impl(StateVersion::V2)
    }

    /// Writer for the legacy v1 blob layout (`u64`-bitmask configs),
    /// kept so tests can prove [`OnlineAdvisor::restore`] still accepts
    /// sessions saved before configurations became width-agnostic.
    /// Only valid while the vocabulary fits the old 64-bit encoding.
    #[cfg(test)]
    pub(crate) fn save_state_v1(&self) -> Vec<u8> {
        assert!(
            self.structures.len() <= 64,
            "v1 blobs cannot encode vocabularies wider than 64"
        );
        self.save_state_impl(StateVersion::V1)
    }

    fn save_state_impl(&self, version: StateVersion) -> Vec<u8> {
        use crate::state::{put_config, put_f64, put_opt_u64, put_str, put_u32, put_u64, put_u8};
        let write_cfg = |out: &mut Vec<u8>, cfg: &Config| match version {
            StateVersion::V1 => put_u64(out, cfg.bits()),
            StateVersion::V2 => put_config(out, cfg),
        };
        let mut out = Vec::new();
        out.extend_from_slice(match version {
            StateVersion::V1 => STATE_MAGIC_V1,
            StateVersion::V2 => STATE_MAGIC,
        });
        put_str(&mut out, &self.table);
        let st = self.stream.state();
        put_u64(&mut out, st.window_len as u64);
        put_opt_u64(&mut out, st.max_windows.map(|v| v as u64));
        put_u64(&mut out, st.evicted as u64);
        put_u64(&mut out, st.pushed as u64);
        put_u32(&mut out, st.sealed.len() as u32);
        for b in &st.sealed {
            put_block(&mut out, b);
        }
        put_u32(&mut out, st.profiles.len() as u32);
        for p in &st.profiles {
            put_profile(&mut out, p);
        }
        put_weighted_list(&mut out, &st.open);
        match self.detector.last_profile() {
            None => put_u8(&mut out, 0),
            Some(p) => {
                put_u8(&mut out, 1);
                put_profile(&mut out, p);
            }
        }
        put_u32(&mut out, self.detector.scores().len() as u32);
        for s in self.detector.scores() {
            put_f64(&mut out, *s);
        }
        put_u32(&mut out, self.structures.len() as u32);
        for spec in &self.structures {
            put_spec(&mut out, spec);
        }
        put_u8(&mut out, self.derived as u8);
        put_u64(&mut out, self.dropped_structures as u64);
        put_u64(&mut out, self.oracle_first as u64);
        write_cfg(&mut out, &self.initial);
        put_u32(&mut out, self.committed.len() as u32);
        for c in &self.committed {
            write_cfg(&mut out, c);
        }
        put_u32(&mut out, self.decisions.len() as u32);
        for d in &self.decisions {
            put_u64(&mut out, d.window as u64);
            write_cfg(&mut out, &d.config);
            put_u32(&mut out, d.specs.len() as u32);
            for spec in &d.specs {
                put_spec(&mut out, spec);
            }
            put_u8(&mut out, d.changed as u8);
            put_f64(&mut out, d.degradation);
            put_u8(&mut out, d.resolved as u8);
            put_u64(&mut out, d.solve_nanos);
            put_u64(&mut out, d.changes_used as u64);
            put_u64(&mut out, d.suggested_k as u64);
        }
        put_u64(&mut out, self.resolves as u64);
        put_u64(&mut out, self.rebuilds as u64);
        out
    }

    /// Rebuild a session from a [`OnlineAdvisor::save_state`] blob: the
    /// warm-restart path after a restart or crash recovery. `options`
    /// must match the session that was saved (same window length,
    /// retention bound, and fixed-vs-derived vocabulary choice) — they
    /// are configuration, not state, so the caller re-supplies them.
    ///
    /// The restored session makes the same future decisions as the
    /// uninterrupted one: the first window sealed after restore
    /// rebuilds the cost oracle cold (one extra rebuild — the memo is
    /// the only thing not carried over), and the solve it feeds sees
    /// identical inputs.
    ///
    /// # Errors
    /// The blob must be well-formed ([`Error::Corrupt`] otherwise),
    /// `options` must agree with the persisted session shape, and every
    /// persisted candidate structure must still validate against `db`.
    pub fn restore(db: &Database, options: OnlineOptions, state: &[u8]) -> Result<OnlineAdvisor> {
        let mut r = crate::state::Reader::new(state);
        let version = match r.take(STATE_MAGIC.len())? {
            m if m == STATE_MAGIC => StateVersion::V2,
            m if m == STATE_MAGIC_V1 => StateVersion::V1,
            _ => return Err(Error::Corrupt("bad advisor state magic".into())),
        };
        let read_cfg = |r: &mut crate::state::Reader<'_>| -> Result<Config> {
            match version {
                StateVersion::V1 => Ok(Config::from_bits(r.u64()?)),
                StateVersion::V2 => r.config(),
            }
        };
        let table = r.str()?;
        let window_len = r.u64()? as usize;
        let max_windows = r.opt_u64()?.map(|v| v as usize);
        if options.advisor.window_len != window_len {
            return Err(Error::InvalidArgument(format!(
                "restore options have window_len {}, saved session used {window_len}",
                options.advisor.window_len
            )));
        }
        if options.max_windows != max_windows {
            return Err(Error::InvalidArgument(format!(
                "restore options have max_windows {:?}, saved session used {max_windows:?}",
                options.max_windows
            )));
        }
        let evicted = r.u64()? as usize;
        let pushed = r.u64()? as usize;
        let n = r.u32()? as usize;
        let mut sealed = Vec::with_capacity(n);
        for _ in 0..n {
            sealed.push(read_block(&mut r)?);
        }
        let n = r.u32()? as usize;
        let mut profiles = Vec::with_capacity(n);
        for _ in 0..n {
            profiles.push(read_profile(&mut r)?);
        }
        let open = read_weighted_list(&mut r)?;
        let stream = StatementStream::from_state(StreamState {
            table: table.clone(),
            window_len,
            max_windows,
            sealed,
            profiles,
            evicted,
            pushed,
            open,
        })?;
        let last = match r.u8()? {
            0 => None,
            1 => Some(read_profile(&mut r)?),
            t => return Err(Error::Corrupt(format!("bad profile tag {t}"))),
        };
        let n = r.u32()? as usize;
        let mut scores = Vec::with_capacity(n);
        for _ in 0..n {
            scores.push(r.f64()?);
        }
        let detector = OnlineShiftDetector::from_state(last, scores);
        let n = r.u32()? as usize;
        let mut structures = Vec::with_capacity(n);
        for _ in 0..n {
            structures.push(read_spec(&mut r)?);
        }
        if version == StateVersion::V1 && structures.len() > 64 {
            return Err(Error::Corrupt(
                "saved v1 vocabulary exceeds the 64-structure encoding".into(),
            ));
        }
        if structures.len() > options.max_candidates {
            return Err(Error::InvalidArgument(format!(
                "saved vocabulary has {} structures, restore options allow max_candidates = {}",
                structures.len(),
                options.max_candidates
            )));
        }
        let derived = r.bool()?;
        if derived != options.advisor.structures.is_none() {
            return Err(Error::InvalidArgument(
                "restore options disagree with the saved session on fixed vs derived candidates"
                    .into(),
            ));
        }
        let dropped_structures = r.u64()? as usize;
        let oracle_first = r.u64()? as usize;
        let initial = read_cfg(&mut r)?;
        let n = r.u32()? as usize;
        let mut committed = Vec::with_capacity(n);
        for _ in 0..n {
            committed.push(read_cfg(&mut r)?);
        }
        let n = r.u32()? as usize;
        let mut decisions = Vec::with_capacity(n);
        for _ in 0..n {
            let window = r.u64()? as usize;
            let config = read_cfg(&mut r)?;
            let n_specs = r.u32()? as usize;
            let mut specs = Vec::with_capacity(n_specs);
            for _ in 0..n_specs {
                specs.push(read_spec(&mut r)?);
            }
            let changed = r.bool()?;
            let degradation = r.f64()?;
            let resolved = r.bool()?;
            let solve_nanos = r.u64()?;
            let changes_used = r.u64()? as usize;
            let suggested_k = r.u64()? as usize;
            decisions.push(OnlineDecision {
                window,
                config,
                specs,
                changed,
                degradation,
                resolved,
                solve_nanos,
                changes_used,
                suggested_k,
                // Runtime telemetry, deliberately not persisted.
                calibration: None,
            });
        }
        let resolves = r.u64()? as usize;
        let rebuilds = r.u64()? as usize;
        r.finish()?;
        if oracle_first > committed.len() {
            return Err(Error::Corrupt(
                "saved oracle horizon starts past the committed sequence".into(),
            ));
        }
        // Validate the vocabulary against the (recovered) database,
        // exactly like a fresh session does.
        let whatif = WhatIfEngine::snapshot(db, &table)?;
        for spec in &structures {
            whatif.shape(spec)?;
        }
        let calibration = CalibrationTracker::new(options.calibration.clone());
        Ok(OnlineAdvisor {
            table,
            options,
            stream,
            detector,
            structures,
            derived,
            dropped_structures,
            // The memo is a cache: rebuild cold at the next seal.
            oracle: None,
            oracle_first,
            rebuild: true,
            initial,
            committed,
            decisions,
            resolves,
            rebuilds,
            // Like the memo, drift is runtime telemetry: it restarts
            // empty and refills as the restored session executes.
            calibration,
        })
    }

    /// The problem over the retained horizon. Its initial config is
    /// whatever design entered the first retained window; with an
    /// unbounded window that is the construction-time design and the
    /// budget semantics match the batch problem exactly. The final
    /// config is never pinned mid-session (`end_empty` applies at
    /// [`OnlineAdvisor::finish`] — tearing down indexes between
    /// windows because the *eventual* end is empty would be absurd).
    fn problem_over_horizon(&self) -> Problem {
        let initial = if self.oracle_first == 0 {
            self.initial.clone()
        } else {
            self.committed[self.oracle_first - 1].clone()
        };
        Problem {
            initial,
            final_config: None,
            space_bound: self.options.advisor.space_bound_pages,
            count_initial_change: self.options.advisor.count_initial_change
                && self.oracle_first == 0,
        }
    }
}

/// Magic + version of the [`OnlineAdvisor::save_state`] blob: v2
/// persists configurations as word lists (width-agnostic).
const STATE_MAGIC: &[u8; 8] = b"cdpdadv2";

/// The legacy v1 magic: configurations as bare `u64` bitmasks, from
/// when the vocabulary was capped at 64 structures. Still accepted by
/// [`OnlineAdvisor::restore`].
const STATE_MAGIC_V1: &[u8; 8] = b"cdpdadv1";

/// Which blob layout to write or read.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StateVersion {
    V1,
    V2,
}

fn put_spec(out: &mut Vec<u8>, spec: &IndexSpec) {
    crate::state::put_str(out, &spec.table);
    crate::state::put_u16(out, spec.columns.len() as u16);
    for c in &spec.columns {
        crate::state::put_str(out, c);
    }
}

fn read_spec(r: &mut crate::state::Reader<'_>) -> Result<IndexSpec> {
    let table = r.str()?;
    let n = r.u16()? as usize;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        columns.push(r.str()?);
    }
    Ok(IndexSpec { table, columns })
}

/// Statements persist as SQL text: the parser/printer round trip is
/// exact (proven by the sql crate's property tests), and the format
/// stays debuggable.
fn put_weighted_list(out: &mut Vec<u8>, list: &[cdpd_workload::WeightedStatement]) {
    crate::state::put_u32(out, list.len() as u32);
    for ws in list {
        crate::state::put_str(out, &ws.statement.to_string());
        crate::state::put_u64(out, ws.count);
    }
}

fn read_weighted_list(
    r: &mut crate::state::Reader<'_>,
) -> Result<Vec<cdpd_workload::WeightedStatement>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let sql = r.str()?;
        let statement = match cdpd_sql::parse(&sql)? {
            cdpd_sql::Statement::Select(s) => Dml::Select(s),
            cdpd_sql::Statement::Update(u) => Dml::Update(u),
            cdpd_sql::Statement::Delete(d) => Dml::Delete(d),
            _ => {
                return Err(Error::Corrupt(format!(
                    "persisted statement is not DML: {sql}"
                )))
            }
        };
        let count = r.u64()?;
        out.push(cdpd_workload::WeightedStatement { statement, count });
    }
    Ok(out)
}

fn put_block(out: &mut Vec<u8>, b: &Block) {
    crate::state::put_u64(out, b.start as u64);
    crate::state::put_u64(out, b.len as u64);
    put_weighted_list(out, &b.weighted);
}

fn read_block(r: &mut crate::state::Reader<'_>) -> Result<Block> {
    let start = r.u64()? as usize;
    let len = r.u64()? as usize;
    let weighted = read_weighted_list(r)?;
    Ok(Block {
        start,
        len,
        weighted,
    })
}

fn put_profile(out: &mut Vec<u8>, p: &cdpd_workload::analysis::WindowProfile) {
    crate::state::put_u32(out, p.fractions.len() as u32);
    for (k, v) in &p.fractions {
        crate::state::put_str(out, k);
        crate::state::put_f64(out, *v);
    }
}

fn read_profile(
    r: &mut crate::state::Reader<'_>,
) -> Result<cdpd_workload::analysis::WindowProfile> {
    let n = r.u32()? as usize;
    let mut fractions = std::collections::BTreeMap::new();
    for _ in 0..n {
        let k = r.str()?;
        let v = r.f64()?;
        fractions.insert(k, v);
    }
    Ok(cdpd_workload::analysis::WindowProfile { fractions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpd_sql::SelectStmt;
    use cdpd_testkit::Prng;
    use cdpd_types::{ColumnDef, Schema, Value};

    fn db_with(rows: i64, index_on: Option<&str>) -> Database {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::int("a"),
                ColumnDef::int("b"),
                ColumnDef::int("c"),
                ColumnDef::int("d"),
            ]),
        )
        .unwrap();
        let domain = rows / 5;
        let mut rng = Prng::seed_from_u64(17);
        for _ in 0..rows {
            let row: Vec<Value> = (0..4)
                .map(|_| Value::Int(rng.gen_range(0..domain)))
                .collect();
            db.insert("t", &row).unwrap();
        }
        db.analyze("t").unwrap();
        if let Some(col) = index_on {
            db.create_index(&IndexSpec::new("t", &[col])).unwrap();
        }
        db
    }

    fn opts(window_len: usize, k: Option<usize>) -> OnlineOptions {
        OnlineOptions {
            advisor: AdvisorOptions {
                k,
                window_len,
                max_structures_per_config: Some(1),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn q(col: &str, v: i64) -> Dml {
        SelectStmt::point("t", col, v).into()
    }

    #[test]
    fn decisions_fire_per_window_and_track_the_workload() {
        let db = db_with(10_000, None);
        let mut adv = OnlineAdvisor::new(&db, "t", opts(50, Some(4))).unwrap();
        assert!(adv.is_empty());
        // Two a-heavy windows, then two c-heavy windows.
        let mut decisions = Vec::new();
        for i in 0..200 {
            let col = if i < 100 { "a" } else { "c" };
            assert_eq!(adv.next_seals(), (adv.len() + 1).is_multiple_of(50));
            if let Some(d) = adv.ingest(&db, &q(col, i % 100)).unwrap() {
                decisions.push(d);
            }
        }
        assert_eq!(decisions.len(), 4);
        assert_eq!(adv.decisions().len(), 4);
        assert_eq!(adv.committed().len(), 4);
        assert_eq!(adv.len(), 200);
        // The committed design follows the shift: a-serving early,
        // c-serving late.
        let early = &decisions[0].specs;
        let late = &decisions[3].specs;
        assert!(
            early.iter().any(|s| s.columns.contains(&"a".to_owned())),
            "{early:?}"
        );
        assert!(
            late.iter().any(|s| s.columns.contains(&"c".to_owned())),
            "{late:?}"
        );
        assert!(decisions.iter().all(|d| d.resolved));
        assert_eq!(adv.resolves(), 4);
        // The warm path appends stages; rebuilds happen only when the
        // derived vocabulary grows (at most once per new column mix).
        assert!(adv.rebuilds() <= 2, "{} rebuilds", adv.rebuilds());
        assert_eq!(adv.live_specs(), decisions[3].specs);
    }

    #[test]
    fn resolve_threshold_gates_resolves_on_degradation() {
        let db = db_with(10_000, None);
        let mut adv = OnlineAdvisor::new(
            &db,
            "t",
            OnlineOptions {
                resolve_threshold: Some(0.5),
                ..opts(50, Some(4))
            },
        )
        .unwrap();
        // Window 0 always solves; windows 1-2 repeat the same workload,
        // so the live design holds and no re-solve runs; window 3
        // shifts hard and must trip the alerter.
        for i in 0..150 {
            adv.ingest(&db, &q("a", i % 40)).unwrap();
        }
        for i in 0..50 {
            adv.ingest(&db, &q("c", i % 40)).unwrap();
        }
        let d = adv.decisions();
        assert_eq!(d.len(), 4);
        assert!(d[0].resolved, "first window must solve");
        assert!(!d[1].resolved && !d[2].resolved, "steady state holds");
        assert!(d[1].degradation <= 0.5);
        assert!(d[3].resolved, "shift must trip the alerter");
        assert!(d[3].degradation > 0.5, "{}", d[3].degradation);
        assert!(d[3].changed);
        assert_eq!(adv.resolves(), 2);
    }

    #[test]
    fn rolling_budget_is_respected_across_the_session() {
        let db = db_with(10_000, None);
        let mut adv = OnlineAdvisor::new(&db, "t", opts(40, Some(1))).unwrap();
        // Three shifts but budget for one change after the free initial
        // build: the committed schedule can change at most once more.
        for (w, col) in ["a", "b", "c", "d"].iter().enumerate() {
            for i in 0..40 {
                adv.ingest(&db, &q(col, (w as i64 * 40 + i) % 100)).unwrap();
            }
        }
        let committed = adv.committed();
        assert_eq!(committed.len(), 4);
        let mut changes = 0;
        for s in 1..committed.len() {
            if committed[s] != committed[s - 1] {
                changes += 1;
            }
        }
        assert!(changes <= 1, "budget 1 exceeded: {committed:?}");
        assert!(adv.decisions().iter().all(|d| d.changes_used <= 1));
    }

    #[test]
    fn current_indexes_are_the_initial_config() {
        let db = db_with(5_000, Some("d"));
        let mut adv = OnlineAdvisor::new(&db, "t", opts(30, Some(2))).unwrap();
        assert_eq!(adv.live_specs(), vec![IndexSpec::new("t", &["d"])]);
        for i in 0..30 {
            adv.ingest(&db, &q("d", i)).unwrap();
        }
        // The d-workload keeps the existing index: no change spent.
        let d = &adv.decisions()[0];
        assert!(!d.changed, "{d:?}");
        assert_eq!(d.changes_used, 0);
    }

    #[test]
    fn bounded_window_evicts_and_rebuilds() {
        let db = db_with(5_000, None);
        let mut adv = OnlineAdvisor::new(
            &db,
            "t",
            OnlineOptions {
                max_windows: Some(2),
                ..opts(25, Some(3))
            },
        )
        .unwrap();
        for i in 0..100 {
            adv.ingest(&db, &q("b", i % 50)).unwrap();
        }
        assert_eq!(adv.decisions().len(), 4);
        assert_eq!(adv.committed().len(), 4, "commits are never evicted");
        // Windows 2 and 3 sealed after evictions: each forces a rebuild
        // (plus the initial cold build at window 0).
        assert_eq!(adv.rebuilds(), 3);
    }

    #[test]
    fn stats_refresh_evicts_changed_parts_only() {
        let db = db_with(8_000, None);
        let mut adv = OnlineAdvisor::new(&db, "t", opts(40, None)).unwrap();
        for i in 0..40 {
            adv.ingest(&db, &q("a", i)).unwrap();
        }
        for i in 0..40 {
            adv.ingest(&db, &q("b", i)).unwrap();
        }
        // No pending deltas: refresh is a no-op.
        let refresh = db.refresh_stats("t").unwrap();
        assert!(refresh.is_noop());
        assert_eq!(adv.note_stats_refresh(&db, &refresh).unwrap(), 0);
        // Mutate column b heavily, then fold the delta: only b-parts
        // (and parts whose statements predicate b) may be evicted.
        for i in 0..400 {
            let sql = format!("UPDATE t SET b = {} WHERE b = {}", i % 7, i % 50);
            let stmt = match cdpd_sql::parse(&sql).unwrap() {
                cdpd_sql::Statement::Update(u) => Dml::Update(u),
                _ => unreachable!(),
            };
            db.execute_dml(&stmt).unwrap();
        }
        let refresh = db.refresh_stats("t").unwrap();
        assert!(!refresh.is_noop());
        let evicted = adv.note_stats_refresh(&db, &refresh).unwrap();
        assert!(evicted > 0, "warm memo had b-dependent entries");
        // The session keeps working after the eviction.
        for i in 0..40 {
            adv.ingest(&db, &q("b", i)).unwrap();
        }
        assert_eq!(adv.decisions().len(), 3);
    }

    #[test]
    fn v1_blobs_restore_across_the_representation_change() {
        let db = db_with(5_000, Some("d"));
        let options = opts(30, Some(2));
        let mut session = OnlineAdvisor::new(&db, "t", options.clone()).unwrap();
        for i in 0..90 {
            let col = if i < 60 { "a" } else { "c" };
            session.ingest(&db, &q(col, i % 40)).unwrap();
        }
        // A blob saved before configurations went width-agnostic (bare
        // u64 bitmasks, v1 magic)...
        let v1 = session.save_state_v1();
        assert_eq!(&v1[..8], b"cdpdadv1");
        let v2 = session.save_state();
        assert_eq!(&v2[..8], b"cdpdadv2");
        assert_ne!(v1, v2);
        // ...restores cleanly — not Corrupt — to the same session a
        // current blob produces, and keeps deciding identically.
        let mut from_v1 = OnlineAdvisor::restore(&db, options.clone(), &v1).unwrap();
        let mut from_v2 = OnlineAdvisor::restore(&db, options, &v2).unwrap();
        assert_eq!(from_v1.committed(), from_v2.committed());
        assert_eq!(from_v1.structures(), from_v2.structures());
        assert_eq!(from_v1.live_specs(), session.live_specs());
        for i in 0..60 {
            let a = from_v1.ingest(&db, &q("c", i % 40)).unwrap();
            let b = from_v2.ingest(&db, &q("c", i % 40)).unwrap();
            assert_eq!(a.map(|d| d.config), b.map(|d| d.config));
        }
        assert_eq!(from_v1.committed(), from_v2.committed());
    }

    /// An 8-column table whose index permutations push the vocabulary
    /// past the old 64-structure cap.
    fn wide_db(rows: i64) -> Database {
        let db = Database::new();
        let cols: Vec<ColumnDef> = (0..8).map(|i| ColumnDef::int(format!("c{i}"))).collect();
        db.create_table("w", Schema::new(cols)).unwrap();
        let domain = rows / 5;
        let mut rng = Prng::seed_from_u64(23);
        for _ in 0..rows {
            let row: Vec<Value> = (0..8)
                .map(|_| Value::Int(rng.gen_range(0..domain)))
                .collect();
            db.insert("w", &row).unwrap();
        }
        db.analyze("w").unwrap();
        db
    }

    /// 80 candidate structures, ordered so every spec *leading* with c0
    /// or c1 — the only columns the test workload touches — sits at bit
    /// position 64 or higher. Any useful committed configuration is
    /// therefore forced into the spilled multi-word representation.
    fn wide_specs() -> Vec<IndexSpec> {
        let col = |i: usize| format!("c{i}");
        let mut out = Vec::new();
        for a in 2..8 {
            out.push(IndexSpec::new("w", &[col(a).as_str()]));
        }
        for a in 2..8 {
            for b in 0..8 {
                if a != b {
                    out.push(IndexSpec::new("w", &[col(a).as_str(), col(b).as_str()]));
                }
            }
        }
        'triples: for a in 2..8 {
            for b in 0..8 {
                for c in 0..8 {
                    if a == b || b == c || a == c {
                        continue;
                    }
                    out.push(IndexSpec::new(
                        "w",
                        &[col(a).as_str(), col(b).as_str(), col(c).as_str()],
                    ));
                    if out.len() == 64 {
                        break 'triples;
                    }
                }
            }
        }
        for lead in 0..2 {
            out.push(IndexSpec::new("w", &[col(lead).as_str()]));
            for b in 0..8 {
                if b != lead {
                    out.push(IndexSpec::new("w", &[col(lead).as_str(), col(b).as_str()]));
                }
            }
        }
        out
    }

    #[test]
    fn wide_vocabulary_session_decides_and_round_trips() {
        let db = wide_db(6_000);
        let options = OnlineOptions {
            advisor: AdvisorOptions {
                k: Some(2),
                window_len: 30,
                structures: Some(wide_specs()),
                max_structures_per_config: Some(1),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut session = OnlineAdvisor::new(&db, "w", options.clone()).unwrap();
        assert!(session.structures().len() > 64, "the cap is gone");
        let wq = |col: &str, v: i64| -> Dml { SelectStmt::point("w", col, v).into() };
        for i in 0..60 {
            let col = if i < 30 { "c0" } else { "c1" };
            session.ingest(&db, &wq(col, i % 40)).unwrap();
        }
        assert_eq!(session.decisions().len(), 2);
        // The workload only rewards specs at bit positions ≥ 64, so the
        // committed configurations genuinely exercise the spilled
        // representation.
        let spilled = session
            .committed()
            .iter()
            .filter(|c| !c.is_empty())
            .inspect(|c| {
                assert!(
                    c.structures().all(|i| i >= 64),
                    "only c0/c1-leading specs serve this workload: {c:?}"
                );
                assert_eq!(c.words().len(), 2, "{c:?} must spill");
            })
            .count();
        assert!(spilled > 0, "the session must commit a useful design");
        assert!(session
            .decisions()
            .iter()
            .any(|d| d.specs.iter().any(|s| s.columns[0] == "c0")));

        // Spilled configurations survive persistence bit-for-bit, and
        // the restored session keeps deciding identically.
        let blob = session.save_state();
        let mut resumed = OnlineAdvisor::restore(&db, options, &blob).unwrap();
        assert_eq!(session.committed(), resumed.committed());
        for i in 0..30 {
            let a = session.ingest(&db, &wq("c1", i)).unwrap();
            let b = resumed.ingest(&db, &wq("c1", i)).unwrap();
            assert_eq!(a.map(|d| d.config), b.map(|d| d.config));
        }
        assert_eq!(session.committed(), resumed.committed());
    }

    #[test]
    fn vocabulary_ceiling_drops_ranked_worst_candidates() {
        let db = db_with(5_000, None);
        let mut adv = OnlineAdvisor::new(
            &db,
            "t",
            OnlineOptions {
                max_candidates: 2,
                ..opts(40, Some(2))
            },
        )
        .unwrap();
        for i in 0..40 {
            adv.ingest(&db, &q("a", i)).unwrap();
        }
        let grown = adv.structures().len();
        assert!(grown <= 2);
        // A shifted window derives fresh candidates; past the ceiling
        // they are dropped (ranked order) and counted, never silently
        // lost.
        for i in 0..80 {
            adv.ingest(&db, &q("b", i % 40)).unwrap();
            adv.ingest(&db, &q("c", i % 40)).unwrap();
        }
        assert!(adv.structures().len() <= 2);
        assert!(adv.dropped_structures() > 0, "drops must be visible");

        // And the ceiling is validated up front.
        let bad = OnlineOptions {
            max_candidates: 0,
            ..opts(10, None)
        };
        assert!(OnlineAdvisor::new(&db, "t", bad).is_err());
        let too_many = OnlineOptions {
            max_candidates: 1,
            advisor: AdvisorOptions {
                structures: Some(vec![
                    IndexSpec::new("t", &["a"]),
                    IndexSpec::new("t", &["b"]),
                ]),
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(OnlineAdvisor::new(&db, "t", too_many).is_err());
    }

    #[test]
    fn finish_requires_statements_and_validates() {
        let db = db_with(2_000, None);
        let adv = OnlineAdvisor::new(&db, "t", opts(10, None)).unwrap();
        assert!(adv.finish(&db).is_err());
        assert!(OnlineAdvisor::new(&db, "missing", opts(10, None)).is_err());
        let bad = OnlineOptions {
            advisor: AdvisorOptions {
                structures: Some(vec![IndexSpec::new("t", &["nope"])]),
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(OnlineAdvisor::new(&db, "t", bad).is_err());
    }
}

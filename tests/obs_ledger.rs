//! Obs/ledger reconciliation under concurrency (companion to
//! `tests/obs_prop.rs`): the per-pager atomic counters and the
//! `cdpd-obs` global tracked counters (`storage.pager.reads` /
//! `.writes` / `.allocs`, surfaced as [`IoStats::global`]) are
//! incremented at the same call sites, so when **multiple pagers race
//! on multiple threads** the sum of per-pager deltas must equal the
//! registry delta *exactly* — not eventually, not approximately.
//!
//! This test owns its binary: exact global-counter equality requires
//! that no sibling test races the registry mid-measurement.

use cdpd::storage::{IoStats, Pager, ThreadIoScope, PAGE_SIZE};
use cdpd::types::PageId;
use std::sync::Arc;

#[test]
fn racing_pagers_reconcile_with_global_tracked_counters() {
    const PAGERS: usize = 3;
    const THREADS_PER_PAGER: u64 = 4;
    const OPS: u64 = 400;

    let pagers: Vec<Arc<Pager>> = (0..PAGERS).map(|_| Arc::new(Pager::new())).collect();
    for pager in &pagers {
        for _ in 0..32 {
            pager.allocate();
        }
    }

    let global_before = IoStats::global();
    let before: Vec<IoStats> = pagers.iter().map(|p| p.stats()).collect();

    std::thread::scope(|s| {
        for (pi, pager) in pagers.iter().enumerate() {
            for t in 0..THREADS_PER_PAGER {
                let pager = Arc::clone(pager);
                s.spawn(move || {
                    let scope = ThreadIoScope::start();
                    let mut expected = IoStats::default();
                    for i in 0..OPS {
                        let id = PageId(((pi as u64 * 7 + t * 13 + i) % 32) as u32);
                        match i % 4 {
                            0 | 1 => {
                                pager.read(id).unwrap();
                                expected.reads += 1;
                            }
                            2 => {
                                pager.write(id, Arc::new([t as u8; PAGE_SIZE])).unwrap();
                                expected.writes += 1;
                            }
                            _ => {
                                pager.update(id, |b| b[0] = b[0].wrapping_add(1)).unwrap();
                                expected.reads += 1;
                                expected.writes += 1;
                            }
                        }
                    }
                    // Thread-local scopes attribute exactly this
                    // thread's accesses, even while 11 sibling threads
                    // hammer the same counters.
                    assert_eq!(scope.delta(), expected);
                });
            }
        }
    });

    let global_delta = IoStats::global().delta(global_before);
    let mut summed = IoStats::default();
    for (pager, b) in pagers.iter().zip(&before) {
        let d = pager.stats().delta(*b);
        summed.reads += d.reads;
        summed.writes += d.writes;
        summed.allocs += d.allocs;
    }

    assert_eq!(
        summed, global_delta,
        "per-pager ledgers and the obs registry must agree exactly"
    );
    // Cross-check the absolute volumes so a double-count on both sides
    // cannot cancel out.
    let total_threads = PAGERS as u64 * THREADS_PER_PAGER;
    assert_eq!(
        summed.reads,
        total_threads * OPS / 2 + total_threads * OPS / 4
    );
    assert_eq!(summed.writes, total_threads * OPS / 2);
    assert_eq!(summed.allocs, 0);
}

//! Obs/ledger reconciliation under concurrency (companion to
//! `tests/obs_prop.rs`): the per-pager atomic counters and the
//! `cdpd-obs` global tracked counters (`storage.pager.reads` /
//! `.writes` / `.allocs`, surfaced as [`IoStats::global`]) are
//! incremented at the same call sites, so when **multiple pagers race
//! on multiple threads** the sum of per-pager deltas must equal the
//! registry delta *exactly* — not eventually, not approximately.
//!
//! The durable tier gets the same treatment: `storage.wal.*`,
//! `storage.writeback.pages`, `storage.checkpoint.completed`, and
//! `storage.backend.fetches` are tracked counters mirrored by each
//! pager's [`DurableStats`], so summed per-pager deltas must equal the
//! registry deltas exactly while durable pagers race.
//!
//! These tests own their binary, but cargo still runs them on sibling
//! threads — and durable pager traffic bumps `storage.pager.*` too, so
//! every registry measurement serializes on [`REGISTRY_LOCK`].

use cdpd::engine::{Database, IndexSpec};
use cdpd::storage::{DurableOptions, IoStats, MemVfs, Pager, ThreadIoScope, PAGE_SIZE};
use cdpd::types::{ColumnDef, PageId, Schema, Value};
use cdpd_testkit::Prng;
use std::sync::{Arc, Mutex};

/// Serializes registry-delta measurements across tests in this binary.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn racing_pagers_reconcile_with_global_tracked_counters() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    const PAGERS: usize = 3;
    const THREADS_PER_PAGER: u64 = 4;
    const OPS: u64 = 400;

    let pagers: Vec<Arc<Pager>> = (0..PAGERS).map(|_| Arc::new(Pager::new())).collect();
    for pager in &pagers {
        for _ in 0..32 {
            pager.allocate();
        }
    }

    let global_before = IoStats::global();
    let before: Vec<IoStats> = pagers.iter().map(|p| p.stats()).collect();

    std::thread::scope(|s| {
        for (pi, pager) in pagers.iter().enumerate() {
            for t in 0..THREADS_PER_PAGER {
                let pager = Arc::clone(pager);
                s.spawn(move || {
                    let scope = ThreadIoScope::start();
                    let mut expected = IoStats::default();
                    for i in 0..OPS {
                        let id = PageId(((pi as u64 * 7 + t * 13 + i) % 32) as u32);
                        match i % 4 {
                            0 | 1 => {
                                pager.read(id).unwrap();
                                expected.reads += 1;
                            }
                            2 => {
                                pager.write(id, Arc::new([t as u8; PAGE_SIZE])).unwrap();
                                expected.writes += 1;
                            }
                            _ => {
                                pager.update(id, |b| b[0] = b[0].wrapping_add(1)).unwrap();
                                expected.reads += 1;
                                expected.writes += 1;
                            }
                        }
                    }
                    // Thread-local scopes attribute exactly this
                    // thread's accesses, even while 11 sibling threads
                    // hammer the same counters.
                    assert_eq!(scope.delta(), expected);
                });
            }
        }
    });

    let global_delta = IoStats::global().delta(global_before);
    let mut summed = IoStats::default();
    for (pager, b) in pagers.iter().zip(&before) {
        let d = pager.stats().delta(*b);
        summed.reads += d.reads;
        summed.writes += d.writes;
        summed.allocs += d.allocs;
    }

    assert_eq!(
        summed, global_delta,
        "per-pager ledgers and the obs registry must agree exactly"
    );
    // Cross-check the absolute volumes so a double-count on both sides
    // cannot cancel out.
    let total_threads = PAGERS as u64 * THREADS_PER_PAGER;
    assert_eq!(
        summed.reads,
        total_threads * OPS / 2 + total_threads * OPS / 4
    );
    assert_eq!(summed.writes, total_threads * OPS / 2);
    assert_eq!(summed.allocs, 0);
}

/// Statement-level attribution through the whole engine under racing
/// *mutators*: writer threads (inserts / updates / deletes) race an
/// online index build, every thread metering itself with a
/// [`ThreadIoScope`]. The summed per-thread deltas must equal both the
/// pager's own ledger delta and the obs-registry delta **exactly** —
/// the catch-up work a build does for concurrent writers is charged to
/// the building thread, never dropped and never double-counted.
#[test]
fn racing_mutators_and_online_builds_reconcile_attribution() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    const WRITERS: usize = 4;
    const OPS_PER_WRITER: usize = 150;
    const ROWS: i64 = 1_500;
    const DOMAIN: i64 = 300;

    let db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ]),
    )
    .expect("fresh table");
    let mut rng = Prng::seed_from_u64(99);
    for _ in 0..ROWS {
        let row: Vec<Value> = (0..4)
            .map(|_| Value::Int(rng.gen_range(0..DOMAIN)))
            .collect();
        db.insert("t", &row).expect("row matches schema");
    }
    db.analyze("t").expect("table exists");

    let global_before = IoStats::global();
    let pager_before = db.pager().stats();

    let deltas: Vec<IoStats> = std::thread::scope(|s| {
        let mut handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let db = &db;
                s.spawn(move || {
                    let scope = ThreadIoScope::start();
                    let mut rng = Prng::seed_from_u64(0xAB ^ w as u64);
                    for _ in 0..OPS_PER_WRITER {
                        let v = rng.gen_range(0..DOMAIN);
                        match rng.gen_range(0..4i64) {
                            0 => {
                                db.execute_sql(&format!(
                                    "UPDATE t SET c = {} WHERE a = {v}",
                                    rng.gen_range(0..DOMAIN)
                                ))
                                .expect("racing update");
                            }
                            1 => {
                                db.execute_sql(&format!("DELETE FROM t WHERE b = {v} AND c = {v}"))
                                    .expect("racing delete");
                            }
                            _ => {
                                let row: Vec<Value> = (0..4)
                                    .map(|_| Value::Int(rng.gen_range(0..DOMAIN)))
                                    .collect();
                                db.insert("t", &row).expect("racing insert");
                            }
                        }
                    }
                    scope.delta()
                })
            })
            .collect();
        // The builder races the writers: base scan from a pinned
        // snapshot, then catch-up from the delta log at install.
        handles.push(s.spawn(|| {
            let scope = ThreadIoScope::start();
            db.create_index(&IndexSpec::new("t", &["a", "b"]))
                .expect("online build");
            db.create_index(&IndexSpec::new("t", &["d"]))
                .expect("online build");
            db.drop_index(&IndexSpec::new("t", &["d"])).expect("drop");
            scope.delta()
        }));
        handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    });

    let mut summed = IoStats::default();
    for d in &deltas {
        summed.reads += d.reads;
        summed.writes += d.writes;
        summed.allocs += d.allocs;
    }
    assert_eq!(
        summed,
        db.pager().stats().delta(pager_before),
        "summed per-thread scopes must equal the pager ledger delta"
    );
    assert_eq!(
        summed,
        IoStats::global().delta(global_before),
        "summed per-thread scopes must equal the obs-registry delta"
    );
    assert!(
        deltas.last().expect("builder ran").total() > 0,
        "the build thread's scope must charge the build + catch-up I/O"
    );
}

/// The six durable tracked counters, in [`cdpd::storage::DurableStats`]
/// field order.
const DURABLE_COUNTERS: [&str; 6] = [
    "storage.wal.appends",
    "storage.wal.commits",
    "storage.wal.fsyncs",
    "storage.writeback.pages",
    "storage.checkpoint.completed",
    "storage.backend.fetches",
];

fn durable_registry_snapshot() -> [u64; 6] {
    DURABLE_COUNTERS.map(|name| cdpd::obs::registry().counter_value(name))
}

fn stats_as_array(s: cdpd::storage::DurableStats) -> [u64; 6] {
    [
        s.wal_appends,
        s.wal_commits,
        s.wal_fsyncs,
        s.writeback_pages,
        s.checkpoints,
        s.backend_fetches,
    ]
}

#[test]
fn racing_durable_pagers_reconcile_wal_counters() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    const PAGERS: usize = 3;
    const THREADS_PER_PAGER: u64 = 4;
    const PAGES: u32 = 64;

    // Different group-commit factors per pager so the fsync batching
    // path is exercised: commits and fsyncs must diverge and still
    // reconcile counter-by-counter.
    let pagers: Vec<Arc<Pager>> = (0..PAGERS)
        .map(|pi| {
            let opts = DurableOptions {
                cache_pages: 8,
                group_commit: pi + 1,
                checkpoint_wal_bytes: 0,
            };
            let open = Pager::open_durable(Arc::new(MemVfs::new()), opts).unwrap();
            Arc::new(open.pager)
        })
        .collect();
    for pager in &pagers {
        for _ in 0..PAGES {
            pager.allocate();
        }
    }

    let registry_before = durable_registry_snapshot();
    let before: Vec<_> = pagers.iter().map(|p| p.durable_stats()).collect();

    // Phase A: racing mutators on every pager at once (writes and
    // updates dirty frames; no WAL traffic yet — commits are the
    // single-writer main thread's job).
    std::thread::scope(|s| {
        for pager in &pagers {
            for t in 0..THREADS_PER_PAGER {
                let pager = Arc::clone(pager);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let id = PageId(((t * 17 + i) % PAGES as u64) as u32);
                        if i % 3 == 0 {
                            pager.update(id, |b| b[0] = b[0].wrapping_add(1)).unwrap();
                        } else {
                            pager.write(id, Arc::new([t as u8; PAGE_SIZE])).unwrap();
                        }
                    }
                });
            }
        }
    });
    for pager in &pagers {
        pager.commit(b"phase-a").unwrap();
        pager.checkpoint().unwrap();
    }

    // Phase B: a second generation of pages. Installing them pushes
    // the 8-page cache over budget, so the now-clean phase-A pages get
    // evicted — which is what makes phase C's reads miss.
    for pager in &pagers {
        for _ in 0..PAGES {
            let id = pager.allocate();
            pager.write(id, Arc::new([0xB; PAGE_SIZE])).unwrap();
        }
        pager.commit(b"phase-b").unwrap();
        pager.checkpoint().unwrap();
    }

    // Phase C: racing readers sweep both generations, faulting evicted
    // pages back in from the file backend.
    std::thread::scope(|s| {
        for pager in &pagers {
            for t in 0..THREADS_PER_PAGER {
                let pager = Arc::clone(pager);
                s.spawn(move || {
                    for i in 0..(2 * PAGES as u64) {
                        let id = PageId(((t * 31 + i) % (2 * PAGES as u64)) as u32);
                        pager.read(id).unwrap();
                    }
                });
            }
        }
    });

    let registry_delta: Vec<u64> = durable_registry_snapshot()
        .iter()
        .zip(registry_before)
        .map(|(now, b)| now - b)
        .collect();
    let mut summed = [0u64; 6];
    for (pager, b) in pagers.iter().zip(&before) {
        let d = stats_as_array(pager.durable_stats().delta(*b));
        for (acc, v) in summed.iter_mut().zip(d) {
            *acc += v;
        }
    }

    for (i, name) in DURABLE_COUNTERS.iter().enumerate() {
        assert_eq!(
            summed[i], registry_delta[i],
            "{name}: per-pager durable ledgers and the obs registry must agree exactly"
        );
        assert!(summed[i] > 0, "{name}: test never exercised this counter");
    }
    // Shape checks on the absolute volumes: two explicit checkpoints
    // and two commits per pager, and every dirty page written back at
    // least once per generation.
    assert_eq!(summed[4], 2 * PAGERS as u64);
    assert_eq!(summed[1], 2 * PAGERS as u64);
    assert!(summed[3] >= 2 * PAGERS as u64 * PAGES as u64);
}

//! Property test for the tracing layer's concurrency contract: span
//! records produced by N threads building random span trees are
//! well-nested *per thread* (every non-root record closes inside an
//! enclosing record with the parent path and covering interval), and
//! the tracked-counter deltas attributed to the per-thread root spans
//! sum exactly to the global registry delta — attribution neither
//! loses nor double-counts work, no matter how the threads interleave.

use cdpd_obs::SpanRecord;
use cdpd_testkit::prop::Config as PropConfig;
use cdpd_testkit::{props, Prng};

const ALPHA: &str = "test.obs.alpha";
const BETA: &str = "test.obs.beta";

/// Build a random span tree, bumping tracked counters at every node.
/// Returns the per-counter totals this subtree bumped.
fn random_tree(rng: &mut Prng, depth: usize) -> (u64, u64) {
    let a = rng.gen_range(0..4u64);
    let b = rng.gen_range(0..3u64);
    cdpd_obs::tracked_counter!("test.obs.alpha").add(a);
    if b > 0 {
        cdpd_obs::tracked_counter!("test.obs.beta").add(b);
    }
    let (mut ta, mut tb) = (a, b);
    if depth < 3 {
        for child in 0..rng.gen_range(0..3u64) {
            let _span = cdpd_obs::span!("obsprop.node", child = child, depth = depth);
            let (ca, cb) = random_tree(rng, depth + 1);
            ta += ca;
            tb += cb;
        }
    }
    (ta, tb)
}

props! {
    config: PropConfig::with_cases(12);

    fn concurrent_span_trees_nest_and_reconcile(seed in 0u64..1_000_000, threads in 2u64..6) {
        let (seed, threads) = (*seed, *threads);
        // Tracing state is process-global; this is the only test in the
        // binary, and property cases run sequentially.
        cdpd_obs::trace::drain();
        cdpd_obs::trace::set_enabled(true);
        let before = cdpd_obs::registry().snapshot();
        let t0 = cdpd_obs::trace::now_ns();

        let mut expected = (0u64, 0u64);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let mut rng =
                            Prng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ t);
                        let _root = cdpd_obs::span!("obsprop.root", t = t);
                        random_tree(&mut rng, 0)
                    })
                })
                .collect();
            for h in handles {
                let (a, b) = h.join().expect("worker");
                expected.0 += a;
                expected.1 += b;
            }
        });

        cdpd_obs::trace::set_enabled(false);
        let delta = cdpd_obs::registry().snapshot().delta(&before);
        let records: Vec<SpanRecord> = cdpd_obs::trace::drain()
            .into_iter()
            .filter(|r| r.start_ns >= t0)
            .collect();

        // One root per thread, each named obsprop.root at depth 0.
        let roots: Vec<&SpanRecord> = records.iter().filter(|r| r.depth == 0).collect();
        assert_eq!(roots.len() as u64, threads, "one root span per thread");
        assert!(roots.iter().all(|r| r.name == "obsprop.root"));

        // Well-nestedness, thread by thread: every non-root record has
        // an enclosing record on the same thread whose path is its
        // parent path and whose interval covers it.
        for r in &records {
            if r.depth == 0 {
                assert_eq!(r.path, r.name, "roots have bare paths");
                continue;
            }
            let parent_path = r.path.rsplit_once('/').expect("non-root has a parent").0;
            assert!(
                records.iter().any(|p| {
                    p.thread == r.thread
                        && p.depth == r.depth - 1
                        && p.path == parent_path
                        && p.start_ns <= r.start_ns
                        && p.end_ns >= r.end_ns
                        && p.seq > r.seq
                }),
                "no enclosing span for {} (thread {}, depth {})",
                r.path,
                r.thread,
                r.depth
            );
        }

        // Attribution: the root spans' tracked deltas sum to both the
        // workers' ground truth and the global registry delta.
        for (name, want) in [(ALPHA, expected.0), (BETA, expected.1)] {
            let attributed: u64 = roots.iter().map(|r| r.counter(name)).sum();
            assert_eq!(attributed, want, "{name}: roots != worker ground truth");
            assert_eq!(delta.counter(name), want, "{name}: registry != ground truth");
        }
    }
}

//! Kill-at-any-point crash recovery: the headline property of the
//! durable tier.
//!
//! A deterministic workload script — table load, W1–W3-derived
//! statements, index DDL, stats maintenance, checkpoints, app-state
//! writes — runs against a durable [`Database`] whose VFS is wrapped in
//! [`FaultyVfs`]. One counting pass (`kill_at = u64::MAX`) learns the
//! total number of mutating VFS operations and the commit sequence
//! number reached after every logical op; then the same script is
//! killed at an arbitrary operation (the fatal write lands only a torn
//! prefix) and the surviving bytes are reopened through the inner VFS.
//!
//! The invariants, at **every** kill point:
//!
//! 1. recovery succeeds — a crash never bricks the database;
//! 2. every *acknowledged* commit survives (recovered sequence ≥ the
//!    last op that returned `Ok`);
//! 3. the recovered sequence is one some commit actually produced —
//!    never a half-applied state;
//! 4. the recovered logical state is **bit-identical** to a fresh
//!    in-memory database replaying exactly that committed prefix of
//!    the script (rows, index set, plans, full statistics snapshot,
//!    app state).
//!
//! The same binary proves the advisory layer resumes warm:
//! [`OnlineAdvisor::save_state`] → restart → [`OnlineAdvisor::restore`]
//! continues with the same decision sequence an uninterrupted session
//! produces.
//!
//! Two drivers share the core check: a `props!` property (shrinking,
//! `CDPD_PROP_CASES` / `CDPD_PROP_SEED`, persisted failure seeds under
//! `tests/regressions/`) and a deterministic sweep of 8 seeds × all
//! three paper workloads × 50 kill points spread across the full
//! operation range — the fixed matrix CI gates on.

mod common;

use cdpd::engine::{Database, IndexSpec};
use cdpd::sql::Dml;
use cdpd::storage::{DurableOptions, MemVfs};
use cdpd::types::{ColumnDef, Schema, Value};
use cdpd::workload::paper::PaperParams;
use cdpd::workload::{generate, paper};
use cdpd::{AdvisorOptions, OnlineAdvisor, OnlineDecision, OnlineOptions};
use cdpd_testkit::prop::Config as PropConfig;
use cdpd_testkit::{props, FaultyVfs, Prng};
use common::{paper_database, paper_params, paper_structures};
use std::sync::Arc;

// --- Workload scripts --------------------------------------------------

const ROWS: i64 = 150;
const DOMAIN: i64 = ROWS / common::ROWS_PER_VALUE;

/// One logical operation of a recovery workload. Each mutating op is
/// one commit (or none, for reads and no-op refreshes); the script is
/// what both the durable run and the in-memory control replay.
#[derive(Clone, Debug)]
enum Op {
    CreateTable,
    InsertBatch(Vec<Vec<Value>>),
    Analyze,
    RefreshStats,
    CreateIndex(IndexSpec),
    DropIndex(IndexSpec),
    Dml(Dml),
    Sql(String),
    Checkpoint,
    SetAppState(Vec<u8>),
}

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::int("a"),
        ColumnDef::int("b"),
        ColumnDef::int("c"),
        ColumnDef::int("d"),
    ])
}

fn batch(rng: &mut Prng, rows: usize) -> Vec<Vec<Value>> {
    (0..rows)
        .map(|_| {
            (0..4)
                .map(|_| Value::Int(rng.gen_range(0..DOMAIN)))
                .collect()
        })
        .collect()
}

/// Build the deterministic script for `(seed, which)`: create + load +
/// analyze, then a mix of paper-workload statements, synthetic write
/// DML, index DDL over the §6.1 pool, stats maintenance, checkpoints,
/// and app-state writes.
fn script(seed: u64, which: u64) -> Vec<Op> {
    let mut rng = Prng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ which);
    let mut ops = vec![Op::CreateTable];
    for _ in 0..6 {
        ops.push(Op::InsertBatch(batch(&mut rng, 25)));
    }
    ops.push(Op::Analyze);

    let params = PaperParams {
        table: "t".into(),
        domain: DOMAIN,
        window_len: 10,
    };
    let spec = match which % 3 {
        0 => paper::w1_with(&params),
        1 => paper::w2_with(&params),
        _ => paper::w3_with(&params),
    };
    let trace = generate(&spec, seed);
    let mut stmts = trace.statements().iter().cycle();
    let pool = paper_structures();
    let mut live = vec![false; pool.len()];

    for _ in 0..30 {
        let op = match rng.gen_range(0..10i64) {
            0..=3 => Op::Dml(stmts.next().expect("trace is non-empty").clone()),
            4 | 5 => {
                let v = rng.gen_range(0..DOMAIN);
                if rng.gen_bool(0.6) {
                    Op::Sql(format!(
                        "UPDATE t SET c = {} WHERE a = {v}",
                        rng.gen_range(0..DOMAIN)
                    ))
                } else {
                    Op::Sql(format!("DELETE FROM t WHERE b = {v} AND d = {v}"))
                }
            }
            6 => {
                let i = rng.gen_range(0..pool.len() as i64) as usize;
                live[i] = !live[i];
                if live[i] {
                    Op::CreateIndex(pool[i].clone())
                } else {
                    Op::DropIndex(pool[i].clone())
                }
            }
            7 => Op::InsertBatch(batch(&mut rng, 10)),
            8 => {
                if rng.gen_bool(0.5) {
                    Op::Analyze
                } else {
                    Op::RefreshStats
                }
            }
            _ => {
                if rng.gen_bool(0.6) {
                    Op::Checkpoint
                } else {
                    let n = rng.gen_range(1..64i64) as usize;
                    Op::SetAppState((0..n).map(|i| (rng.next_u64() ^ i as u64) as u8).collect())
                }
            }
        };
        ops.push(op);
    }
    ops
}

fn apply(db: &mut Database, op: &Op) -> cdpd::types::Result<()> {
    match op {
        Op::CreateTable => db.create_table("t", schema()).map(|_| ()),
        Op::InsertBatch(rows) => db
            .insert_many("t", rows.iter().map(Vec::as_slice))
            .map(|_| ()),
        Op::Analyze => db.analyze("t").map(|_| ()),
        Op::RefreshStats => db.refresh_stats("t").map(|_| ()),
        Op::CreateIndex(spec) => db.create_index(spec).map(|_| ()),
        Op::DropIndex(spec) => db.drop_index(spec).map(|_| ()),
        Op::Dml(stmt) => db.execute_dml(stmt).map(|_| ()),
        Op::Sql(sql) => db.execute_sql(sql).map(|_| ()),
        Op::Checkpoint => db.checkpoint(),
        Op::SetAppState(bytes) => db.set_app_state(bytes.clone()),
    }
}

// --- Logical digests ---------------------------------------------------

/// Everything observable about the database's logical state. `None`
/// when the table does not exist yet (kill before the creating commit).
#[derive(Debug, PartialEq)]
struct Digest {
    rows: Vec<Vec<Value>>,
    indexes: Vec<IndexSpec>,
    plans: Vec<(String, u64)>,
    stats: Option<String>,
    app_state: Vec<u8>,
}

fn select(db: &Database, sql: &str) -> (Vec<Vec<Value>>, String, u64) {
    let cdpd::sql::Statement::Select(sel) = cdpd::sql::parse(sql).expect("digest query parses")
    else {
        panic!("not a select: {sql}")
    };
    let r = db.query(&sel).expect("digest query runs");
    (r.rows.unwrap_or_default(), r.plan, r.count)
}

fn digest(db: &mut Database) -> Option<Digest> {
    let stats = match db.stats("t") {
        Err(_) => return None, // table absent
        Ok(s) => s.map(|s| format!("{s:?}")),
    };
    if stats.is_none() {
        // Killed between CREATE TABLE and the first ANALYZE: the
        // stats-less state is itself part of the digest (the `None`
        // above), but the planner refuses to run without statistics —
        // analyze both sides identically so the row scans below work.
        db.analyze("t").expect("digest analyze");
    }
    let (rows, _, _) = select(db, "SELECT * FROM t");
    let plans = [
        "SELECT * FROM t WHERE b = 3",
        "SELECT * FROM t WHERE a = 7 AND c = 2",
        "SELECT * FROM t WHERE c = 1 AND d = 4",
    ]
    .iter()
    .map(|sql| {
        let (_, plan, count) = select(db, sql);
        (plan, count)
    })
    .collect();
    Some(Digest {
        rows,
        indexes: db.index_specs("t").expect("table exists"),
        plans,
        stats,
        app_state: db.app_state(),
    })
}

/// Replay `ops` into a fresh in-memory database and digest it.
fn control_digest(ops: &[Op]) -> Option<Digest> {
    let mut db = Database::new();
    for op in ops {
        apply(&mut db, op).expect("control replay is crash-free");
    }
    digest(&mut db)
}

// --- The kill-at-any-point check ---------------------------------------

fn opts() -> DurableOptions {
    DurableOptions {
        // Small cache so recovery also exercises eviction + backend
        // refetch; small auto-checkpoint threshold so crashes land
        // inside checkpoints the script didn't ask for.
        cache_pages: 16,
        group_commit: 1,
        checkpoint_wal_bytes: 128 * 1024,
    }
}

/// The counting pass: run the whole script crash-free on a durable
/// database and record the VFS op budget plus the commit sequence
/// reached after each logical op.
struct CountRun {
    total_ops: u64,
    seq_after: Vec<u64>,
    initial_seq: u64,
}

fn count_run(ops: &[Op]) -> CountRun {
    let vfs = FaultyVfs::new(Arc::new(MemVfs::new()), u64::MAX, 0);
    let mut db = Database::open_with_vfs(Arc::new(vfs.clone()), opts()).expect("crash-free open");
    let initial_seq = db.committed_seq();
    let mut seq_after = Vec::with_capacity(ops.len());
    for op in ops {
        apply(&mut db, op).expect("crash-free run");
        seq_after.push(db.committed_seq());
    }
    CountRun {
        total_ops: vfs.ops(),
        seq_after,
        initial_seq,
    }
}

/// Run the script against a `FaultyVfs` killing at `kill_at`, reopen
/// the surviving bytes, and check invariants 1–4 of the module docs.
fn check_kill(ops: &[Op], count: &CountRun, kill_at: u64, torn_seed: u64) {
    assert!(kill_at >= 1 && kill_at <= count.total_ops);
    let mem = MemVfs::new();
    let vfs = FaultyVfs::new(Arc::new(mem.clone()), kill_at, torn_seed);

    let mut acked = 0usize;
    // An Err open means the kill fired during the initial open itself.
    if let Ok(mut db) = Database::open_with_vfs(Arc::new(vfs.clone()), opts()) {
        for op in ops {
            match apply(&mut db, op) {
                Ok(()) => acked += 1,
                Err(_) => break,
            }
        }
    }
    assert!(
        vfs.killed(),
        "kill_at {kill_at} within the op budget must fire (determinism)"
    );

    // The crashed process is gone; recovery reopens the surviving bytes
    // through the inner (clean) VFS.
    let mut recovered = Database::open_with_vfs(Arc::new(mem), opts())
        .unwrap_or_else(|e| panic!("recovery failed at kill point {kill_at}: {e}"));
    let seq = recovered.committed_seq();

    // (2) Acknowledged commits survive.
    let acked_seq = match acked {
        0 => count.initial_seq,
        n => count.seq_after[n - 1],
    };
    assert!(
        seq >= acked_seq,
        "kill {kill_at}: recovered seq {seq} lost acknowledged commit {acked_seq}"
    );
    // The crashed op may have durably committed before dying (e.g. in a
    // post-commit auto-checkpoint), but nothing past it can have.
    let max_seq = count.seq_after[acked.min(ops.len() - 1)];
    assert!(
        seq <= max_seq,
        "kill {kill_at}: recovered seq {seq} exceeds last attempted commit {max_seq}"
    );

    // (3) The recovered sequence is one a commit actually produced.
    let prefix_end = count.seq_after.iter().rposition(|&s| s == seq);
    if prefix_end.is_none() {
        assert_eq!(
            seq, count.initial_seq,
            "kill {kill_at}: recovered seq {seq} matches no commit of this script"
        );
    }

    // (4) Bit-identical to the committed-prefix replay.
    let prefix = prefix_end.map_or(&ops[..0], |i| &ops[..=i]);
    assert_eq!(
        digest(&mut recovered),
        control_digest(prefix),
        "kill {kill_at}: recovered state diverges from the committed prefix ({} of {} ops)",
        prefix.len(),
        ops.len()
    );
}

// --- Drivers -----------------------------------------------------------

props! {
    config: PropConfig::with_cases(24);

    /// Random (seed, workload, kill point) cases with shrinking and
    /// persisted failure seeds. The kill fraction maps onto the live
    /// op range, so shrinking it walks the crash earlier.
    fn kill_at_any_point_recovers_to_committed_prefix(
        seed in 0u64..1_000_000,
        which in 0u64..3,
        frac in 0u64..10_000,
    ) {
        let ops = script(*seed, *which);
        let count = count_run(&ops);
        let kill_at = 1 + frac % count.total_ops;
        check_kill(&ops, &count, kill_at, *seed ^ *frac);
    }
}

/// The fixed CI matrix: 8 seeds (cycling through W1/W2/W3) × 50 kill
/// points spread evenly across each script's full mutating-op range —
/// including the initial open, the load, and every checkpoint.
#[test]
fn kill_point_sweep_covers_the_full_op_range() {
    const SEEDS: u64 = 8;
    const POINTS: u64 = 50;
    for seed in 0..SEEDS {
        let which = seed % 3;
        let ops = script(seed * 31 + 5, which);
        let count = count_run(&ops);
        assert!(
            count.total_ops > POINTS,
            "script too small to sweep meaningfully"
        );
        for j in 0..POINTS {
            let kill_at = 1 + j * (count.total_ops - 1) / (POINTS - 1);
            check_kill(&ops, &count, kill_at, seed ^ (j << 8));
        }
    }
}

/// A recovered database is live, not read-only: it accepts new commits
/// and a further clean reopen sees them.
#[test]
fn recovered_database_accepts_new_work() {
    let ops = script(77, 1);
    let count = count_run(&ops);
    let mem = MemVfs::new();
    let vfs = FaultyVfs::new(Arc::new(mem.clone()), count.total_ops / 2, 9);
    if let Ok(mut db) = Database::open_with_vfs(Arc::new(vfs.clone()), opts()) {
        for op in &ops {
            if apply(&mut db, op).is_err() {
                break;
            }
        }
    }
    assert!(vfs.killed());

    let db = Database::open_with_vfs(Arc::new(mem.clone()), opts()).expect("recovery");
    let before = select(&db, "SELECT * FROM t").0.len();
    db.insert(
        "t",
        &[Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)],
    )
    .expect("recovered database accepts inserts");
    db.checkpoint().expect("recovered database checkpoints");
    drop(db);

    let db = Database::open_with_vfs(Arc::new(mem), opts()).expect("second reopen");
    assert_eq!(select(&db, "SELECT * FROM t").0.len(), before + 1);
}

// --- Racing writers ahead of the kill point ----------------------------

/// With the epoch-versioned catalog every mutator takes `&self`, so
/// the kill can now land while **several writer threads race** — WAL
/// commit ordering must still hold. A concurrent insert storm dies at
/// an arbitrary mutating op; afterwards:
///
/// 1. recovery succeeds;
/// 2. the recovered sequence ≥ every sequence any thread observed
///    after an acknowledged commit (acks are never rolled back);
/// 3. every *acknowledged* row survives, and every surviving row was
///    actually attempted (no phantoms, torn rows, or duplicates);
/// 4. heap and surviving indexes agree — point counts through the
///    index equal ground truth recomputed from the full scan — and the
///    recovered database accepts new commits.
#[test]
fn racing_writers_ahead_of_kill_point_keep_acknowledged_commits() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 60;
    const TAG_BASE: i64 = 1_000_000;
    /// Wider than the file-level DOMAIN so point probes are selective
    /// enough for the planner to choose the index.
    const STORM_DOMAIN: i64 = 1_000;

    /// The sweep's `opts()` uses a deliberately tiny cache to exercise
    /// eviction; here the subject is concurrency, so a working-set
    /// sized cache keeps the storm fast.
    fn storm_opts() -> DurableOptions {
        DurableOptions {
            cache_pages: 256,
            group_commit: 1,
            checkpoint_wal_bytes: 128 * 1024,
        }
    }

    /// Serial setup, identical in the counting and kill passes: table,
    /// base load, stats, and an index the storm must maintain.
    fn setup(db: &Database) {
        db.create_table("t", schema()).expect("fresh table");
        let mut rng = Prng::seed_from_u64(5);
        // A base load big enough that the planner prefers the index
        // for point probes (hundreds of heap pages vs a handful of
        // node reads) — one batched commit keeps setup cheap.
        let base: Vec<Vec<Value>> = (0..6_000)
            .map(|_| {
                (0..4)
                    .map(|_| Value::Int(rng.gen_range(0..STORM_DOMAIN)))
                    .collect()
            })
            .collect();
        db.insert_many("t", base.iter().map(Vec::as_slice))
            .expect("base load");
        db.analyze("t").expect("analyze");
        db.create_index(&IndexSpec::new("t", &["a"]))
            .expect("index");
    }

    /// The storm: every writer inserts rows tagged uniquely in `d`,
    /// recording which tags were *acknowledged* and the highest commit
    /// sequence observed after an ack. Writers stop at the first error
    /// (the crash) — nothing retries past the kill.
    fn storm(db: &Database, seed: u64) -> (Vec<i64>, u64) {
        let per_writer: Vec<(Vec<i64>, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..WRITERS)
                .map(|w| {
                    s.spawn(move || {
                        let mut rng = Prng::seed_from_u64(seed ^ (w as u64) << 32);
                        let mut acked = Vec::new();
                        let mut max_seq = 0u64;
                        for i in 0..PER_WRITER {
                            let tag = TAG_BASE + (w * PER_WRITER + i) as i64;
                            let row = vec![
                                Value::Int(rng.gen_range(0..STORM_DOMAIN)),
                                Value::Int(rng.gen_range(0..STORM_DOMAIN)),
                                Value::Int(w as i64),
                                Value::Int(tag),
                            ];
                            match db.insert("t", &row) {
                                Ok(_) => {
                                    acked.push(tag);
                                    max_seq = max_seq.max(db.committed_seq());
                                }
                                Err(_) => break,
                            }
                        }
                        (acked, max_seq)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("writer thread"))
                .collect()
        });
        let mut acked = Vec::new();
        let mut max_seq = 0;
        for (tags, seq) in per_writer {
            acked.extend(tags);
            max_seq = max_seq.max(seq);
        }
        (acked, max_seq)
    }

    for (seed, frac) in [(3u64, 4u64), (17, 11)] {
        // Counting pass: learn the op budget of setup + full storm so
        // the kill can be aimed inside the storm (frac/16ths of it —
        // comfortably under the budget even though the concurrent
        // schedule shifts op totals between runs).
        let vfs = FaultyVfs::new(Arc::new(MemVfs::new()), u64::MAX, 0);
        let db = Database::open_with_vfs(Arc::new(vfs.clone()), storm_opts()).expect("open");
        setup(&db);
        let setup_ops = vfs.ops();
        let (all_tags, _) = storm(&db, seed);
        assert_eq!(all_tags.len(), WRITERS * PER_WRITER, "crash-free storm");
        let storm_ops = vfs.ops() - setup_ops;
        drop(db);

        // Kill pass.
        let kill_at = setup_ops + 1 + storm_ops * frac / 16;
        let mem = MemVfs::new();
        let vfs = FaultyVfs::new(Arc::new(mem.clone()), kill_at, seed);
        let db = Database::open_with_vfs(Arc::new(vfs.clone()), storm_opts()).expect("open");
        setup(&db);
        let (acked, max_acked_seq) = storm(&db, seed);
        assert!(vfs.killed(), "kill {kill_at} must land inside the storm");
        assert!(
            acked.len() < WRITERS * PER_WRITER,
            "the crash must interrupt the storm"
        );
        drop(db);

        // (1) Recovery succeeds on the surviving bytes.
        let recovered = Database::open_with_vfs(Arc::new(mem.clone()), storm_opts())
            .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));

        // (2) Acknowledged sequences survive.
        assert!(
            recovered.committed_seq() >= max_acked_seq,
            "seed {seed}: recovered seq {} lost acknowledged seq {max_acked_seq}",
            recovered.committed_seq()
        );

        // (3) Row-level ack durability, and no phantoms.
        let rows = select(&recovered, "SELECT * FROM t").0;
        let mut recovered_tags: Vec<i64> = rows
            .iter()
            .filter_map(|r| match r[3] {
                Value::Int(tag) if tag >= TAG_BASE => Some(tag),
                _ => None,
            })
            .collect();
        recovered_tags.sort_unstable();
        assert!(
            recovered_tags.windows(2).all(|w| w[0] < w[1]),
            "seed {seed}: a storm row was recovered twice"
        );
        for tag in &acked {
            assert!(
                recovered_tags.binary_search(tag).is_ok(),
                "seed {seed}: acknowledged row {tag} lost by recovery"
            );
        }
        // Tags are dealt densely from TAG_BASE, so range-checking is
        // enough to rule out torn / invented rows.
        assert!(
            recovered_tags
                .iter()
                .all(|t| (TAG_BASE..TAG_BASE + (WRITERS * PER_WRITER) as i64).contains(t)),
            "seed {seed}: recovery invented a row no writer attempted"
        );

        // (4) Heap and index agree, and the database is live.
        assert!(
            recovered
                .index_specs("t")
                .expect("table exists")
                .contains(&IndexSpec::new("t", &["a"])),
            "seed {seed}: the index created before the storm must survive"
        );
        let mut index_probes = 0;
        for v in (0..STORM_DOMAIN).step_by(3) {
            let truth = rows.iter().filter(|r| r[0] == Value::Int(v)).count() as u64;
            let (_, plan, count) = select(&recovered, &format!("SELECT * FROM t WHERE a = {v}"));
            assert_eq!(
                count, truth,
                "seed {seed}: index diverges from heap at a={v}"
            );
            index_probes += u64::from(plan.contains("Index"));
        }
        // The planner may legitimately SeqScan sparse values, but the
        // integrity sweep is vacuous unless the tree answered some of
        // the probes.
        assert!(
            index_probes > 0,
            "seed {seed}: no probe consulted the surviving index"
        );
        let n = rows.len();
        recovered
            .insert(
                "t",
                &[Value::Int(0), Value::Int(0), Value::Int(0), Value::Int(0)],
            )
            .expect("recovered database accepts inserts");
        drop(recovered);
        let reopened = Database::open_with_vfs(Arc::new(mem), storm_opts()).expect("second reopen");
        assert_eq!(select(&reopened, "SELECT * FROM t").0.len(), n + 1);
    }
}

// --- Advisor warm resume -----------------------------------------------

const ADV_ROWS: i64 = 5_000;
const ADV_WINDOW: usize = 25;

fn adv_db() -> &'static Database {
    static DB: std::sync::OnceLock<Database> = std::sync::OnceLock::new();
    DB.get_or_init(|| paper_database(ADV_ROWS, 7))
}

fn adv_spec(which: u64) -> cdpd::workload::WorkloadSpec {
    let params = paper_params(ADV_ROWS, ADV_WINDOW);
    match which % 3 {
        0 => paper::w1_with(&params),
        1 => paper::w2_with(&params),
        _ => paper::w3_with(&params),
    }
}

fn adv_options(bounded: bool) -> OnlineOptions {
    OnlineOptions {
        advisor: AdvisorOptions {
            k: Some(2),
            window_len: ADV_WINDOW,
            max_structures_per_config: Some(1),
            ..AdvisorOptions::default()
        },
        max_windows: bounded.then_some(4),
        ..OnlineOptions::default()
    }
}

/// Decision equality modulo `solve_nanos` (wall-clock, by definition
/// not reproducible across runs).
#[track_caller]
fn assert_same_decisions(control: &[OnlineDecision], resumed: &[OnlineDecision]) {
    assert_eq!(control.len(), resumed.len(), "decision counts differ");
    for (i, (c, r)) in control.iter().zip(resumed).enumerate() {
        assert_eq!(c.window, r.window, "decision {i}: window");
        assert_eq!(c.config, r.config, "decision {i}: config");
        assert_eq!(c.specs, r.specs, "decision {i}: specs");
        assert_eq!(c.changed, r.changed, "decision {i}: changed");
        assert_eq!(
            c.degradation.to_bits(),
            r.degradation.to_bits(),
            "decision {i}: degradation"
        );
        assert_eq!(c.resolved, r.resolved, "decision {i}: resolved");
        assert_eq!(c.changes_used, r.changes_used, "decision {i}: changes_used");
        assert_eq!(c.suggested_k, r.suggested_k, "decision {i}: suggested_k");
    }
}

props! {
    config: PropConfig::with_cases(6);

    /// Save/restore at an arbitrary split point is invisible: the
    /// resumed session emits exactly the decisions the uninterrupted
    /// control emits, and the hindsight recommendation matches.
    fn advisor_resumes_warm_after_save_restore(
        seed in 0u64..1_000_000,
        which in 0u64..3,
        split in 1u64..10,
        bounded in 0u64..2,
    ) {
        let db = adv_db();
        let trace = generate(&adv_spec(*which), *seed);
        let stmts = trace.statements();
        let cut = ((stmts.len() as u64 * split / 10) as usize).clamp(1, stmts.len() - 1);
        let options = adv_options(*bounded == 1);

        let mut control = OnlineAdvisor::new(db, "t", options.clone()).expect("opens");
        control.ingest_all(db, stmts).expect("control ingests");

        let mut first = OnlineAdvisor::new(db, "t", options.clone()).expect("opens");
        first.ingest_all(db, &stmts[..cut]).expect("first half ingests");
        let blob = first.save_state();
        let mut resumed =
            OnlineAdvisor::restore(db, options, &blob).expect("state restores");
        resumed
            .ingest_all(db, &stmts[cut..])
            .expect("second half ingests");

        assert_same_decisions(control.decisions(), resumed.decisions());
        let c = control.finish(db).expect("control recommends");
        let r = resumed.finish(db).expect("resumed recommends");
        assert_eq!(c.schedule, r.schedule, "hindsight schedules must match");
        assert_eq!(c.structures, r.structures, "vocabularies must match");
    }
}

/// End to end through the durable engine: the advisor's state rides the
/// catalog (`set_app_state`), survives a real restart, and the resumed
/// session decides exactly like an uninterrupted one.
#[test]
fn advisor_state_survives_database_restart() {
    let vfs = MemVfs::new();
    let db = Database::open_with_vfs(Arc::new(vfs.clone()), DurableOptions::default())
        .expect("fresh durable database");
    db.create_table("t", schema()).unwrap();
    let mut rng = Prng::seed_from_u64(11);
    let rows: Vec<Vec<Value>> = (0..2_000)
        .map(|_| (0..4).map(|_| Value::Int(rng.gen_range(0..400))).collect())
        .collect();
    db.insert_many("t", rows.iter().map(Vec::as_slice)).unwrap();
    db.analyze("t").unwrap();

    let params = PaperParams {
        table: "t".into(),
        domain: 400,
        window_len: ADV_WINDOW,
    };
    let trace = generate(&paper::w2_with(&params), 13);
    let stmts = trace.statements();
    let cut = stmts.len() / 2;
    let options = OnlineOptions {
        advisor: AdvisorOptions {
            k: Some(2),
            window_len: ADV_WINDOW,
            structures: Some(paper_structures()),
            max_structures_per_config: Some(1),
            ..AdvisorOptions::default()
        },
        ..OnlineOptions::default()
    };

    let mut session = OnlineAdvisor::new(&db, "t", options.clone()).expect("opens");
    session.ingest_all(&db, &stmts[..cut]).expect("ingests");
    db.set_app_state(session.save_state())
        .expect("state persists");
    drop((session, db));

    // Restart: reopen the surviving store, pull the blob back out of
    // the catalog, resume, and finish the trace.
    let db = Database::open_with_vfs(Arc::new(vfs.clone()), DurableOptions::default())
        .expect("restart recovers");
    let mut resumed =
        OnlineAdvisor::restore(&db, options.clone(), &db.app_state()).expect("resumes warm");
    resumed.ingest_all(&db, &stmts[cut..]).expect("ingests");

    let mut control = OnlineAdvisor::new(&db, "t", options).expect("opens");
    control.ingest_all(&db, stmts).expect("control ingests");

    assert_same_decisions(control.decisions(), resumed.decisions());
    let c = control.finish(&db).expect("control recommends");
    let r = resumed.finish(&db).expect("resumed recommends");
    assert_eq!(c.schedule, r.schedule);
}

/// Restore is strict: wrong options and damaged blobs are rejected
/// cleanly instead of resuming a half-wrong session.
#[test]
fn restore_rejects_mismatched_options_and_corrupt_state() {
    let db = adv_db();
    let trace = generate(&adv_spec(0), 3);
    let options = adv_options(false);
    let mut session = OnlineAdvisor::new(db, "t", options.clone()).expect("opens");
    session.ingest_all(db, trace.statements()).expect("ingests");
    let blob = session.save_state();

    // Sanity: the blob itself restores.
    OnlineAdvisor::restore(db, options.clone(), &blob).expect("intact blob restores");

    let mut wrong = options.clone();
    wrong.advisor.window_len = ADV_WINDOW + 1;
    assert!(matches!(
        OnlineAdvisor::restore(db, wrong, &blob),
        Err(cdpd::types::Error::InvalidArgument(_))
    ));

    let mut wrong = options.clone();
    wrong.max_windows = Some(7);
    assert!(matches!(
        OnlineAdvisor::restore(db, wrong, &blob),
        Err(cdpd::types::Error::InvalidArgument(_))
    ));

    for cut in [0, 4, blob.len() / 2, blob.len() - 1] {
        assert!(
            OnlineAdvisor::restore(db, options.clone(), &blob[..cut]).is_err(),
            "truncation at {cut} must not restore"
        );
    }
    let mut garbled = blob.clone();
    garbled[0] ^= 0xFF;
    assert!(matches!(
        OnlineAdvisor::restore(db, options, &garbled),
        Err(cdpd::types::Error::Corrupt(_))
    ));
}

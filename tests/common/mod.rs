//! Shared scaffolding for the paper-scenario integration tests: a
//! scaled-down version of the paper's experimental database (one table,
//! four uniform integer columns, ~5 rows per distinct value) plus the
//! hand-picked candidate structures of §6.1.

use cdpd::engine::{Database, IndexSpec};
use cdpd::types::{ColumnDef, Schema, Value};
use cdpd::workload::paper::PaperParams;
use cdpd_testkit::Prng;

/// Rows : domain ratio matching the paper (2.5M rows over 500k values).
pub const ROWS_PER_VALUE: i64 = 5;

/// Build and analyze the experimental table at a given scale.
#[allow(dead_code)] // each integration-test binary uses a subset
pub fn paper_database(rows: i64, seed: u64) -> Database {
    let db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ]),
    )
    .expect("fresh database");
    let domain = rows / ROWS_PER_VALUE;
    let mut rng = Prng::seed_from_u64(seed);
    for _ in 0..rows {
        let row: Vec<Value> = (0..4)
            .map(|_| Value::Int(rng.gen_range(0..domain)))
            .collect();
        db.insert("t", &row).expect("row matches schema");
    }
    db.analyze("t").expect("table exists");
    db
}

/// A wide-schema table for vocabulary-scaling tests: `n_cols` integer
/// columns `c0..c{n-1}`, so permutation index specs can push the
/// candidate count far past the old 64-structure encoding cap.
#[allow(dead_code)] // each integration-test binary uses a subset
pub fn wide_database(rows: i64, n_cols: usize, seed: u64) -> Database {
    let db = Database::new();
    let cols: Vec<ColumnDef> = (0..n_cols)
        .map(|i| ColumnDef::int(format!("c{i}")))
        .collect();
    db.create_table("w", Schema::new(cols))
        .expect("fresh database");
    let domain = (rows / ROWS_PER_VALUE).max(2);
    let mut rng = Prng::seed_from_u64(seed);
    for _ in 0..rows {
        let row: Vec<Value> = (0..n_cols)
            .map(|_| Value::Int(rng.gen_range(0..domain)))
            .collect();
        db.insert("w", &row).expect("row matches schema");
    }
    db.analyze("w").expect("table exists");
    db
}

/// Workload parameters scaled to the same database.
#[allow(dead_code)] // each integration-test binary uses a subset
pub fn paper_params(rows: i64, window_len: usize) -> PaperParams {
    PaperParams {
        table: "t".into(),
        domain: rows / ROWS_PER_VALUE,
        window_len,
    }
}

/// The §6.1 design space: I(a), I(b), I(c), I(d), I(a,b), I(c,d).
#[allow(dead_code)] // each integration-test binary uses a subset
pub fn paper_structures() -> Vec<IndexSpec> {
    vec![
        IndexSpec::new("t", &["a"]),
        IndexSpec::new("t", &["b"]),
        IndexSpec::new("t", &["c"]),
        IndexSpec::new("t", &["d"]),
        IndexSpec::new("t", &["a", "b"]),
        IndexSpec::new("t", &["c", "d"]),
    ]
}

//! Closing the predicted-vs-actual loop (DESIGN.md §16): when the
//! calibration oracle is backed by the *same* cost model the executor
//! uses — a what-if engine carrying the live materialized B-tree
//! shapes ([`cdpd::engine::WhatIfEngine::snapshot_live`]) — its
//! per-statement predictions must reconcile with the executor's model
//! account **exactly**, across the paper's W1–W3 workloads, seeds,
//! design schedules, and write-bearing traces. And when the model is
//! deliberately broken (an injected scale on index-backed predictions),
//! the drift watchdog must catch it: that asymmetry — zero daylight
//! when honest, loud when not — is what makes the calibration layer
//! evidence rather than noise.

mod common;

use cdpd::engine::IndexSpec;
use cdpd::replay::{replay_calibrated, replay_with};
use cdpd::workload::{generate, paper, QueryMix, Template, Trace, WorkloadSpec};
use cdpd::{CalibrationMode, CalibrationOptions, PathKind};
use common::{paper_database, paper_params, paper_structures, ROWS_PER_VALUE};

const ROWS: i64 = 6_000;
const WINDOW: usize = 30;

/// A rotating design schedule over the §6.1 structures: no-index,
/// single-index, and composite windows, so the replay exercises seq
/// scans, seeks, covering indexes, and real transitions.
fn rotating_schedule(windows: usize) -> Vec<Vec<IndexSpec>> {
    let s = paper_structures(); // a, b, c, d, ab, cd
    let cycle: [Vec<IndexSpec>; 6] = [
        vec![s[0].clone()],
        vec![s[0].clone(), s[4].clone()],
        vec![],
        vec![s[2].clone(), s[5].clone()],
        vec![s[1].clone(), s[3].clone()],
        vec![s[5].clone()],
    ];
    (0..windows)
        .map(|w| cycle[w % cycle.len()].clone())
        .collect()
}

/// Every window fully indexed: point queries on any column are
/// index-backed, so the injected index-cost scale touches (nearly)
/// every prediction.
fn indexed_schedule(windows: usize) -> Vec<Vec<IndexSpec>> {
    let s = paper_structures();
    (0..windows)
        .map(|_| vec![s[0].clone(), s[1].clone(), s[2].clone(), s[3].clone()])
        .collect()
}

/// A six-window trace with real updates, so the write path (find phase
/// plus index maintenance, with shapes moving mid-window) is covered.
fn write_trace(seed: u64) -> Trace {
    let domain = ROWS / ROWS_PER_VALUE;
    let reads = QueryMix::new("reads", &[("a", 60), ("c", 40)]).expect("weights");
    let etl = QueryMix::with_templates(
        "etl",
        vec![
            (
                Template::Update {
                    set_column: "b".into(),
                    where_column: "a".into(),
                },
                50,
            ),
            (Template::Point { column: "c".into() }, 50),
        ],
    )
    .expect("weights");
    let windows = vec![reads.clone(), etl.clone(), etl, reads.clone(), reads];
    let spec = WorkloadSpec::new("t", domain, WINDOW, windows).expect("valid spec");
    generate(&spec, seed)
}

fn model_account() -> CalibrationOptions {
    CalibrationOptions {
        mode: CalibrationMode::ModelAccount,
        ..Default::default()
    }
}

/// The reconciliation property: over W1, W2, and W3 at multiple seeds,
/// every statement's live-shape oracle prediction equals the
/// executor's model account to the page — zero drift, zero alerts.
#[test]
fn oracle_reconciles_with_executor_exactly_across_w1_w2_w3() {
    let params = paper_params(ROWS, WINDOW);
    let specs: [(&str, WorkloadSpec); 3] = [
        ("W1", paper::w1_with(&params)),
        ("W2", paper::w2_with(&params)),
        ("W3", paper::w3_with(&params)),
    ];
    for (name, spec) in specs {
        for seed in [11, 42] {
            let trace = generate(&spec, seed);
            let db = paper_database(ROWS, seed);
            let schedule = rotating_schedule(trace.len().div_ceil(WINDOW));
            let report = replay_calibrated(
                &db,
                &trace,
                WINDOW,
                &schedule,
                Some(&[]),
                2,
                model_account(),
            )
            .expect("replay runs");
            let calib = report.calibration.expect("replay always calibrates");
            assert_eq!(
                calib.samples,
                trace.len() as u64,
                "{name} seed {seed}: every statement is paired"
            );
            assert!(
                calib.is_exact(),
                "{name} seed {seed}: {} of {} predictions diverged (abs err {} IOs)",
                calib.samples - calib.exact,
                calib.samples,
                calib.abs_err_ios
            );
            assert_eq!(calib.predicted_ios, calib.actual_ios, "{name} seed {seed}");
            assert_eq!(calib.abs_err_ios, 0, "{name} seed {seed}");
            assert_eq!(calib.drift, 0.0, "{name} seed {seed}");
            assert_eq!(calib.signed_error, 0.0, "{name} seed {seed}");
            assert_eq!(calib.alerts, 0, "{name} seed {seed}");
            assert!(!calib.tripped, "{name} seed {seed}");
            // The rotating schedule genuinely exercised both scan and
            // index paths — exactness over a single path proves less.
            let paths: Vec<PathKind> = calib.by_path.iter().map(|(p, _)| *p).collect();
            assert!(paths.contains(&PathKind::SeqScan), "{name}: {paths:?}");
            assert!(paths.contains(&PathKind::IndexSeek), "{name}: {paths:?}");
        }
    }
}

/// The reconciliation property extends to the predicate-tree paths:
/// over the range/IN-heavy W4 and disjunction-heavy W5 workloads, with
/// schedules that light up rowid intersections and unions, the
/// live-shape oracle still reconciles with the executor exactly — and
/// the per-path breakdown proves the new `IndexAnd`/`IndexOr` paths
/// (not just the classic ones) carried real traffic.
#[test]
fn oracle_reconciles_exactly_on_intersection_and_union_paths() {
    let params = paper_params(ROWS, WINDOW);
    let specs: [(&str, WorkloadSpec); 2] = [
        ("W4", paper::w4_with(&params)),
        ("W5", paper::w5_with(&params)),
    ];
    let mut new_paths_hit = 0u64;
    for (name, spec) in specs {
        for seed in [13, 47] {
            let trace = generate(&spec, seed);
            let db = paper_database(ROWS, seed);
            // All four single-column indexes: EqPair conjunctions can
            // intersect, OrPair/IN statements can union.
            let schedule = indexed_schedule(trace.len().div_ceil(WINDOW));
            let report = replay_calibrated(
                &db,
                &trace,
                WINDOW,
                &schedule,
                Some(&[]),
                2,
                model_account(),
            )
            .expect("replay runs");
            let calib = report.calibration.expect("replay always calibrates");
            assert_eq!(calib.samples, trace.len() as u64, "{name} seed {seed}");
            assert!(
                calib.is_exact(),
                "{name} seed {seed}: {} of {} predictions diverged (abs err {} IOs)",
                calib.samples - calib.exact,
                calib.samples,
                calib.abs_err_ios
            );
            assert_eq!(calib.abs_err_ios, 0, "{name} seed {seed}");
            assert_eq!(calib.alerts, 0, "{name} seed {seed}");
            for (path, stats) in &calib.by_path {
                if matches!(path, PathKind::IndexAnd | PathKind::IndexOr) {
                    new_paths_hit += stats.samples;
                    assert_eq!(
                        stats.predicted_ios, stats.actual_ios,
                        "{name} seed {seed}: {path:?} reconciles per-path too"
                    );
                }
            }
        }
    }
    assert!(
        new_paths_hit > 100,
        "the W4/W5 sweeps must actually exercise the multi-index paths, \
         got {new_paths_hit} statements"
    );
}

/// Writes reconcile too: predictions taken against the shapes each
/// write actually meets (fresh snapshot per write — index maintenance
/// splits pages mid-window) stay exact, including the maintenance
/// term.
#[test]
fn oracle_reconciles_writes_exactly() {
    for seed in [5, 29] {
        let trace = write_trace(seed);
        let db = paper_database(ROWS, seed);
        let schedule = rotating_schedule(trace.len().div_ceil(WINDOW));
        let report = replay_calibrated(&db, &trace, WINDOW, &schedule, None, 1, model_account())
            .expect("replay runs");
        let calib = report.calibration.expect("replay always calibrates");
        assert!(
            calib.is_exact(),
            "seed {seed}: {} of {} predictions diverged",
            calib.samples - calib.exact,
            calib.samples
        );
        let write = calib
            .by_path
            .iter()
            .find(|(p, _)| *p == PathKind::Write)
            .map(|(_, s)| *s)
            .expect("trace contains updates");
        assert!(write.samples > 0);
        assert_eq!(write.predicted_ios, write.actual_ios, "seed {seed}: writes");
    }
}

/// The watchdog property: the same exact oracle with its index costs
/// scaled 8× — a deliberately mis-costed model — walks the drift out
/// of the band within the first windows and trips the watchdog, while
/// the unscaled control run stays silent.
#[test]
fn injected_index_mis_costing_trips_the_drift_watchdog() {
    let params = paper_params(ROWS, WINDOW);
    let trace = generate(&paper::w1_with(&params), 42);
    let schedule = indexed_schedule(trace.len().div_ceil(WINDOW));

    let db = paper_database(ROWS, 42);
    let control = replay_calibrated(&db, &trace, WINDOW, &schedule, None, 2, model_account())
        .expect("replay runs")
        .calibration
        .expect("replay always calibrates");
    assert!(control.is_exact(), "control run must reconcile");
    assert_eq!(control.alerts, 0, "control run must not alert");

    let db = paper_database(ROWS, 42);
    let skewed = replay_calibrated(
        &db,
        &trace,
        WINDOW,
        &schedule,
        None,
        2,
        CalibrationOptions {
            index_cost_scale: 8.0,
            ..model_account()
        },
    )
    .expect("replay runs")
    .calibration
    .expect("replay always calibrates");
    assert!(!skewed.is_exact(), "scaled predictions must diverge");
    assert!(
        skewed.alerts >= 1,
        "watchdog must trip: drift {} band {}",
        skewed.drift,
        skewed.band
    );
    assert!(
        skewed.tripped,
        "drift {} stays outside the band",
        skewed.drift
    );
    assert!(
        skewed.drift > skewed.band,
        "systematic overestimate drives drift positive: {}",
        skewed.drift
    );
    assert!(skewed.overestimates > 0);
}

/// Calibration inherits the replay's determinism: the default
/// measured-I/O pass produces bit-identical reports (drift included)
/// at any thread count.
#[test]
fn calibration_is_bit_identical_across_thread_counts() {
    let params = paper_params(ROWS, WINDOW);
    let trace = generate(&paper::w2_with(&params), 7);
    let schedule = rotating_schedule(trace.len().div_ceil(WINDOW));
    let run = |threads: usize| {
        let db = paper_database(ROWS, 7);
        replay_with(&db, &trace, WINDOW, &schedule, Some(&[]), threads)
            .expect("replay runs")
            .calibration
            .expect("replay always calibrates")
    };
    let serial = run(1);
    assert_eq!(serial.samples, trace.len() as u64);
    for threads in [2, 8] {
        let parallel = run(threads);
        assert_eq!(serial.samples, parallel.samples, "threads {threads}");
        assert_eq!(
            serial.predicted_ios, parallel.predicted_ios,
            "threads {threads}"
        );
        assert_eq!(serial.actual_ios, parallel.actual_ios, "threads {threads}");
        assert_eq!(
            serial.abs_err_ios, parallel.abs_err_ios,
            "threads {threads}"
        );
        assert_eq!(serial.exact, parallel.exact, "threads {threads}");
        assert_eq!(
            serial.drift.to_bits(),
            parallel.drift.to_bits(),
            "threads {threads}: drift folds in window order"
        );
        assert_eq!(serial.alerts, parallel.alerts, "threads {threads}");
        assert_eq!(serial.by_path, parallel.by_path, "threads {threads}");
    }
}

//! Reproduction of the paper's Table 2 at test scale: the recommended
//! dynamic designs for workload W1, unconstrained (`k = ∞`) and
//! constrained (`k = 2`).
//!
//! Expected shapes (paper, Table 2):
//! * unconstrained — tracks every minor shift: `I(a,b)` during mix-A
//!   windows, `I(b)` during mix-B windows, `I(c,d)` during C, `I(d)`
//!   during D;
//! * `k = 2` — tracks only the major shifts: `I(a,b)` for phase 1,
//!   `I(c,d)` for phase 2, `I(a,b)` for phase 3.

mod common;

use cdpd::workload::{generate, paper};
use cdpd::{Advisor, AdvisorOptions, Algorithm};
use common::{paper_database, paper_params, paper_structures};

const ROWS: i64 = 30_000;
const WINDOW: usize = 200;

fn advisor_options(k: Option<usize>) -> AdvisorOptions {
    AdvisorOptions {
        k,
        window_len: WINDOW,
        structures: Some(paper_structures()),
        max_structures_per_config: Some(1), // the paper's ≤1-index regime
        end_empty: true,
        algorithm: Algorithm::KAware,
        ..Default::default()
    }
}

/// The paper-style name of the index recommended for window `w`.
fn design_label(rec: &cdpd::Recommendation, w: usize) -> String {
    let specs = rec.specs_at(w);
    match specs.as_slice() {
        [] => "-".to_owned(),
        [one] => one.display_short(),
        many => many
            .iter()
            .map(|s| s.display_short())
            .collect::<Vec<_>>()
            .join("+"),
    }
}

#[test]
fn table2_unconstrained_tracks_minor_shifts() {
    let db = paper_database(ROWS, 1);
    let trace = generate(&paper::w1_with(&paper_params(ROWS, WINDOW)), 42);
    let rec = Advisor::new(&db, "t")
        .options(advisor_options(None))
        .recommend(&trace)
        .expect("advisor runs");

    for (w, mix) in paper::W1_PATTERN.iter().enumerate() {
        let got = design_label(&rec, w);
        let want = match mix {
            'A' => "I(a,b)",
            'B' => "I(b)",
            'C' => "I(c,d)",
            'D' => "I(d)",
            _ => unreachable!(),
        };
        assert_eq!(got, want, "window {w} (mix {mix}): {}", rec.describe());
    }
}

#[test]
fn table2_k2_tracks_major_shifts_only() {
    let db = paper_database(ROWS, 1);
    let trace = generate(&paper::w1_with(&paper_params(ROWS, WINDOW)), 42);
    let rec = Advisor::new(&db, "t")
        .options(advisor_options(Some(2)))
        .recommend(&trace)
        .expect("advisor runs");

    assert_eq!(rec.schedule.changes, 2, "{}", rec.describe());
    let segments = rec.segment_specs();
    assert_eq!(segments.len(), 3, "{}", rec.describe());
    assert_eq!(segments[0].0, 0..10, "phase 1 covers windows 0..10");
    assert_eq!(segments[1].0, 10..20);
    assert_eq!(segments[2].0, 20..30);
    assert_eq!(design_label(&rec, 0), "I(a,b)");
    assert_eq!(design_label(&rec, 10), "I(c,d)");
    assert_eq!(design_label(&rec, 20), "I(a,b)");
}

#[test]
fn constrained_is_costlier_than_unconstrained_on_w1() {
    // Table 2's closing observation: the unconstrained design is by
    // definition optimal for W1; the k=2 design is suboptimal for W1
    // (the paper measured it 14% slower).
    let db = paper_database(ROWS, 1);
    let trace = generate(&paper::w1_with(&paper_params(ROWS, WINDOW)), 42);
    let unc = Advisor::new(&db, "t")
        .options(advisor_options(None))
        .recommend(&trace)
        .unwrap();
    let k2 = Advisor::new(&db, "t")
        .options(advisor_options(Some(2)))
        .recommend(&trace)
        .unwrap();
    assert!(
        k2.schedule.total_cost() > unc.schedule.total_cost(),
        "k2 {} vs unconstrained {}",
        k2.schedule.total_cost(),
        unc.schedule.total_cost()
    );
    // ... but within a modest factor (the paper's gap was 14%).
    let ratio = k2.schedule.total_cost().raw() as f64 / unc.schedule.total_cost().raw() as f64;
    assert!(
        ratio < 1.6,
        "estimated gap should stay moderate, got {ratio:.2}"
    );
}

#[test]
fn all_constrained_algorithms_agree_or_bound_the_optimum() {
    let db = paper_database(ROWS, 1);
    let trace = generate(&paper::w1_with(&paper_params(ROWS, WINDOW)), 42);
    let solve = |alg: Algorithm| {
        Advisor::new(&db, "t")
            .options(AdvisorOptions {
                algorithm: alg,
                ..advisor_options(Some(2))
            })
            .recommend(&trace)
            .unwrap()
    };
    let optimal = solve(Algorithm::KAware);
    // §5's caveat, observed for real: at k = 2 an enormous number of
    // cheaper many-change designs precede the first 2-change one, so
    // path ranking exhausts any practical budget on this instance. The
    // anytime-optimal claim is exercised at small scale in cdpd-core's
    // unit and property tests; here we assert the documented failure
    // mode (and that it is reported as such, enabling hybrid fallback).
    let ranked = Advisor::new(&db, "t")
        .options(AdvisorOptions {
            algorithm: Algorithm::Ranking { max_paths: 20_000 },
            ..advisor_options(Some(2))
        })
        .recommend(&trace);
    let err = ranked.expect_err("k=2 ranking must exhaust a small budget here");
    assert!(err.to_string().contains("budget"), "{err}");

    for alg in [Algorithm::Merging, Algorithm::Hybrid] {
        let s = solve(alg);
        assert!(s.schedule.changes <= 2, "{alg:?}");
        assert!(
            s.schedule.total_cost() >= optimal.schedule.total_cost(),
            "{alg:?} cannot beat the optimum over the same candidates"
        );
        let ratio =
            s.schedule.total_cost().raw() as f64 / optimal.schedule.total_cost().raw() as f64;
        assert!(ratio < 1.25, "{alg:?} is near-optimal here, got {ratio:.3}");
    }

    // Greedy derives its own candidate set (not limited to the paper's
    // ≤1-index regime), so it may legitimately land on either side of
    // the restricted optimum — it only has to respect the budget and
    // stay in the same ballpark.
    let g = solve(Algorithm::Greedy);
    assert!(g.schedule.changes <= 2);
    let ratio = g.schedule.total_cost().raw() as f64 / optimal.schedule.total_cost().raw() as f64;
    assert!((0.4..1.6).contains(&ratio), "greedy ratio {ratio:.3}");
}

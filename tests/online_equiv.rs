//! The anchor invariant of the online pipeline: with an unbounded
//! window, streaming a trace through [`OnlineAdvisor`] and calling
//! [`OnlineAdvisor::finish`] reproduces the batch
//! [`Advisor::recommend`] answer **bit-identically** — same schedule
//! (configs, costs, change count), same structure vocabulary, same
//! problem boundary conditions.
//!
//! The property is checked over all three paper workloads (W1 steady,
//! W2 drifting, W3 out-of-phase) across random generator seeds and
//! change budgets, and once more with the explicit §6.1 design space,
//! a space bound, and `end_empty` — the paper's experimental regime.
//! A final test runs the [`cdpd::replay::drive`] loop end to end:
//! statements executed against the real engine, decisions applied as
//! DDL, statistics refreshed between windows.

mod common;

use cdpd::core::Schedule;
use cdpd::engine::Database;
use cdpd::workload::{generate, paper, Trace};
use cdpd::{Advisor, AdvisorOptions, OnlineAdvisor, OnlineOptions, Recommendation};
use cdpd_testkit::prop::Config as PropConfig;
use cdpd_testkit::props;
use common::{paper_database, paper_params, paper_structures};
use std::sync::OnceLock;

const ROWS: i64 = 10_000;
const WINDOW: usize = 50;

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| paper_database(ROWS, 7))
}

fn spec_for(which: u64) -> cdpd::workload::WorkloadSpec {
    let params = paper_params(ROWS, WINDOW);
    match which % 3 {
        0 => paper::w1_with(&params),
        1 => paper::w2_with(&params),
        _ => paper::w3_with(&params),
    }
}

fn online_finish(db: &Database, trace: &Trace, options: &AdvisorOptions) -> Recommendation {
    let mut online = OnlineAdvisor::new(
        db,
        "t",
        OnlineOptions {
            advisor: options.clone(),
            ..OnlineOptions::default()
        },
    )
    .expect("session opens");
    online
        .ingest_all(db, trace.statements())
        .expect("trace ingests");
    online.finish(db).expect("finish recommends")
}

#[track_caller]
fn assert_bit_identical(batch: &Recommendation, online: &Recommendation) {
    let b: &Schedule = &batch.schedule;
    let o: &Schedule = &online.schedule;
    assert_eq!(b, o, "schedules (configs, costs, changes) must match");
    assert_eq!(
        batch.structures, online.structures,
        "structure vocabularies must match bit for bit"
    );
    assert_eq!(batch.window_len, online.window_len);
    assert_eq!(batch.problem.initial, online.problem.initial);
    assert_eq!(batch.problem.final_config, online.problem.final_config);
    assert_eq!(batch.problem.space_bound, online.problem.space_bound);
    assert_eq!(
        batch.problem.count_initial_change,
        online.problem.count_initial_change
    );
}

props! {
    config: PropConfig::with_cases(6);

    fn online_finish_matches_batch_bit_identically(
        seed in 0u64..1_000_000,
        which in 0u64..3,
        k in 0u64..4
    ) {
        let db = db();
        let trace = generate(&spec_for(*which), *seed);
        let options = AdvisorOptions {
            k: (*k > 0).then_some(*k as usize),
            window_len: WINDOW,
            max_structures_per_config: Some(1),
            ..AdvisorOptions::default()
        };
        let batch = Advisor::new(db, "t")
            .options(options.clone())
            .recommend(&trace)
            .expect("batch advisor runs");
        let online = online_finish(db, &trace, &options);
        assert_bit_identical(&batch, &online);
    }
}

/// The paper's experimental regime — explicit §6.1 design space, space
/// bound, final configuration pinned empty, k-aware solver — streamed
/// and batch answers still agree bit for bit.
#[test]
fn equivalence_holds_in_the_paper_regime() {
    let db = db();
    let trace = generate(&spec_for(0), 42);
    let options = AdvisorOptions {
        k: Some(3),
        window_len: WINDOW,
        structures: Some(paper_structures()),
        max_structures_per_config: Some(1),
        space_bound_pages: Some(1 << 20),
        end_empty: true,
        algorithm: cdpd::Algorithm::KAware,
        ..AdvisorOptions::default()
    };
    let batch = Advisor::new(db, "t")
        .options(options.clone())
        .recommend(&trace)
        .expect("batch advisor runs");
    let online = online_finish(db, &trace, &options);
    assert_bit_identical(&batch, &online);
}

/// End-to-end online loop: `drive` executes every statement against
/// the engine, refreshes statistics at each window boundary, applies
/// emitted decisions as real DDL, and the advisor's final hindsight
/// recommendation still matches the batch answer over the same trace.
#[test]
fn drive_executes_decisions_and_finish_still_matches_batch() {
    let db = paper_database(ROWS, 7);
    let trace = generate(&spec_for(1), 9);
    let options = AdvisorOptions {
        k: Some(4),
        window_len: WINDOW,
        max_structures_per_config: Some(1),
        ..AdvisorOptions::default()
    };
    let mut online = OnlineAdvisor::new(
        &db,
        "t",
        OnlineOptions {
            advisor: options.clone(),
            ..OnlineOptions::default()
        },
    )
    .expect("session opens");

    let report = cdpd::replay::drive(&db, &trace, &mut online).expect("drive runs");
    let windows = trace.len().div_ceil(WINDOW);
    assert_eq!(report.stages.len(), windows);
    assert_eq!(report.statements, trace.len() as u64);
    assert_eq!(online.decisions().len(), windows);
    assert!(report.exec_io() > 0);

    // The read-only trace left the stats untouched, so hindsight
    // equivalence survives the drive.
    let batch = Advisor::new(&db, "t")
        .options(options.clone())
        .recommend(&trace)
        .expect("batch advisor runs");
    let fin = online.finish(&db).expect("finish recommends");
    assert_bit_identical(&batch, &fin);

    // Decisions that reported a change were actually applied: the
    // database's live indexes entering the last window match the
    // second-to-last decision's specs.
    if windows >= 2 {
        let applied = &online.decisions()[windows - 2];
        if applied.changed {
            let live = db.index_specs("t").expect("table exists");
            for spec in &applied.specs {
                assert!(
                    live.contains(spec),
                    "decision spec {spec:?} was applied as DDL"
                );
            }
        }
    }
}

/// `drive` rejects a trace aimed at a different table.
#[test]
fn drive_validates_the_table() {
    let db = paper_database(1_000, 3);
    let mut online = OnlineAdvisor::new(&db, "t", OnlineOptions::default()).expect("opens");
    let params = cdpd::workload::paper::PaperParams {
        table: "u".into(),
        domain: 100,
        window_len: WINDOW,
    };
    let wrong = generate(&paper::w1_with(&params), 1);
    assert!(cdpd::replay::drive(&db, &wrong, &mut online).is_err());
}

//! Reproduction of the paper's Figure 3 at test scale: execute W1, W2,
//! and W3 under both the unconstrained and the `k = 2` designs that
//! were recommended *from W1*, measuring logical I/O.
//!
//! Expected orderings (paper, Fig. 3, relative execution times):
//! * W1 runs somewhat slower under the constrained design (paper: 14%);
//! * W2 and W3 run *faster* under the constrained design than under the
//!   unconstrained one (paper: 59% and 30% slower unconstrained),
//!   because the unconstrained design is overfit to W1's minor shifts.

mod common;

use cdpd::replay::{replay, replay_recommendation};
use cdpd::workload::{generate, paper, Trace};
use cdpd::{Advisor, AdvisorOptions, Algorithm, Recommendation};
use common::{paper_database, paper_params, paper_structures};

const ROWS: i64 = 12_000;
const WINDOW: usize = 60;

fn recommend(db: &cdpd::engine::Database, trace: &Trace, k: Option<usize>) -> Recommendation {
    Advisor::new(db, "t")
        .options(AdvisorOptions {
            k,
            window_len: WINDOW,
            structures: Some(paper_structures()),
            max_structures_per_config: Some(1),
            end_empty: true,
            algorithm: Algorithm::KAware,
            ..Default::default()
        })
        .recommend(trace)
        .expect("advisor runs")
}

#[test]
fn fig3_orderings_hold() {
    let db = paper_database(ROWS, 7);
    let params = paper_params(ROWS, WINDOW);
    let w1 = generate(&paper::w1_with(&params), 42);
    let w2 = generate(&paper::w2_with(&params), 43);
    let w3 = generate(&paper::w3_with(&params), 44);

    let unc = recommend(&db, &w1, None);
    let k2 = recommend(&db, &w1, Some(2));
    assert_eq!(k2.schedule.changes, 2);

    // Replay each workload under each W1-derived schedule. The paper's
    // Figure 3 measures wall time; logical I/O is our deterministic
    // time proxy (same engine, same plans).
    let mut io = std::collections::HashMap::new();
    let mut checksums = std::collections::HashMap::new();
    for (wname, trace) in [("W1", &w1), ("W2", &w2), ("W3", &w3)] {
        for (dname, rec) in [("unc", &unc), ("k2", &k2)] {
            let report = replay_recommendation(&db, trace, rec).expect("replay runs");
            io.insert((wname, dname), report.total_io());
            checksums.insert((wname, dname, trace.len()), report.row_checksum);
            // A workload's result rows must not depend on the design.
            let prev = checksums
                .entry((wname, "ref", trace.len()))
                .or_insert(report.row_checksum);
            assert_eq!(*prev, report.row_checksum, "{wname} under {dname}");
        }
    }

    let g = |w: &str, d: &str| *io.get(&(w, d)).unwrap() as f64;

    // W1: unconstrained is optimal for it; constrained somewhat slower.
    assert!(
        g("W1", "k2") > g("W1", "unc"),
        "W1: constrained must cost more ({} vs {})",
        g("W1", "k2"),
        g("W1", "unc")
    );
    let w1_gap = g("W1", "k2") / g("W1", "unc");
    assert!(w1_gap < 1.5, "W1 gap should be moderate, got {w1_gap:.2}");

    // W2 and W3: the W1-overfit unconstrained design loses to the
    // constrained one.
    for w in ["W2", "W3"] {
        assert!(
            g(w, "unc") > g(w, "k2"),
            "{w}: unconstrained should be slower ({} vs {})",
            g(w, "unc"),
            g(w, "k2")
        );
    }

    // Directional magnitude check against the paper's bars: the W2 gap
    // (out-of-phase alternation every window) exceeds the W1 gap.
    let w2_gap = g("W2", "unc") / g("W2", "k2");
    assert!(
        w2_gap > w1_gap * 0.9,
        "W2 overfit penalty ({w2_gap:.2}) should rival W1's constrained gap ({w1_gap:.2})"
    );
}

#[test]
fn replay_validates_inputs() {
    let db = paper_database(2_000, 9);
    let params = paper_params(2_000, 50);
    let spec = paper::w1_with(&paper::PaperParams {
        window_len: 50,
        ..params
    });
    let trace = generate(&spec, 1);
    // Wrong stage count.
    let err = replay(&db, &trace, 50, &[vec![]], None).unwrap_err();
    assert!(err.to_string().contains("stages"), "{err}");
    // Zero window.
    assert!(replay(&db, &trace, 0, &[], None).is_err());
}

#[test]
fn transitions_happen_where_the_schedule_says() {
    let db = paper_database(5_000, 3);
    let params = paper_params(5_000, WINDOW);
    let trace = generate(&paper::w1_with(&params), 5);
    let rec = recommend(&db, &trace, Some(2));
    let report = replay_recommendation(&db, &trace, &rec).unwrap();
    let change_windows: Vec<usize> = report
        .stages
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.created.is_empty() || !s.dropped.is_empty())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        change_windows,
        vec![0, 10, 20],
        "initial build + the two major shifts"
    );
    assert!(
        report.final_trans_io > 0,
        "closing drop to the empty design"
    );
    assert_eq!(report.statements as usize, trace.len());
}

//! Determinism guarantees the experiment pipeline depends on: the
//! workload generator must be byte-identical for a given (spec, seed) —
//! on every platform, forever — and the engine-backed cost oracle must
//! return identical numbers for identical inputs across independently
//! constructed instances.

mod common;

use cdpd::core::{enumerate_configs, CostOracle};
use cdpd::engine::WhatIfEngine;
use cdpd::workload::paper::PaperParams;
use cdpd::workload::{generate, paper, summarize};
use cdpd::EngineOracle;
use common::{paper_database, paper_structures};

const ROWS: i64 = 5_000;
const WINDOW: usize = 50;

fn small_params() -> PaperParams {
    PaperParams {
        table: "t".into(),
        domain: ROWS / common::ROWS_PER_VALUE,
        window_len: WINDOW,
    }
}

/// Render a trace as one SQL-per-line string (the byte-comparable form).
fn trace_sql(spec: &cdpd::workload::WorkloadSpec, seed: u64) -> String {
    let trace = generate(spec, seed);
    let mut out = String::new();
    for stmt in trace.statements() {
        out.push_str(&stmt.to_string());
        out.push('\n');
    }
    out
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn same_seed_yields_byte_identical_traces() {
    let params = small_params();
    for spec in [
        paper::w1_with(&params),
        paper::w2_with(&params),
        paper::w3_with(&params),
    ] {
        let a = trace_sql(&spec, 7);
        let b = trace_sql(&spec, 7);
        assert_eq!(a, b, "same (spec, seed) must be byte-identical");
        let c = trace_sql(&spec, 8);
        assert_ne!(a, c, "different seeds must diverge");
    }
}

/// Golden trace: pins the generator's exact output stream so a silent
/// change to the PRNG, the mix sampling, or the SQL printer cannot slip
/// through as a "still deterministic, just different" regression. If
/// this fails after an *intentional* generator change, regenerate the
/// constants from the printed actual values.
#[test]
fn golden_w1_trace_snapshot() {
    let sql = trace_sql(&paper::w1_with(&small_params()), 42);
    let lines: Vec<&str> = sql.lines().collect();
    assert_eq!(
        lines.len(),
        30 * WINDOW,
        "30 windows of {WINDOW} statements"
    );
    let hash = fnv1a(sql.as_bytes());
    let head: Vec<String> = lines.iter().take(3).map(|s| s.to_string()).collect();
    assert_eq!(
        (hash, head),
        (
            GOLDEN_W1_HASH,
            GOLDEN_W1_HEAD
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        ),
        "generator output drifted; full first lines: {:?}",
        &lines[..3]
    );
}

// Captured from the first run of this test; see the test's doc comment.
const GOLDEN_W1_HASH: u64 = 9797650360314489277;
const GOLDEN_W1_HEAD: [&str; 3] = [
    "SELECT c FROM t WHERE c = 318",
    "SELECT d FROM t WHERE d = 701",
    "SELECT b FROM t WHERE b = 588",
];

#[test]
fn oracle_costs_are_identical_across_instances() {
    let db = paper_database(ROWS, 99);
    let trace = generate(&paper::w1_with(&small_params()), 5);
    let workload = summarize(&trace, WINDOW).unwrap();

    let build = || {
        EngineOracle::new(
            WhatIfEngine::snapshot(&db, "t").unwrap(),
            paper_structures(),
            &workload,
        )
        .unwrap()
    };
    let a = build();
    let b = build();

    let candidates = enumerate_configs(&a, None, Some(2)).unwrap();
    assert_eq!(a.n_stages(), b.n_stages());
    for stage in 0..a.n_stages() {
        for cfg in &candidates {
            assert_eq!(
                a.exec(stage, cfg),
                b.exec(stage, cfg),
                "EXEC({stage}, {cfg:?})"
            );
        }
    }
    for from in &candidates {
        for to in &candidates {
            assert_eq!(
                a.trans(from, to),
                b.trans(from, to),
                "TRANS({from:?}, {to:?})"
            );
        }
        assert_eq!(a.size(from), b.size(from), "SIZE({from:?})");
    }
}

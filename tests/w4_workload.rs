//! End-to-end run of the range/IN-heavy W4 workload through
//! [`cdpd::OnlineAdvisor`]: the session must recommend at least one
//! design the old equality-only predicate vocabulary could not
//! motivate — a composite index serving two-column conjunctions, or a
//! multi-index configuration whose members jointly serve one statement
//! through a rowid union — and replaying the trace under the
//! recommended schedule must actually drive the executor down those
//! paths.

mod common;

use cdpd::sql::{Condition, Dml};
use cdpd::workload::{generate, paper};
use cdpd::{AdvisorOptions, Algorithm, OnlineAdvisor, OnlineOptions};
use common::{paper_database, paper_params};

const ROWS: i64 = 10_000;
const WINDOW: usize = 50;

#[test]
fn w4_online_run_recommends_multi_index_designs() {
    let params = paper_params(ROWS, WINDOW);
    let trace = generate(&paper::w4_with(&params), 19);
    // The trace itself needs the new vocabulary: ranges, IN-lists, and
    // disjunctions that point-only templates could not express.
    let (mut ranges, mut ins, mut ors) = (0, 0, 0);
    for stmt in trace.statements() {
        for c in stmt.conditions() {
            match c {
                Condition::Range { .. } => ranges += 1,
                Condition::In { .. } => ins += 1,
                Condition::Or(_) => ors += 1,
                Condition::Eq { .. } => {}
            }
        }
    }
    assert!(
        ranges > 0 && ins > 0 && ors > 0,
        "W4 must exercise the predicate tree: {ranges} ranges, {ins} INs, {ors} ORs"
    );

    let db = paper_database(ROWS, 19);
    let mut online = OnlineAdvisor::new(
        &db,
        "t",
        OnlineOptions {
            advisor: AdvisorOptions {
                k: Some(2),
                window_len: WINDOW,
                end_empty: false,
                algorithm: Algorithm::KAware,
                ..Default::default()
            },
            ..OnlineOptions::default()
        },
    )
    .expect("session opens");
    online
        .ingest_all(&db, trace.statements())
        .expect("trace ingests");
    let rec = online.finish(&db).expect("finish recommends");
    assert_eq!(rec.schedule.len(), trace.len() / WINDOW);

    // The recommendation must hold at least one design the equality
    // vocabulary could not motivate: a composite index (two-column
    // conjunctions / covering IN probes) or a window whose configuration
    // carries indexes on two distinct columns (rowid unions across
    // branches of a disjunction).
    let mut saw_composite = false;
    let mut saw_multi_index = false;
    for stage in 0..rec.schedule.len() {
        let specs = rec.specs_at(stage);
        saw_composite |= specs.iter().any(|s| s.columns.len() >= 2);
        let mut leads: Vec<&str> = specs.iter().map(|s| s.columns[0].as_str()).collect();
        leads.sort_unstable();
        leads.dedup();
        saw_multi_index |= leads.len() >= 2;
    }
    assert!(
        saw_composite || saw_multi_index,
        "no stage recommends a composite or multi-index design: {}",
        rec.to_ddl_script()
    );

    // Replay the trace under the recommended schedule and record which
    // access paths actually served the statements: the design is only
    // "multi-index-serving" if the executor takes the new paths.
    let mut paths: Vec<String> = Vec::new();
    for (stage, window) in trace.statements().chunks(WINDOW).enumerate() {
        let specs = rec.specs_at(stage.min(rec.schedule.len() - 1));
        db.apply_configuration("t", &specs).expect("ddl runs");
        for stmt in window {
            if let Dml::Select(sel) = stmt {
                let result = db.query_count(sel).expect("statement runs");
                let path = result
                    .plan
                    .split(['(', ' '])
                    .next()
                    .unwrap_or_default()
                    .to_owned();
                if !paths.contains(&path) {
                    paths.push(path);
                }
            }
        }
    }
    assert!(
        paths.iter().any(|p| p == "IndexOr"),
        "no statement was served by a rowid union: {paths:?}"
    );
    assert!(
        paths.iter().any(|p| p == "IndexRange" || p == "IndexAnd"),
        "ranges/conjunctions never left the classic paths: {paths:?}"
    );
}

//! Golden test for the OpenMetrics text exposition
//! ([`cdpd::obs::openmetrics::render`]): the output is a pure function
//! of the snapshot, so this pins it **byte for byte** — family
//! ordering (counters → gauges → histograms, alphabetical within each
//! kind), name sanitization, `# HELP` escaping, the counter `_total`
//! convention, and cumulative histogram buckets. A change to any of
//! these is a wire-format change and must show up here.
//!
//! A second test renders a *live* registry delta and re-parses it with
//! an in-tree line parser (the same spirit as `tests/obs_trace.rs`'s
//! mini JSON parser): every sample line must parse, every family must
//! carry exactly one `# TYPE`, and the declared type must match the
//! sample shape.

use cdpd::obs::metrics::{bucket_index, HistogramSnapshot, MetricsSnapshot};
use cdpd::obs::openmetrics::render;
use std::collections::BTreeMap;

#[test]
fn exposition_is_pinned_byte_for_byte() {
    let mut snap = MetricsSnapshot::default();
    snap.counters.insert("calibration.samples".into(), 7);
    snap.counters.insert("what-if.calls".into(), 2);
    snap.gauges.insert("calibration.drift_millis".into(), -125);
    let mut h = HistogramSnapshot::default();
    for v in [0u64, 3, 9] {
        h.buckets[bucket_index(v)] += 1;
        h.count += 1;
        h.sum += v;
    }
    snap.histograms.insert("calibration.abs_err_ios".into(), h);

    let expected = "\
# HELP calibration_samples counter calibration.samples
# TYPE calibration_samples counter
calibration_samples_total 7
# HELP what_if_calls counter what-if.calls
# TYPE what_if_calls counter
what_if_calls_total 2
# HELP calibration_drift_millis gauge calibration.drift_millis
# TYPE calibration_drift_millis gauge
calibration_drift_millis -125
# HELP calibration_abs_err_ios histogram calibration.abs_err_ios
# TYPE calibration_abs_err_ios histogram
calibration_abs_err_ios_bucket{le=\"0\"} 1
calibration_abs_err_ios_bucket{le=\"1\"} 1
calibration_abs_err_ios_bucket{le=\"3\"} 2
calibration_abs_err_ios_bucket{le=\"7\"} 2
calibration_abs_err_ios_bucket{le=\"15\"} 3
calibration_abs_err_ios_bucket{le=\"+Inf\"} 3
calibration_abs_err_ios_sum 12
calibration_abs_err_ios_count 3
# EOF
";
    assert_eq!(render(&snap), expected);
}

#[test]
fn help_lines_escape_hostile_names() {
    let mut snap = MetricsSnapshot::default();
    snap.counters.insert("bad\"name\\with\nnewline".into(), 1);
    let text = render(&snap);
    // The family name is sanitized into the exposition charset; the
    // original survives, escaped, in the HELP line.
    assert!(text.contains("# HELP bad_name_with_newline counter bad\\\"name\\\\with\\nnewline\n"));
    assert!(text.contains("bad_name_with_newline_total 1\n"));
    assert!(
        !text.contains("with\nnewline"),
        "raw newline must never reach the output"
    );
}

/// One parsed metric family: declared type plus its sample lines.
#[derive(Default, Debug)]
struct Family {
    kind: String,
    samples: Vec<(String, String)>, // (sample name incl. labels, value)
}

/// Line-level parser for the exposition subset `render` emits. Panics
/// on any line that fits neither a comment nor a sample.
fn parse_exposition(text: &str) -> BTreeMap<String, Family> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let mut saw_eof = false;
    for line in text.lines() {
        assert!(!saw_eof, "nothing may follow # EOF: {line:?}");
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let fam = it.next().expect("family name").to_owned();
            let kind = it.next().expect("family type").to_owned();
            let entry = families.entry(fam).or_default();
            assert!(entry.kind.is_empty(), "duplicate # TYPE for {rest}");
            entry.kind = kind;
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        // A sample: `name{labels} value` or `name value`.
        let (name, value) = line.rsplit_once(' ').expect("sample line");
        let base = name.split('{').next().expect("sample name");
        // Strip the suffix to find the owning family.
        let fam = ["_total", "_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| name.contains('{').then_some(()).and(base.strip_suffix(s)))
            .or_else(|| {
                ["_total", "_sum", "_count"]
                    .iter()
                    .find_map(|s| base.strip_suffix(s))
            })
            .unwrap_or(base);
        let fam = families
            .keys()
            .filter(|k| *k == base || base.starts_with(k.as_str()) || fam == k.as_str())
            .max_by_key(|k| k.len())
            .unwrap_or_else(|| panic!("sample {name} has no # TYPE"))
            .clone();
        families
            .get_mut(&fam)
            .unwrap()
            .samples
            .push((name.to_owned(), value.to_owned()));
    }
    assert!(saw_eof, "exposition must end with # EOF");
    families
}

#[test]
fn live_registry_snapshot_round_trips_through_the_parser() {
    let before = cdpd::obs::registry().snapshot();
    cdpd_obs::counter!("omtest.calib.samples").add(4);
    cdpd_obs::gauge!("omtest.drift").set(-3);
    cdpd_obs::histogram!("omtest.err").record(0);
    cdpd_obs::histogram!("omtest.err").record(300);
    let delta = cdpd::obs::registry().snapshot().delta(&before);
    let text = render(&delta);

    let families = parse_exposition(&text);
    let counter = &families["omtest_calib_samples"];
    assert_eq!(counter.kind, "counter");
    assert_eq!(
        counter.samples,
        vec![("omtest_calib_samples_total".to_owned(), "4".to_owned())]
    );
    let gauge = &families["omtest_drift"];
    assert_eq!(gauge.kind, "gauge");
    assert_eq!(
        gauge.samples,
        vec![("omtest_drift".to_owned(), "-3".to_owned())]
    );
    let hist = &families["omtest_err"];
    assert_eq!(hist.kind, "histogram");
    let inf = hist
        .samples
        .iter()
        .find(|(n, _)| n == "omtest_err_bucket{le=\"+Inf\"}")
        .expect("+Inf bucket");
    assert_eq!(inf.1, "2");
    let sum = hist
        .samples
        .iter()
        .find(|(n, _)| n == "omtest_err_sum")
        .expect("sum sample");
    assert_eq!(sum.1, "300");
    // Cumulative buckets never decrease.
    let mut last = 0u64;
    for (n, v) in &hist.samples {
        if n.starts_with("omtest_err_bucket{le=\"") && !n.contains("+Inf") {
            let v: u64 = v.parse().expect("bucket count");
            assert!(v >= last, "buckets must be cumulative: {n} {v} < {last}");
            last = v;
        }
    }
    // Ordering: every counter family renders before every gauge family,
    // and every gauge before every histogram.
    let pos = |needle: &str| text.find(needle).expect(needle);
    assert!(pos("# TYPE omtest_calib_samples counter") < pos("# TYPE omtest_drift gauge"));
    assert!(pos("# TYPE omtest_drift gauge") < pos("# TYPE omtest_err histogram"));
}

//! Plan-equivalence property for the predicate-tree query surface:
//! whatever access path the planner picks — seq scan, seek, range,
//! covering scan, rowid intersection (`IndexAnd`), or rowid union
//! (`IndexOr`) — the rows returned must be bit-identical to the forced
//! `SeqScan` baseline (the same statement against the same database
//! with no indexes). Random predicate trees of up to four terms
//! (`Eq`, `Range`, `In`, `Or`) are swept across seeds and index sets.

mod common;

use cdpd::engine::{IndexSpec, QueryResult};
use cdpd::sql::{Condition, Projection, SelectStmt};
use cdpd::types::Value;
use cdpd_testkit::Prng;
use common::{paper_database, paper_structures, ROWS_PER_VALUE};

const ROWS: i64 = 4_000;
const COLS: [&str; 4] = ["a", "b", "c", "d"];

fn rand_col(rng: &mut Prng) -> String {
    COLS[rng.gen_range(0..COLS.len())].to_owned()
}

fn rand_value(rng: &mut Prng, domain: i64) -> Value {
    // Slightly overshoot the domain so empty results are exercised too.
    Value::Int(rng.gen_range(0..domain + domain / 8))
}

/// One simple (non-`Or`) predicate term.
fn rand_simple(rng: &mut Prng, domain: i64) -> Condition {
    match rng.gen_range(0..3u32) {
        0 => Condition::Eq {
            column: rand_col(rng),
            value: rand_value(rng, domain),
        },
        1 => {
            let lo = rng.gen_range(0..domain);
            // Narrow enough that an index range scan can win the cost
            // race against the seq scan on some draws.
            let span = rng.gen_range(1..(domain / 100).max(2));
            let one_sided = rng.gen_range(0..4u32) == 0;
            Condition::Range {
                column: rand_col(rng),
                lo: Some(Value::Int(lo)),
                lo_inclusive: rng.gen_range(0..2u32) == 0,
                hi: if one_sided {
                    None
                } else {
                    Some(Value::Int(lo + span))
                },
                hi_inclusive: rng.gen_range(0..2u32) == 0,
            }
        }
        _ => {
            // Duplicates allowed: the planner dedups at plan time and
            // the executor must still return each row once.
            let n = rng.gen_range(1..5usize);
            let column = rand_col(rng);
            let values = (0..n).map(|_| rand_value(rng, domain)).collect();
            Condition::In { column, values }
        }
    }
}

/// One predicate term, possibly a disjunction of simple branches.
fn rand_term(rng: &mut Prng, domain: i64) -> Condition {
    if rng.gen_range(0..3u32) == 0 {
        let n = rng.gen_range(2..4usize);
        let branches = (0..n).map(|_| rand_simple(rng, domain)).collect();
        Condition::Or(branches)
    } else {
        rand_simple(rng, domain)
    }
}

/// A random conjunctive predicate tree of 1–4 terms.
fn rand_statement(rng: &mut Prng, domain: i64) -> SelectStmt {
    let n_terms = rng.gen_range(1..5usize);
    let conditions = (0..n_terms).map(|_| rand_term(rng, domain)).collect();
    SelectStmt {
        projection: Projection::Star,
        table: "t".into(),
        conditions,
        order_by: None,
        limit: None,
    }
}

/// Canonical (sorted) row order, so result sets compare independently
/// of the access path's row order.
fn sorted_rows(result: &QueryResult) -> Vec<Vec<i64>> {
    let mut rows: Vec<Vec<i64>> = result
        .rows
        .as_ref()
        .expect("SELECT * materializes rows")
        .iter()
        .map(|r| r.iter().map(|v| v.as_int().expect("int table")).collect())
        .collect();
    rows.sort();
    rows
}

/// The index sets the sweep replans under: nothing, single-column
/// indexes alone and in pairs (enabling intersections and unions),
/// composites, and the full §6.1 design space.
fn index_sets() -> Vec<Vec<IndexSpec>> {
    let s = paper_structures(); // a, b, c, d, ab, cd
    vec![
        vec![s[0].clone()],
        vec![s[1].clone()],
        vec![s[0].clone(), s[1].clone()],
        vec![s[2].clone(), s[3].clone()],
        vec![s[0].clone(), s[1].clone(), s[2].clone(), s[3].clone()],
        vec![s[4].clone(), s[5].clone()],
        s.clone(),
    ]
}

#[test]
fn every_chosen_path_matches_the_seq_scan_baseline() {
    let domain = ROWS / ROWS_PER_VALUE;
    let mut paths_seen: Vec<String> = Vec::new();
    for seed in [3, 17] {
        let db = paper_database(ROWS, seed);
        let mut rng = Prng::seed_from_u64(seed ^ 0xbeef);
        let statements: Vec<SelectStmt> =
            (0..30).map(|_| rand_statement(&mut rng, domain)).collect();

        // Forced-SeqScan baseline: same database, no indexes.
        db.apply_configuration("t", &[]).expect("ddl runs");
        let baselines: Vec<Vec<Vec<i64>>> = statements
            .iter()
            .map(|s| {
                let r = db.query(s).expect("statement is valid");
                assert!(
                    r.plan.starts_with("SeqScan"),
                    "no-index baseline must scan, got {}",
                    r.plan
                );
                sorted_rows(&r)
            })
            .collect();

        for set in index_sets() {
            db.apply_configuration("t", &set).expect("ddl runs");
            for (stmt, baseline) in statements.iter().zip(&baselines) {
                let result = db.query(stmt).expect("statement is valid");
                let path = result
                    .plan
                    .split(['(', ' '])
                    .next()
                    .unwrap_or_default()
                    .to_owned();
                if !paths_seen.contains(&path) {
                    paths_seen.push(path);
                }
                let rows = sorted_rows(&result);
                assert_eq!(
                    &rows, baseline,
                    "seed {seed}, plan `{}`, statement `{stmt}`",
                    result.plan
                );
                // The count-only executor arms (rowid collection
                // without materialization) must agree with the
                // materialized result under the same plan.
                let count = db.query_count(stmt).expect("statement is valid");
                assert_eq!(count.plan, result.plan, "same statement, same plan");
                assert_eq!(
                    count.count as usize,
                    rows.len(),
                    "count-only disagrees with materialized rows for `{stmt}` \
                     under `{}`",
                    result.plan
                );
            }
        }
    }
    // The sweep is only meaningful if it actually drove the planner
    // down the multi-index paths (and the classic ones).
    for want in ["SeqScan", "IndexSeek", "IndexRange", "IndexAnd", "IndexOr"] {
        assert!(
            paths_seen.iter().any(|p| p == want),
            "sweep never chose {want}: {paths_seen:?}"
        );
    }
}

//! The anchor invariant of the parallel read path: executing a window
//! across any number of worker threads is **bit-identical** to the
//! serial replay — same per-statement [`cdpd::engine::QueryResult`]s,
//! same per-window EXEC/TRANS I/O sums, same online decisions and
//! final schedule, and exact reconciliation between the summed
//! per-statement ledgers and the pager's global counters.
//!
//! The argument being tested (DESIGN.md §13): reads commute — their
//! only side effects are I/O-counter increments, measured per-thread
//! via `ThreadIoScope` — and writes run serially at their original
//! sequence positions, so any interleaving of a read run produces the
//! same results and the same *sums*. Thread counts {1, 2, 8} are
//! crossed with multiple trace seeds; the CI stress gate loops this
//! binary across 8 seeds × {1, 2, 8} threads via `CDPD_SEED` /
//! `CDPD_THREADS`.

mod common;

use cdpd::engine::{Database, IndexSpec, QueryResult};
use cdpd::replay::{drive_with, replay_with, ReplayReport};
use cdpd::workload::{generate, paper, QueryMix, Template, Trace, WorkloadSpec};
use cdpd::{AdvisorOptions, Algorithm, OnlineAdvisor, OnlineOptions};
use cdpd_engine::parallel_map;
use cdpd_sql::Dml;
use common::{paper_database, paper_params, paper_structures, ROWS_PER_VALUE};

const ROWS: i64 = 8_000;
const WINDOW: usize = 50;
const THREADS: [usize; 3] = [1, 2, 8];

/// Seeds for the equivalence cross: `CDPD_SEED` (set by the CI stress
/// gate) narrows the run to one seed; the default covers three.
fn seeds() -> Vec<u64> {
    match std::env::var("CDPD_SEED") {
        Ok(s) => vec![s.parse().expect("CDPD_SEED must be an integer")],
        Err(_) => vec![7, 41, 1234],
    }
}

/// Thread counts to cross: honours `CDPD_THREADS` when the stress gate
/// pins one, else {1, 2, 8}.
fn thread_counts() -> Vec<usize> {
    match std::env::var("CDPD_THREADS") {
        Ok(s) => vec![s.parse().expect("CDPD_THREADS must be an integer")],
        Err(_) => THREADS.to_vec(),
    }
}

/// A six-window trace with real writes: two read-heavy phases around
/// an update phase, so windows contain maximal select runs *and*
/// serial sequence points.
fn mixed_trace(seed: u64) -> Trace {
    let domain = ROWS / ROWS_PER_VALUE;
    let reads = QueryMix::new("reads", &[("a", 50), ("b", 30), ("c", 20)]).expect("weights");
    let etl = QueryMix::with_templates(
        "etl",
        vec![
            (
                Template::Update {
                    set_column: "b".into(),
                    where_column: "a".into(),
                },
                40,
            ),
            (Template::Point { column: "a".into() }, 40),
            (Template::Point { column: "b".into() }, 20),
        ],
    )
    .expect("weights");
    let windows = vec![
        reads.clone(),
        reads.clone(),
        etl.clone(),
        etl,
        reads.clone(),
        reads,
    ];
    let spec = WorkloadSpec::new("t", domain, WINDOW, windows).expect("valid spec");
    generate(&spec, seed)
}

/// A fixed six-stage schedule exercising no-op, single, and
/// multi-index transitions (the latter drive concurrent builds).
fn fixed_schedule() -> Vec<Vec<IndexSpec>> {
    let a = IndexSpec::new("t", &["a"]);
    let b = IndexSpec::new("t", &["b"]);
    let ab = IndexSpec::new("t", &["a", "b"]);
    let cd = IndexSpec::new("t", &["c", "d"]);
    vec![
        vec![],
        vec![a.clone(), ab.clone()],
        vec![a.clone()],
        vec![a, b.clone(), cd],
        vec![b.clone()],
        vec![b],
    ]
}

#[track_caller]
fn assert_same_result(serial: &QueryResult, parallel: &QueryResult, what: &str) {
    assert_eq!(serial.count, parallel.count, "{what}: count");
    assert_eq!(serial.rows, parallel.rows, "{what}: rows");
    assert_eq!(serial.aggregate, parallel.aggregate, "{what}: aggregate");
    assert_eq!(serial.io, parallel.io, "{what}: io");
    assert_eq!(serial.est_cost, parallel.est_cost, "{what}: est_cost");
    assert_eq!(serial.plan, parallel.plan, "{what}: plan");
}

#[track_caller]
fn assert_same_report(serial: &ReplayReport, parallel: &ReplayReport, what: &str) {
    assert_eq!(
        serial.stages.len(),
        parallel.stages.len(),
        "{what}: stage count"
    );
    for (i, (s, p)) in serial.stages.iter().zip(&parallel.stages).enumerate() {
        assert_eq!(s.trans_io, p.trans_io, "{what}: stage {i} trans_io");
        assert_eq!(s.exec_io, p.exec_io, "{what}: stage {i} exec_io");
        assert_eq!(s.created, p.created, "{what}: stage {i} created");
        assert_eq!(s.dropped, p.dropped, "{what}: stage {i} dropped");
    }
    assert_eq!(
        serial.final_trans_io, parallel.final_trans_io,
        "{what}: final_trans_io"
    );
    assert_eq!(serial.statements, parallel.statements, "{what}: statements");
    assert_eq!(
        serial.row_checksum, parallel.row_checksum,
        "{what}: row_checksum"
    );
}

/// Per-statement equivalence: fanning a batch of reads across worker
/// threads reproduces every field of every serial `QueryResult`,
/// including the measured per-statement I/O.
#[test]
fn parallel_reads_reproduce_serial_query_results() {
    for seed in seeds() {
        let db = paper_database(ROWS, seed);
        db.apply_configuration(
            "t",
            &[
                IndexSpec::new("t", &["a"]),
                IndexSpec::new("t", &["a", "b"]),
            ],
        )
        .expect("indexes build");
        let trace = mixed_trace(seed);
        let selects: Vec<&cdpd_sql::SelectStmt> = trace
            .statements()
            .iter()
            .filter_map(|s| match s {
                Dml::Select(q) => Some(q),
                _ => None,
            })
            .take(200)
            .collect();
        assert!(selects.len() >= 100, "trace has a real read run");
        let serial: Vec<QueryResult> = selects
            .iter()
            .map(|q| db.query(q).expect("query runs"))
            .collect();
        for threads in thread_counts() {
            let shared: &Database = &db;
            let parallel = parallel_map(selects.len(), threads, |i| shared.query(selects[i]))
                .expect("parallel batch runs");
            for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                assert_same_result(s, p, &format!("seed {seed} threads {threads} stmt {i}"));
            }
        }
    }
}

/// Whole-replay equivalence over a trace with writes: per-window
/// EXEC/TRANS sums, created/dropped orders, row checksum, and the
/// ledger reconciliation (summed per-statement I/O == pager counter
/// delta) all match the serial run at every thread count.
#[test]
fn parallel_replay_is_bit_identical_to_serial() {
    for seed in seeds() {
        let trace = mixed_trace(seed);
        let schedule = fixed_schedule();
        let run = |threads: usize| -> (ReplayReport, u64) {
            let db = paper_database(ROWS, seed);
            let before = db.pager().stats();
            let report = replay_with(&db, &trace, WINDOW, &schedule, Some(&[]), threads)
                .expect("replay runs");
            let ledger = db.pager().stats().delta(before).total();
            (report, ledger)
        };
        let (serial, serial_ledger) = run(1);
        assert_eq!(
            serial.total_io(),
            serial_ledger,
            "seed {seed}: serial replay accounts every page access"
        );
        for threads in thread_counts() {
            let (parallel, ledger) = run(threads);
            assert_same_report(
                &serial,
                &parallel,
                &format!("seed {seed} threads {threads}"),
            );
            assert_eq!(
                parallel.total_io(),
                ledger,
                "seed {seed} threads {threads}: parallel replay reconciles with the pager ledger"
            );
        }
    }
}

/// Online-loop equivalence: the advisor sees identical windows and
/// emits identical decisions (and the driver identical reports) at
/// every thread count — the schedule is discovered, not precomputed,
/// so this pins the whole ingest → re-solve → DDL loop.
#[test]
fn parallel_drive_reproduces_decisions_and_schedule() {
    for seed in seeds() {
        let params = paper_params(ROWS, WINDOW);
        let spec = match seed % 3 {
            0 => paper::w1_with(&params),
            1 => paper::w2_with(&params),
            _ => paper::w3_with(&params),
        };
        let trace = generate(&spec, seed);
        let options = OnlineOptions {
            advisor: AdvisorOptions {
                k: Some(4),
                window_len: WINDOW,
                structures: Some(paper_structures()),
                algorithm: Algorithm::KAware,
                ..Default::default()
            },
            ..OnlineOptions::default()
        };
        let run = |threads: usize| {
            let db = paper_database(ROWS, seed);
            let mut advisor = OnlineAdvisor::new(&db, "t", options.clone()).expect("session opens");
            let report = drive_with(&db, &trace, &mut advisor, threads).expect("drive runs");
            let decisions: Vec<(usize, Vec<IndexSpec>, bool)> = advisor
                .decisions()
                .iter()
                .map(|d| (d.window, d.specs.clone(), d.changed))
                .collect();
            (report, decisions, advisor.live_specs())
        };
        let (serial, serial_decisions, serial_live) = run(1);
        for threads in thread_counts() {
            let (parallel, decisions, live) = run(threads);
            assert_same_report(
                &serial,
                &parallel,
                &format!("drive seed {seed} threads {threads}"),
            );
            assert_eq!(
                serial_decisions, decisions,
                "drive seed {seed} threads {threads}: decision log"
            );
            assert_eq!(
                serial_live, live,
                "drive seed {seed} threads {threads}: live design"
            );
        }
    }
}

/// Concurrent index builds during TRANS: a multi-index transition
/// built with 8 workers reports the same I/O and created order as the
/// serial build, and both databases answer queries identically.
#[test]
fn concurrent_index_builds_match_serial() {
    let target = [
        IndexSpec::new("t", &["a"]),
        IndexSpec::new("t", &["b"]),
        IndexSpec::new("t", &["a", "b"]),
        IndexSpec::new("t", &["c", "d"]),
    ];
    let serial_db = paper_database(ROWS, 7);
    let serial = serial_db
        .apply_configuration_with("t", &target, 1)
        .expect("serial build");
    let parallel_db = paper_database(ROWS, 7);
    let parallel = parallel_db
        .apply_configuration_with("t", &target, 8)
        .expect("parallel build");
    assert_eq!(serial.io, parallel.io, "build I/O is deterministic");
    assert_eq!(serial.created, parallel.created);
    assert_eq!(serial.dropped, parallel.dropped);
    for column in ["a", "b", "c", "d"] {
        let q = cdpd_sql::SelectStmt::point("t", column, 7);
        let s = serial_db.query(&q).expect("query runs");
        let p = parallel_db.query(&q).expect("query runs");
        assert_same_result(&s, &p, &format!("post-build query on {column}"));
    }
    assert_eq!(
        serial_db.page_count(),
        parallel_db.page_count(),
        "same number of pages allocated either way"
    );
}

/// The free-list claim in the `Database` docs, at replay scale: 100
/// design transitions over a live trace leave the page footprint
/// bounded (drops return pages, builds reuse them), and an immediate
/// DROP + CREATE cycle allocates no new pages at all.
#[test]
fn hundred_transition_replay_keeps_footprint_bounded() {
    let db = paper_database(ROWS, 7);
    let a = IndexSpec::new("t", &["a"]);
    let ab = IndexSpec::new("t", &["a", "b"]);
    let cd = IndexSpec::new("t", &["c", "d"]);

    // DROP INDEX then CREATE INDEX reuses the freed pages exactly.
    db.create_index(&a).expect("build");
    let peak = db.page_count();
    db.drop_index(&a).expect("drop");
    assert!(db.pager().free_count() > 0, "drop free-lists the tree");
    db.create_index(&a).expect("rebuild");
    assert_eq!(
        db.page_count(),
        peak,
        "rebuild reuses the dropped tree's pages"
    );

    // 100 transitions cycling three configurations, with reads between
    // them so recycled pages are continuously exercised.
    let configs: [Vec<IndexSpec>; 3] = [
        vec![a.clone()],
        vec![ab.clone()],
        vec![a.clone(), cd.clone()],
    ];
    let mut high_water = db.page_count();
    for i in 0..100 {
        db.apply_configuration("t", &configs[i % 3]).expect("morph");
        high_water = high_water.max(db.page_count());
        let q = cdpd_sql::SelectStmt::point("t", "a", (i as i64 * 37) % (ROWS / ROWS_PER_VALUE));
        db.query_count(&q).expect("query runs on recycled pages");
    }
    // The footprint may exceed the single-index peak only by the width
    // of the largest configuration, never grow linearly in transitions.
    assert!(
        db.page_count() <= peak * 3,
        "footprint bounded: peak {} vs final {}",
        peak,
        db.page_count()
    );
    assert_eq!(high_water, db.page_count().max(high_water));
}

//! End-to-end advisor behaviour beyond the paper's fixed experiment:
//! derived candidates, space bounds, trace persistence, schedules that
//! start from a non-empty current design, and k-selection.

mod common;

use cdpd::core::kselect;
use cdpd::core::{CostOracle, ProjectableOracle, SharedOracle};
use cdpd::engine::{IndexSpec, WhatIfEngine};
use cdpd::workload::{generate, paper, summarize, Trace};
use cdpd::{candidate_indexes, Advisor, AdvisorOptions, Algorithm, EngineOracle};
use common::{paper_database, paper_params, paper_structures};

const ROWS: i64 = 20_000;
const WINDOW: usize = 200;

#[test]
fn derived_candidates_reach_paper_quality() {
    // Without being told the paper's design space, the advisor must
    // discover candidates at least as good for W1 as the hand-picked
    // six (its derived pool includes them, so its optimum can only be
    // equal or better).
    let db = paper_database(ROWS, 21);
    let trace = generate(&paper::w1_with(&paper_params(ROWS, WINDOW)), 2);

    let derived = Advisor::new(&db, "t")
        .options(AdvisorOptions {
            k: Some(2),
            window_len: WINDOW,
            max_structures_per_config: Some(1),
            end_empty: true,
            algorithm: Algorithm::KAware,
            ..Default::default()
        })
        .recommend(&trace)
        .unwrap();

    let handpicked = Advisor::new(&db, "t")
        .options(AdvisorOptions {
            k: Some(2),
            window_len: WINDOW,
            structures: Some(paper_structures()),
            max_structures_per_config: Some(1),
            end_empty: true,
            algorithm: Algorithm::KAware,
            ..Default::default()
        })
        .recommend(&trace)
        .unwrap();

    assert!(
        derived.schedule.total_cost() <= handpicked.schedule.total_cost(),
        "derived {} vs handpicked {}",
        derived.schedule.total_cost(),
        handpicked.schedule.total_cost()
    );
    assert!(derived.schedule.changes <= 2);
}

#[test]
fn space_bound_is_enforced() {
    let db = paper_database(ROWS, 22);
    let trace = generate(&paper::w1_with(&paper_params(ROWS, WINDOW)), 3);
    let whatif = WhatIfEngine::snapshot(&db, "t").unwrap();
    // Bound below any two-column index: only single-column indexes fit.
    let two_col = whatif
        .index_size_pages(&IndexSpec::new("t", &["a", "b"]))
        .unwrap();
    let one_col = whatif
        .index_size_pages(&IndexSpec::new("t", &["a"]))
        .unwrap();
    assert!(one_col < two_col);
    let bound = (one_col + two_col) / 2;

    let rec = Advisor::new(&db, "t")
        .options(AdvisorOptions {
            k: Some(2),
            window_len: WINDOW,
            structures: Some(paper_structures()),
            max_structures_per_config: Some(1),
            space_bound_pages: Some(bound),
            end_empty: true,
            algorithm: Algorithm::KAware,
            ..Default::default()
        })
        .recommend(&trace)
        .unwrap();

    for stage in 0..rec.schedule.len() {
        for spec in rec.specs_at(stage) {
            assert!(
                spec.columns.len() == 1,
                "two-column index {spec} violates the bound"
            );
        }
    }
    // Phase 1 under the bound: I(a,b) is out, so I(a) or I(b) wins.
    let first = rec.specs_at(0);
    assert_eq!(first.len(), 1);
    assert!(["I(a)", "I(b)"].contains(&first[0].display_short().as_str()));
}

#[test]
fn starts_from_current_materialized_design() {
    let db = paper_database(ROWS, 23);
    // The DBA already has I(c) materialized.
    let existing = IndexSpec::new("t", &["c"]);
    db.create_index(&existing).unwrap();
    let trace = generate(&paper::w1_with(&paper_params(ROWS, WINDOW)), 4);
    let rec = Advisor::new(&db, "t")
        .options(AdvisorOptions {
            k: Some(2),
            window_len: WINDOW,
            structures: Some(paper_structures()),
            max_structures_per_config: Some(1),
            algorithm: Algorithm::KAware,
            ..Default::default()
        })
        .recommend(&trace)
        .unwrap();
    // The initial configuration is {I(c)}; the advisor still ends up in
    // a-phase indexes and respects the budget.
    assert!(!rec.problem.initial.is_empty());
    assert!(rec.schedule.changes <= 2);
}

#[test]
fn trace_roundtrip_preserves_recommendation() {
    let db = paper_database(5_000, 24);
    let trace = generate(&paper::w1_with(&paper_params(5_000, 50)), 5);
    let dir = std::env::temp_dir().join("cdpd_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("w1.sql");
    trace.save(&path).unwrap();
    let loaded = Trace::load(&path).unwrap();
    assert_eq!(trace, loaded);

    let opts = AdvisorOptions {
        k: Some(2),
        window_len: 50,
        structures: Some(paper_structures()),
        max_structures_per_config: Some(1),
        algorithm: Algorithm::KAware,
        ..Default::default()
    };
    let a = Advisor::new(&db, "t")
        .options(opts.clone())
        .recommend(&trace)
        .unwrap();
    let b = Advisor::new(&db, "t")
        .options(opts)
        .recommend(&loaded)
        .unwrap();
    assert_eq!(a.schedule, b.schedule);
    std::fs::remove_file(&path).ok();
}

#[test]
fn kselect_suggests_the_major_shift_count() {
    // §8's open question, answered by the cost-curve extension: for W1
    // (two major shifts) the knee of cost-vs-k lands at k = 2.
    let db = paper_database(ROWS, 25);
    let trace = generate(&paper::w1_with(&paper_params(ROWS, WINDOW)), 6);
    let workload = summarize(&trace, WINDOW).unwrap();
    let whatif = WhatIfEngine::snapshot(&db, "t").unwrap();
    let oracle = EngineOracle::new(whatif, paper_structures(), &workload)
        .unwrap()
        .into_shared();
    let problem = cdpd::core::Problem::paper_experiment();
    let candidates = cdpd::core::enumerate_configs(&oracle, None, Some(1)).unwrap();
    let curve = kselect::cost_curve(&oracle, &problem, &candidates, 8).unwrap();
    for w in curve.windows(2) {
        assert!(w[1].cost <= w[0].cost, "curve must be non-increasing");
    }
    let k = kselect::suggest_k_elbow(&curve).unwrap();
    assert_eq!(k, 2, "curve: {curve:?}");
}

#[test]
fn robust_k_picks_2_on_w1_with_w2_w3_holdouts() {
    // §6.3 turned into a selection rule: train on W1, hold out W2 and
    // W3 — the k that minimizes held-out cost is the major-shift count.
    let db = paper_database(ROWS, 28);
    let params = paper_params(ROWS, WINDOW);
    let mk_oracle = |trace: &Trace| {
        let workload = summarize(trace, WINDOW).unwrap();
        EngineOracle::new(
            WhatIfEngine::snapshot(&db, "t").unwrap(),
            paper_structures(),
            &workload,
        )
        .unwrap()
        .into_shared()
    };
    let train = mk_oracle(&generate(&paper::w1_with(&params), 51));
    let h2 = mk_oracle(&generate(&paper::w2_with(&params), 52));
    let h3 = mk_oracle(&generate(&paper::w3_with(&params), 53));
    let problem = cdpd::core::Problem::paper_experiment();
    let candidates = cdpd::core::enumerate_configs(&train, None, Some(1)).unwrap();
    let holdouts: Vec<&dyn SharedOracle> = vec![&h2, &h3];
    let curve = kselect::robust_curve(&train, &holdouts, &problem, &candidates, 8).unwrap();
    let k = kselect::suggest_robust_k(&curve).unwrap();
    assert_eq!(k, 2, "{curve:?}");
    // And overfitting (large k) is measurably worse on the holdouts.
    let at2 = curve.iter().find(|p| p.k == 2).unwrap();
    let at8 = curve.iter().find(|p| p.k == 8).unwrap();
    assert!(
        at8.train_cost <= at2.train_cost,
        "train always likes budget"
    );
    assert!(at8.mean_test_cost > at2.mean_test_cost, "holdouts do not");
}

#[test]
fn ddl_script_export_parses_and_matches_segments() {
    let db = paper_database(ROWS, 35);
    let trace = generate(&paper::w1_with(&paper_params(ROWS, WINDOW)), 8);
    let rec = Advisor::new(&db, "t")
        .options(AdvisorOptions {
            k: Some(2),
            window_len: WINDOW,
            structures: Some(paper_structures()),
            max_structures_per_config: Some(1),
            end_empty: true,
            algorithm: Algorithm::KAware,
            ..Default::default()
        })
        .recommend(&trace)
        .unwrap();
    let script = rec.to_ddl_script();
    // Every non-comment statement parses.
    let clean: String = script
        .lines()
        .filter(|l| !l.trim_start().starts_with("--"))
        .collect::<Vec<_>>()
        .join("\n");
    let stmts = cdpd::sql::parse_many(&clean).unwrap();
    // k = 2 with initial+final empty: 1 create + (drop+create) ×2 + final drop.
    assert_eq!(stmts.len(), 6, "{script}");
    assert!(script.contains("before window 0"), "{script}");
    assert!(script.contains("before window 10"), "{script}");
    assert!(script.contains("before window 20"), "{script}");
    assert!(script.contains("after the workload"), "{script}");
    assert!(
        script.contains("CREATE INDEX ix_t_a_b ON t (a, b);"),
        "{script}"
    );
    assert!(
        script.contains("CREATE INDEX ix_t_c_d ON t (c, d);"),
        "{script}"
    );
}

#[test]
fn per_statement_granularity_matches_agrawal_mode() {
    // window_len = 1 is Agrawal et al.'s original formulation: one
    // stage per statement. Finer granularity can only lower the
    // unconstrained optimum (every windowed schedule is expressible
    // per-statement).
    let db = paper_database(8_000, 30);
    let params = paper_params(8_000, 20);
    let spec = paper::w1_with(&paper::PaperParams {
        window_len: 10,
        ..params
    });
    let trace = generate(&spec, 61); // 300 statements
    let opts = |window| AdvisorOptions {
        k: None,
        window_len: window,
        structures: Some(paper_structures()),
        max_structures_per_config: Some(1),
        end_empty: true,
        algorithm: Algorithm::KAware,
        ..Default::default()
    };
    let fine = Advisor::new(&db, "t")
        .options(opts(1))
        .recommend(&trace)
        .unwrap();
    let coarse = Advisor::new(&db, "t")
        .options(opts(30))
        .recommend(&trace)
        .unwrap();
    assert_eq!(fine.schedule.len(), 300);
    assert_eq!(coarse.schedule.len(), 10);
    assert!(
        fine.schedule.total_cost() <= coarse.schedule.total_cost(),
        "fine {} vs coarse {}",
        fine.schedule.total_cost(),
        coarse.schedule.total_cost()
    );
    // Render path works at both granularities.
    let table = fine.render_with(&db, &trace).unwrap();
    assert!(table.contains("total"), "{table}");
}

#[test]
fn one_call_robust_k_api() {
    let db = paper_database(ROWS, 29);
    let spec = paper::w1_with(&paper_params(ROWS, WINDOW));
    let advice = cdpd::suggest_k_robust(
        &db,
        &spec,
        &cdpd::KAdviceOptions {
            structures: Some(paper_structures()),
            k_max: 6,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(advice.k, 2, "{:?}", advice.curve);
    assert_eq!(advice.curve.len(), 7);
    // Degenerate option sets are rejected.
    assert!(cdpd::suggest_k_robust(
        &db,
        &spec,
        &cdpd::KAdviceOptions {
            resampled_holdouts: 0,
            rotations: vec![],
            ..Default::default()
        },
    )
    .is_err());
}

#[test]
fn candidate_generation_is_schema_checked() {
    let db = paper_database(2_000, 26);
    let trace = Trace::from_selects("t", vec![cdpd::sql::SelectStmt::point("t", "a", 1)]);
    let workload = summarize(&trace, 10).unwrap();
    let (cands, dropped) = candidate_indexes(&db.schema("t").unwrap(), &workload).unwrap();
    assert!(cands.iter().all(|c| c.table == "t"));
    assert_eq!(dropped, 0);
    // Advisor rejects traces for other tables.
    let other = Trace::from_selects("u", vec![cdpd::sql::SelectStmt::point("u", "a", 1)]);
    assert!(Advisor::new(&db, "t").recommend(&other).is_err());
}

#[test]
fn projection_bounds_whatif_calls() {
    let db = paper_database(5_000, 27);
    let trace = generate(&paper::w1_with(&paper_params(5_000, 100)), 7);
    let workload = summarize(&trace, 100).unwrap();
    let whatif = WhatIfEngine::snapshot(&db, "t").unwrap();
    let oracle = EngineOracle::new(whatif, paper_structures(), &workload)
        .unwrap()
        .into_shared();
    let problem = cdpd::core::Problem::paper_experiment();
    let candidates = cdpd::core::enumerate_configs(&oracle, None, Some(1)).unwrap();
    let _ = cdpd::core::kaware::solve(&oracle, &problem, &candidates, 2).unwrap();
    let stats = oracle.stats_snapshot();
    assert!(stats.whatif_calls > 0, "solver never reached the engine");
    // Part-level memoization: distinct part evaluations are bounded by
    // Σ_stage parts(stage) × candidate configs (each part sees at most
    // one entry per distinct projected candidate).
    let max: u64 = (0..oracle.n_stages())
        .map(|s| (oracle.inner().n_parts(s) * candidates.len()) as u64)
        .sum();
    assert!(
        stats.raw_exec_evals <= max,
        "{} raw part evals > Σ parts×configs = {max}",
        stats.raw_exec_evals
    );
    // Solving again at another k hits only the cache: zero new raw
    // evaluations, zero new what-if calls, strictly more hits.
    let _ = cdpd::core::kaware::solve(&oracle, &problem, &candidates, 4).unwrap();
    let again = oracle.stats_snapshot();
    assert_eq!(again.raw_exec_evals, stats.raw_exec_evals);
    assert_eq!(again.whatif_calls, stats.whatif_calls);
    assert!(again.projected_hits > stats.projected_hits);
}

//! Wide-vocabulary smoke gate: a 128-candidate instance must flow
//! through the whole advisory surface — batch [`Advisor::recommend`]
//! and an [`OnlineAdvisor`] window seal — now that configurations are
//! width-agnostic and the pipeline decomposes CoPhy-style instead of
//! refusing anything past 64 structures.

mod common;

use cdpd::engine::IndexSpec;
use cdpd::sql::{Dml, SelectStmt};
use cdpd::workload::Trace;
use cdpd::{Advisor, AdvisorOptions, OnlineAdvisor, OnlineOptions};

const ROWS: i64 = 4_000;
const COLS: usize = 8;
const WINDOW: usize = 40;

/// ≥128 candidate structures over the 8-column table: all singles and
/// ordered pairs (64), plus three-column specs until the pool passes
/// 128. The workload below touches only c0/c1, so the relevant set
/// stays narrow while the vocabulary is double the old cap.
fn pool() -> Vec<IndexSpec> {
    let col = |i: usize| format!("c{i}");
    let mut out = Vec::new();
    for a in 0..COLS {
        out.push(IndexSpec::new("w", &[col(a).as_str()]));
    }
    for a in 0..COLS {
        for b in 0..COLS {
            if a != b {
                out.push(IndexSpec::new("w", &[col(a).as_str(), col(b).as_str()]));
            }
        }
    }
    'triples: for a in 2..COLS {
        for b in 0..COLS {
            for c in 0..COLS {
                if a == b || b == c || a == c {
                    continue;
                }
                out.push(IndexSpec::new(
                    "w",
                    &[col(a).as_str(), col(b).as_str(), col(c).as_str()],
                ));
                if out.len() >= 128 {
                    break 'triples;
                }
            }
        }
    }
    out
}

fn q(col: &str, v: i64) -> Dml {
    SelectStmt::point("w", col, v).into()
}

fn options() -> AdvisorOptions {
    AdvisorOptions {
        k: Some(2),
        window_len: WINDOW,
        structures: Some(pool()),
        max_structures_per_config: Some(1),
        ..Default::default()
    }
}

#[test]
fn batch_advisor_recommends_over_128_candidates() {
    let db = common::wide_database(ROWS, COLS, 7);
    let domain = ROWS / 5;
    let stmts: Vec<Dml> = (0..2 * WINDOW as i64)
        .map(|i| {
            let col = if i < WINDOW as i64 { "c0" } else { "c1" };
            q(col, i % domain)
        })
        .collect();
    let rec = Advisor::new(&db, "w")
        .options(options())
        .recommend(&Trace::new("w", stmts))
        .expect("128-candidate instance must solve");
    assert!(rec.structures.len() >= 128, "full vocabulary retained");
    assert_eq!(rec.schedule.configs.len(), 2);
    // The recommendation tracks the workload through the wide pool.
    let first = rec.specs_at(0);
    assert!(
        first.iter().any(|s| s.columns[0] == "c0"),
        "window 0 is c0-heavy: {first:?}"
    );
    // With k = 2 and `max_structures_per_config: Some(1)` every stage
    // carries at most one index, drawn from the wide pool.
    for stage in 0..rec.schedule.configs.len() {
        assert!(rec.specs_at(stage).len() <= 1);
    }
}

#[test]
fn online_window_seals_over_128_candidates() {
    let db = common::wide_database(ROWS, COLS, 7);
    let domain = ROWS / 5;
    let mut adv = OnlineAdvisor::new(
        &db,
        "w",
        OnlineOptions {
            advisor: options(),
            ..Default::default()
        },
    )
    .expect("128-candidate session must open");
    assert!(adv.structures().len() >= 128);
    let mut decisions = Vec::new();
    for i in 0..WINDOW as i64 {
        if let Some(d) = adv.ingest(&db, &q("c0", i % domain)).unwrap() {
            decisions.push(d);
        }
    }
    assert_eq!(decisions.len(), 1, "one sealed window, one decision");
    let d = &decisions[0];
    assert!(d.resolved, "first window always re-solves");
    assert!(
        d.specs.iter().any(|s| s.columns[0] == "c0"),
        "the committed design must serve the c0 workload: {:?}",
        d.specs
    );
}

//! The serializability gate for the epoch-versioned catalog: racing
//! sessions — every public mutator takes `&self` — must behave like
//! *some* serial execution, and the I/O ledger must reconcile exactly
//! no matter how statements interleave.
//!
//! Three configurations, in increasing contention order:
//!
//! 1. **Disjoint tables** ([`retarget`]): N sessions drive N identical
//!    tables with the same statement mix. Here concurrency must be
//!    invisible — every per-statement [`QueryResult`] (count, rows,
//!    aggregate, measured I/O, estimated cost, plan), every session's
//!    `ThreadIoScope` delta, and the pager's total ledger delta are
//!    **bit-identical** to the serial run.
//! 2. **Shared table, commuting writes**: N sessions insert disjoint
//!    row sets into one table while a DDL session builds and drops
//!    indexes online against pinned snapshots. Inserts commute, so the
//!    final logical state (sorted rows, index set, per-value counts)
//!    must equal the serial replay's — and summed per-thread scopes
//!    must still equal the global pager delta exactly.
//! 3. **DML racing one online build**: writers update/delete/insert
//!    against the build's pinned snapshot; the delta catch-up must
//!    leave the installed tree answering exactly like an index built
//!    from the quiesced heap.
//!
//! Seeds honour `CDPD_SEED` and session counts `CDPD_THREADS`, so the
//! CI stress gate can sweep 8 seeds × {1, 2, 8} sessions.

mod common;

use cdpd::engine::{Database, IndexSpec, QueryResult};
use cdpd::sql::SelectStmt;
use cdpd::storage::{IoStats, ThreadIoScope};
use cdpd::types::{ColumnDef, Schema, Value};
use cdpd::workload::{generate, retarget, QueryMix, Template, Trace, WorkloadSpec};
use cdpd_testkit::Prng;
use common::ROWS_PER_VALUE;
use std::sync::atomic::{AtomicBool, Ordering};

const ROWS: i64 = 2_000;
const DOMAIN: i64 = ROWS / ROWS_PER_VALUE;
const WINDOW: usize = 40;

/// Seeds for the cross: `CDPD_SEED` (set by the CI stress gate)
/// narrows the run to one seed; the default covers three.
fn seeds() -> Vec<u64> {
    match std::env::var("CDPD_SEED") {
        Ok(s) => vec![s.parse().expect("CDPD_SEED must be an integer")],
        Err(_) => vec![7, 41, 1234],
    }
}

/// Session counts to cross: honours `CDPD_THREADS` when the stress
/// gate pins one, else {1, 2, 8}.
fn session_counts() -> Vec<usize> {
    match std::env::var("CDPD_THREADS") {
        Ok(s) => vec![s.parse().expect("CDPD_THREADS must be an integer")],
        Err(_) => vec![1, 2, 8],
    }
}

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::int("a"),
        ColumnDef::int("b"),
        ColumnDef::int("c"),
        ColumnDef::int("d"),
    ])
}

fn table_name(session: usize) -> String {
    format!("s{session}")
}

/// One database holding `tables` *identically loaded* copies of the
/// paper table (same seed → same rows), each analyzed.
fn disjoint_db(seed: u64, tables: usize) -> Database {
    let db = Database::new();
    for s in 0..tables {
        let name = table_name(s);
        db.create_table(&name, schema()).expect("fresh table");
        let mut rng = Prng::seed_from_u64(seed);
        for _ in 0..ROWS {
            let row: Vec<Value> = (0..4)
                .map(|_| Value::Int(rng.gen_range(0..DOMAIN)))
                .collect();
            db.insert(&name, &row).expect("row matches schema");
        }
        db.analyze(&name).expect("table exists");
    }
    db
}

/// A four-window trace with real writes (point reads around an update
/// phase), targeted at table "t"; callers [`retarget`] it per session.
fn mixed_trace(seed: u64) -> Trace {
    let reads = QueryMix::new("reads", &[("a", 50), ("b", 30), ("c", 20)]).expect("weights");
    let etl = QueryMix::with_templates(
        "etl",
        vec![
            (
                Template::Update {
                    set_column: "b".into(),
                    where_column: "a".into(),
                },
                40,
            ),
            (Template::Point { column: "a".into() }, 40),
            (Template::Point { column: "b".into() }, 20),
        ],
    )
    .expect("weights");
    let windows = vec![reads.clone(), etl.clone(), etl, reads];
    let spec = WorkloadSpec::new("t", DOMAIN, WINDOW, windows).expect("valid spec");
    generate(&spec, seed)
}

#[track_caller]
fn assert_same_result(serial: &QueryResult, concurrent: &QueryResult, what: &str) {
    assert_eq!(serial.count, concurrent.count, "{what}: count");
    assert_eq!(serial.rows, concurrent.rows, "{what}: rows");
    assert_eq!(serial.aggregate, concurrent.aggregate, "{what}: aggregate");
    assert_eq!(serial.io, concurrent.io, "{what}: io");
    assert_eq!(serial.est_cost, concurrent.est_cost, "{what}: est_cost");
    assert_eq!(serial.plan, concurrent.plan, "{what}: plan");
}

fn sum_io(deltas: &[IoStats]) -> IoStats {
    let mut total = IoStats::default();
    for d in deltas {
        total.reads += d.reads;
        total.writes += d.writes;
        total.allocs += d.allocs;
    }
    total
}

/// Execute each session's trace — concurrently on scoped threads or
/// serially in session order — returning per-session result logs and
/// per-session `ThreadIoScope` deltas.
fn run_one(db: &Database, trace: &Trace) -> (Vec<QueryResult>, IoStats) {
    let scope = ThreadIoScope::start();
    let results = trace
        .statements()
        .iter()
        .map(|stmt| db.execute_dml(stmt).expect("statement runs"))
        .collect();
    (results, scope.delta())
}

fn run_sessions(
    db: &Database,
    traces: &[Trace],
    concurrent: bool,
) -> (Vec<Vec<QueryResult>>, Vec<IoStats>) {
    let per_session: Vec<(Vec<QueryResult>, IoStats)> = if concurrent {
        std::thread::scope(|s| {
            let handles: Vec<_> = traces
                .iter()
                .map(|t| s.spawn(move || run_one(db, t)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("session thread"))
                .collect()
        })
    } else {
        traces.iter().map(|t| run_one(db, t)).collect()
    };
    per_session.into_iter().unzip()
}

/// Configuration 1: disjoint tables. Concurrent execution is
/// bit-identical to serial — per statement, per session, and in the
/// pager's total ledger.
#[test]
fn disjoint_sessions_are_bit_identical_to_serial() {
    for seed in seeds() {
        for sessions in session_counts() {
            let traces: Vec<Trace> = (0..sessions)
                .map(|s| retarget(&mixed_trace(seed), &table_name(s)))
                .collect();
            let prepare = || {
                let db = disjoint_db(seed, sessions);
                for s in 0..sessions {
                    let t = table_name(s);
                    db.apply_configuration(
                        &t,
                        &[IndexSpec::new(&t, &["a"]), IndexSpec::new(&t, &["a", "b"])],
                    )
                    .expect("indexes build");
                }
                db
            };
            let what = format!("seed {seed} sessions {sessions}");

            let serial_db = prepare();
            let before = serial_db.pager().stats();
            let (serial_results, serial_scopes) = run_sessions(&serial_db, &traces, false);
            let serial_ledger = serial_db.pager().stats().delta(before);

            let conc_db = prepare();
            let before = conc_db.pager().stats();
            let (conc_results, conc_scopes) = run_sessions(&conc_db, &traces, true);
            let conc_ledger = conc_db.pager().stats().delta(before);

            for (s, (sr, cr)) in serial_results.iter().zip(&conc_results).enumerate() {
                assert_eq!(sr.len(), cr.len(), "{what}: session {s} statement count");
                for (i, (a, b)) in sr.iter().zip(cr).enumerate() {
                    assert_same_result(a, b, &format!("{what} session {s} stmt {i}"));
                }
            }
            // Each session's thread-local ledger is interleaving-
            // independent, and the per-statement sums it rolls up are
            // exactly what the sessions were told via `QueryResult.io`.
            assert_eq!(serial_scopes, conc_scopes, "{what}: per-session scopes");
            for (s, (scope, results)) in conc_scopes.iter().zip(&conc_results).enumerate() {
                let stated = sum_io(&results.iter().map(|r| r.io).collect::<Vec<_>>());
                assert_eq!(
                    *scope, stated,
                    "{what}: session {s} scope vs per-statement sums"
                );
            }
            // And the global ledger is exactly the sum of the session
            // ledgers — nothing double-counted, nothing lost.
            assert_eq!(
                sum_io(&conc_scopes),
                conc_ledger,
                "{what}: summed session scopes vs pager delta"
            );
            assert_eq!(serial_ledger, conc_ledger, "{what}: total ledger");
        }
    }
}

// --- Configuration 2: shared table, commuting writes + online DDL ----

const INSERTS_PER_SESSION: usize = 250;

/// Session `s`'s `i`-th insert: pseudorandom point columns plus a
/// globally unique tag in `d`, so the row sets are disjoint and the
/// full workload commutes.
fn insert_row(seed: u64, session: usize, i: usize) -> Vec<Value> {
    let mut rng =
        Prng::seed_from_u64(seed ^ (session as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64);
    vec![
        Value::Int(rng.gen_range(0..DOMAIN)),
        Value::Int(rng.gen_range(0..DOMAIN)),
        Value::Int(rng.gen_range(0..DOMAIN)),
        Value::Int((session * INSERTS_PER_SESSION + i) as i64 + DOMAIN),
    ]
}

/// The DDL session's script: online builds and drops that overlap the
/// insert storm, ending at `{I(a), I(a,b)}`.
fn ddl_script(db: &Database) {
    let a = IndexSpec::new("t", &["a"]);
    let cd = IndexSpec::new("t", &["c", "d"]);
    let ab = IndexSpec::new("t", &["a", "b"]);
    db.create_index(&a).expect("build I(a)");
    db.create_index(&cd).expect("build I(c,d)");
    db.drop_index(&cd).expect("drop I(c,d)");
    db.create_index(&ab).expect("build I(a,b)");
}

fn sorted_rows(db: &Database) -> Vec<Vec<Value>> {
    let cdpd::sql::Statement::Select(sel) =
        cdpd::sql::parse("SELECT * FROM t").expect("digest query parses")
    else {
        unreachable!()
    };
    let mut rows = db
        .query(&sel)
        .expect("digest query runs")
        .rows
        .unwrap_or_default();
    rows.sort();
    rows
}

/// Per-value counts on a column via point queries — which, with the
/// final index set installed, go through the online-built trees; wrong
/// or missing catch-up deltas surface as diverging counts.
fn point_counts(db: &Database, column: &str) -> Vec<u64> {
    (0..DOMAIN)
        .map(|v| {
            db.query_count(&SelectStmt::point("t", column, v))
                .expect("point query runs")
                .count
        })
        .collect()
}

/// Configuration 2: commuting inserts under racing online DDL
/// serialize — final logical state equals the serial replay's, and the
/// ledger reconciles exactly across every thread.
#[test]
fn commuting_inserts_with_racing_ddl_serialize() {
    for seed in seeds() {
        for sessions in session_counts() {
            let what = format!("seed {seed} sessions {sessions}");

            // Concurrent run: N insert sessions + 1 DDL session.
            let db = common::paper_database(ROWS, seed);
            let before = db.pager().stats();
            let scopes: Vec<IoStats> = std::thread::scope(|s| {
                let mut handles: Vec<_> = (0..sessions)
                    .map(|sid| {
                        let db = &db;
                        s.spawn(move || {
                            let scope = ThreadIoScope::start();
                            for i in 0..INSERTS_PER_SESSION {
                                db.insert("t", &insert_row(seed, sid, i)).expect("insert");
                                if i % 16 == 0 {
                                    // Interleaved reads: must always
                                    // see a consistent (locked) table.
                                    db.query_count(&SelectStmt::point("t", "a", i as i64 % DOMAIN))
                                        .expect("racing read runs");
                                }
                            }
                            scope.delta()
                        })
                    })
                    .collect();
                handles.push(s.spawn(|| {
                    let scope = ThreadIoScope::start();
                    ddl_script(&db);
                    scope.delta()
                }));
                handles
                    .into_iter()
                    .map(|h| h.join().expect("session thread"))
                    .collect()
            });
            let ledger = db.pager().stats().delta(before);
            assert_eq!(
                sum_io(&scopes),
                ledger,
                "{what}: summed per-thread scopes vs pager delta"
            );

            // Serial reference: same inserts session-major, then the
            // same DDL, on a fresh identically-seeded database.
            let serial = common::paper_database(ROWS, seed);
            for sid in 0..sessions {
                for i in 0..INSERTS_PER_SESSION {
                    serial
                        .insert("t", &insert_row(seed, sid, i))
                        .expect("insert");
                }
            }
            ddl_script(&serial);

            assert_eq!(
                db.index_specs("t").expect("table exists"),
                serial.index_specs("t").expect("table exists"),
                "{what}: final index set"
            );
            let rows = sorted_rows(&db);
            assert_eq!(rows, sorted_rows(&serial), "{what}: final row multiset");

            // Index integrity: point counts through the online-built
            // trees equal the serial build's AND the ground truth
            // recomputed from the materialized rows.
            for column in ["a", "b"] {
                let col = match column {
                    "a" => 0,
                    _ => 1,
                };
                let concurrent_counts = point_counts(&db, column);
                assert_eq!(
                    concurrent_counts,
                    point_counts(&serial, column),
                    "{what}: per-value counts on {column}"
                );
                let mut truth = vec![0u64; DOMAIN as usize];
                for row in &rows {
                    let Value::Int(v) = row[col] else {
                        panic!("int column")
                    };
                    truth[v as usize] += 1;
                }
                assert_eq!(
                    concurrent_counts, truth,
                    "{what}: counts on {column} vs materialized ground truth"
                );
            }
            // The point path actually exercises the installed tree.
            let probe = db
                .query_count(&SelectStmt::point("t", "a", 3))
                .expect("probe runs");
            assert!(
                probe.plan.contains("Index"),
                "{what}: point probe must use the online-built index, got {}",
                probe.plan
            );
        }
    }
}

// --- Configuration 3: DML racing one online build --------------------

/// Writers mutate `t` for the whole duration of two online index
/// builds; afterwards the installed trees (base scan + delta catch-up)
/// must answer exactly like trees rebuilt from the quiesced heap.
#[test]
fn online_build_catch_up_matches_quiesced_rebuild() {
    for seed in seeds() {
        let db = common::paper_database(ROWS, seed);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for w in 0..2u64 {
                let db = &db;
                let stop = &stop;
                s.spawn(move || {
                    let mut rng = Prng::seed_from_u64(seed ^ (0xDEADu64 << w));
                    while !stop.load(Ordering::Relaxed) {
                        let v = rng.gen_range(0..DOMAIN);
                        match rng.gen_range(0..4i64) {
                            0 => {
                                db.execute_sql(&format!(
                                    "UPDATE t SET c = {} WHERE a = {v}",
                                    rng.gen_range(0..DOMAIN)
                                ))
                                .expect("racing update");
                            }
                            1 => {
                                db.execute_sql(&format!("DELETE FROM t WHERE b = {v} AND d = {v}"))
                                    .expect("racing delete");
                            }
                            _ => {
                                let row: Vec<Value> = (0..4)
                                    .map(|_| Value::Int(rng.gen_range(0..DOMAIN)))
                                    .collect();
                                db.insert("t", &row).expect("racing insert");
                            }
                        }
                    }
                });
            }
            // Builds race the writers: their base scans read a pinned
            // snapshot, then catch up from the delta logs at install.
            db.create_index(&IndexSpec::new("t", &["a"]))
                .expect("online build I(a)");
            db.create_index(&IndexSpec::new("t", &["c", "d"]))
                .expect("online build I(c,d)");
            stop.store(true, Ordering::Relaxed);
        });

        // Quiesced: compare the online-built trees' answers against a
        // drop + rebuild from the now-static heap.
        let online_a = point_counts(&db, "a");
        let online_c = point_counts(&db, "c");
        let rows = sorted_rows(&db);
        db.drop_index(&IndexSpec::new("t", &["a"])).expect("drop");
        db.drop_index(&IndexSpec::new("t", &["c", "d"]))
            .expect("drop");
        db.create_index(&IndexSpec::new("t", &["a"]))
            .expect("quiesced rebuild");
        db.create_index(&IndexSpec::new("t", &["c", "d"]))
            .expect("quiesced rebuild");
        assert_eq!(
            online_a,
            point_counts(&db, "a"),
            "seed {seed}: online-built I(a) diverges from quiesced rebuild"
        );
        assert_eq!(
            online_c,
            point_counts(&db, "c"),
            "seed {seed}: online-built I(c,d) diverges from quiesced rebuild"
        );
        assert_eq!(
            rows,
            sorted_rows(&db),
            "seed {seed}: rebuild must not disturb the heap"
        );
        let total: u64 = online_a.iter().sum();
        assert_eq!(
            total,
            rows.len() as u64,
            "seed {seed}: per-value counts must cover every surviving row"
        );
    }
}

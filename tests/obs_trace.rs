//! Integration tests for the `cdpd-obs` tracing layer against the real
//! stack: the JSONL sink must emit parseable, monotonically-timestamped
//! records (validated with an in-tree mini JSON parser — the same
//! contract ci.sh checks with python3), and the pager counters a traced
//! advisor + replay run attributes to its spans must reconcile exactly
//! with the global [`IoStats`] registry totals.
//!
//! Tracing state is process-global, so every test serializes on one
//! mutex and scopes its assertions to records after its own start mark.

mod common;

use cdpd::replay::replay_recommendation;
use cdpd::storage::IoStats;
use cdpd::workload::{generate, paper};
use cdpd::{Advisor, AdvisorOptions};
use common::{paper_database, paper_params, paper_structures};
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Minimal JSON value for validating trace output without dependencies.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Recursive-descent parser for one complete JSON document.
fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("non-string key {other:?}")),
                };
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex = input_slice(b, *pos + 1, 4)?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                                s.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| "surrogate \\u escape".to_string())?,
                                );
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) if c < 0x20 => {
                        return Err(format!("raw control byte {c:#x} in string"))
                    }
                    Some(_) => {
                        // Copy one UTF-8 scalar (input is a valid &str).
                        let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                        let ch = rest.chars().next().expect("non-empty");
                        s.push(ch);
                        *pos += ch.len_utf8();
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(&c) if c == b'-' || c.is_ascii_digit() => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
        other => Err(format!("unexpected {other:?} at byte {}", *pos)),
    }
}

fn input_slice(b: &[u8], at: usize, len: usize) -> Result<&str, String> {
    b.get(at..at + len)
        .and_then(|s| std::str::from_utf8(s).ok())
        .ok_or_else(|| "truncated escape".to_string())
}

/// Golden test for the JSONL sink contract: every line is a complete
/// JSON object, `type` is `span` or `event`, `ts` is nondecreasing and
/// `seq` strictly increasing across the whole file, and span records
/// carry the full field set with consistent timing.
#[test]
fn jsonl_sink_emits_parseable_monotonic_records() {
    let _guard = TRACE_LOCK.lock().expect("trace lock");
    let path = std::env::temp_dir().join(format!("cdpd_obs_golden_{}.jsonl", std::process::id()));
    cdpd_obs::trace::drain();
    cdpd_obs::trace::set_file_sink(Some(&path)).expect("create trace file");
    cdpd_obs::trace::set_enabled(true);

    {
        let _outer = cdpd_obs::span!("golden.outer", k = 2, phase = "w1", frac = 0.25, ok = true);
        for i in 0..5u32 {
            let _inner = cdpd_obs::span!("golden.inner", i = i);
            cdpd_obs::tracked_counter!("test.obs.golden").add(3);
        }
        cdpd_obs::event!("golden \"event\" with escapes \\ and a number {}", 42);
    }

    cdpd_obs::trace::set_enabled(false);
    cdpd_obs::trace::set_file_sink(None).expect("remove sink");
    cdpd_obs::trace::drain();

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);

    let (mut spans, mut events) = (0u32, 0u32);
    let (mut last_ts, mut last_seq) = (0u64, None::<u64>);
    for (lineno, line) in text.lines().enumerate() {
        let v = parse_json(line).unwrap_or_else(|e| panic!("line {}: {e}\n{line}", lineno + 1));
        let ts = v.get("ts").and_then(Json::as_u64).expect("integer ts");
        assert!(ts >= last_ts, "ts went backwards at line {}", lineno + 1);
        last_ts = ts;
        let seq = v.get("seq").and_then(Json::as_u64).expect("integer seq");
        assert!(
            last_seq.is_none_or(|prev| seq > prev),
            "seq not strictly increasing at line {}",
            lineno + 1
        );
        last_seq = Some(seq);
        match v.get("type").and_then(Json::as_str) {
            Some("span") => {
                spans += 1;
                let name = v.get("name").and_then(Json::as_str).expect("name");
                let path = v.get("path").and_then(Json::as_str).expect("path");
                assert!(path.ends_with(name), "path {path:?} must end in {name:?}");
                let start = v.get("start_ns").and_then(Json::as_u64).expect("start_ns");
                let dur = v.get("dur_ns").and_then(Json::as_u64).expect("dur_ns");
                assert_eq!(start + dur, ts, "dur_ns must be ts - start_ns");
                v.get("thread").and_then(Json::as_u64).expect("thread");
                v.get("depth").and_then(Json::as_u64).expect("depth");
                assert!(matches!(v.get("attrs"), Some(Json::Obj(_))));
                assert!(matches!(v.get("counters"), Some(Json::Obj(_))));
                if name == "golden.inner" {
                    assert_eq!(
                        v.get("counters").and_then(|c| c.get("test.obs.golden")),
                        Some(&Json::Num(3.0)),
                        "each inner span owns exactly its own bumps"
                    );
                }
            }
            Some("event") => {
                events += 1;
                let msg = v.get("msg").and_then(Json::as_str).expect("msg");
                assert!(msg.contains("golden \"event\""), "escapes round-trip");
            }
            other => panic!("line {}: unknown record type {other:?}", lineno + 1),
        }
    }
    assert_eq!(spans, 6, "five inner spans plus the outer one");
    assert_eq!(events, 1);
    let outer_total: u64 = 15;
    assert_eq!(
        cdpd_obs::registry().counter_value("test.obs.golden") % outer_total,
        0,
        "tracked counter is a plain registry counter too"
    );
}

/// The acceptance-criteria reconciliation: run a real (small) table1-style
/// pipeline — build the paper table, recommend with the advisor, replay
/// the trace with online DDL — under tracing, and check that the pager
/// reads/writes/allocs attributed to per-thread root spans sum exactly
/// to the global [`IoStats`] registry delta over the same region.
#[test]
fn span_pager_counters_reconcile_with_global_io_stats() {
    let _guard = TRACE_LOCK.lock().expect("trace lock");
    cdpd_obs::trace::drain();
    cdpd_obs::trace::set_enabled(true);
    let io_before = IoStats::global();
    let t0 = cdpd_obs::trace::now_ns();

    {
        let _run = cdpd_obs::span!("obstest.run");
        let rows = 2_000;
        let db = paper_database(rows, 11);
        let trace = generate(&paper::w1_with(&paper_params(rows, 100)), 42);
        let rec = Advisor::new(&db, "t")
            .options(AdvisorOptions {
                k: Some(2),
                window_len: 100,
                structures: Some(paper_structures()),
                max_structures_per_config: Some(1),
                end_empty: true,
                ..Default::default()
            })
            .recommend(&trace)
            .expect("advisor");
        assert!(
            !rec.metrics.is_empty(),
            "recommendation carries a metrics delta"
        );
        assert!(
            rec.profile.as_deref().is_some_and(|p| p.contains("solve.")),
            "tracing was on, so the recommendation carries a profile"
        );
        replay_recommendation(&db, &trace, &rec).expect("replay");
    }

    cdpd_obs::trace::set_enabled(false);
    let io_delta = IoStats::global().delta(io_before);
    let records: Vec<cdpd_obs::SpanRecord> = cdpd_obs::trace::drain()
        .into_iter()
        .filter(|r| r.start_ns >= t0)
        .collect();
    assert!(io_delta.total() > 0, "the pipeline performed real I/O");

    // Every pager bump happens on some thread inside that thread's
    // outermost open span, so summing over per-thread roots (depth 0)
    // must reproduce the global registry delta exactly.
    for (name, want) in [
        ("storage.pager.reads", io_delta.reads),
        ("storage.pager.writes", io_delta.writes),
        ("storage.pager.allocs", io_delta.allocs),
    ] {
        let attributed: u64 = records
            .iter()
            .filter(|r| r.depth == 0)
            .map(|r| r.counter(name))
            .sum();
        assert_eq!(attributed, want, "span-attributed {name} != global delta");
    }

    let profile = cdpd_obs::aggregate(&records).render();
    assert!(
        profile.contains("advisor.recommend"),
        "profile lists the advisor span:\n{profile}"
    );
    assert!(
        profile.contains("replay.window"),
        "profile lists the replay windows:\n{profile}"
    );
}

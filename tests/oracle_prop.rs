//! Property tests for the oracle pipeline: the raw [`EngineOracle`]
//! (which evaluates *unprojected* configurations, part by part), the
//! sharded-memo [`cdpd::core::ProjectedOracle`], and the materialized
//! [`cdpd::core::DenseOracle`] must be bit-identical on EXEC, TRANS,
//! and SIZE — over random workloads mixing point, range, projection,
//! aggregate, UPDATE, and DELETE templates, and over random candidate
//! structure subsets.
//!
//! This is the differential argument for the whole layer: projection
//! (`exec(i, c) = exec(i, c ∩ mask)`) and part decomposition
//! (`exec = Σ_p exec_part`) are *claims about the planner*, and here
//! they are checked against the planner itself on every sampled case.

mod common;

use cdpd::core::{Config, CostOracle};
use cdpd::engine::{Database, IndexSpec, WhatIfEngine};
use cdpd::sql::Dml;
use cdpd::workload::{summarize, Trace};
use cdpd::EngineOracle;
use cdpd_testkit::prop::Config as PropConfig;
use cdpd_testkit::{props, Prng};
use common::paper_database;
use std::sync::OnceLock;

const ROWS: i64 = 6_000;
const STAGES: usize = 3;
const STMTS_PER_STAGE: usize = 6;

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| paper_database(ROWS, 77))
}

/// A design-space pool wider than the paper's six, so subsets exercise
/// multi-column prefixes and overlapping leading columns.
fn pool() -> Vec<IndexSpec> {
    vec![
        IndexSpec::new("t", &["a"]),
        IndexSpec::new("t", &["b"]),
        IndexSpec::new("t", &["c"]),
        IndexSpec::new("t", &["d"]),
        IndexSpec::new("t", &["a", "b"]),
        IndexSpec::new("t", &["c", "d"]),
        IndexSpec::new("t", &["b", "c"]),
    ]
}

fn random_stmt(rng: &mut Prng, domain: i64) -> Dml {
    let cols = ["a", "b", "c", "d"];
    let col = cols[rng.gen_range(0..4usize)];
    let col2 = cols[rng.gen_range(0..4usize)];
    let v = rng.gen_range(0..domain);
    let sql = match rng.gen_range(0..8u32) {
        0 | 1 => format!("SELECT * FROM t WHERE {col} = {v}"),
        2 => format!("SELECT {col2} FROM t WHERE {col} = {v}"),
        3 => format!(
            "SELECT * FROM t WHERE {col} BETWEEN {v} AND {}",
            v + domain / 20
        ),
        4 => format!("SELECT COUNT(*) FROM t WHERE {col} = {v}"),
        5 => format!("SELECT MIN({col}) FROM t"),
        6 => format!("UPDATE t SET {col2} = {v} WHERE {col} = {v}"),
        _ => format!("DELETE FROM t WHERE {col} = {v}"),
    };
    match cdpd::sql::parse(&sql).expect("template is valid SQL") {
        cdpd::sql::Statement::Select(s) => Dml::Select(s),
        cdpd::sql::Statement::Update(u) => Dml::Update(u),
        cdpd::sql::Statement::Delete(d) => Dml::Delete(d),
        _ => unreachable!("templates are DML"),
    }
}

props! {
    config: PropConfig::with_cases(8);

    fn oracle_layers_are_bit_identical(seed in 0u64..1_000_000, subset in 1u64..128) {
        let db = db();
        let mut rng = Prng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ subset);
        let structures: Vec<IndexSpec> = pool()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| subset & (1 << i) != 0)
            .map(|(_, s)| s)
            .collect();
        let m = structures.len();

        let stmts: Vec<Dml> = (0..STAGES * STMTS_PER_STAGE)
            .map(|_| random_stmt(&mut rng, ROWS / 5))
            .collect();
        let workload =
            summarize(&Trace::new("t", stmts), STMTS_PER_STAGE).expect("aligned windows");

        let mk = || {
            EngineOracle::new(
                WhatIfEngine::snapshot(db, "t").expect("analyzed"),
                structures.clone(),
                &workload,
            )
            .expect("valid oracle")
        };
        let raw = mk();
        let shared = mk().into_shared();
        let dense = mk().into_dense();

        // EXEC: full sweep of every configuration at every stage.
        for stage in 0..STAGES {
            for bits in 0..1u64 << m {
                let cfg = Config::from_bits(bits);
                let want = raw.exec(stage, cfg);
                assert_eq!(want, shared.exec(stage, cfg), "EXEC stage {stage} cfg {cfg:?}");
                assert_eq!(want, dense.exec(stage, cfg), "EXEC stage {stage} cfg {cfg:?}");
            }
        }
        // TRANS and SIZE: sampled configuration pairs.
        for _ in 0..24 {
            let x = Config::from_bits(rng.gen_range(0..1u64 << m));
            let y = Config::from_bits(rng.gen_range(0..1u64 << m));
            let t = raw.trans(x, y);
            assert_eq!(t, shared.trans(x, y), "TRANS {x:?} -> {y:?}");
            assert_eq!(t, dense.trans(x, y), "TRANS {x:?} -> {y:?}");
            let s = raw.size(x);
            assert_eq!(s, shared.size(x), "SIZE {x:?}");
            assert_eq!(s, dense.size(x), "SIZE {x:?}");
        }
    }
}

//! Property tests for the oracle pipeline: the raw [`EngineOracle`]
//! (which evaluates *unprojected* configurations, part by part), the
//! sharded-memo [`cdpd::core::ProjectedOracle`], and the materialized
//! [`cdpd::core::DenseOracle`] must be bit-identical on EXEC, TRANS,
//! and SIZE — over random workloads mixing point, range, projection,
//! aggregate, UPDATE, and DELETE templates, and over random candidate
//! structure subsets.
//!
//! This is the differential argument for the whole layer: projection
//! (`exec(i, c) = exec(i, c ∩ mask)`) and part decomposition
//! (`exec = Σ_p exec_part`) are *claims about the planner*, and here
//! they are checked against the planner itself on every sampled case.

mod common;

use cdpd::core::{decompose, kaware, Config, CostOracle, Decomposition, Problem};
use cdpd::engine::{Database, IndexSpec, WhatIfEngine};
use cdpd::sql::Dml;
use cdpd::workload::{summarize, Trace};
use cdpd::EngineOracle;
use cdpd_testkit::prop::Config as PropConfig;
use cdpd_testkit::{props, Prng};
use common::paper_database;
use std::sync::OnceLock;

const ROWS: i64 = 6_000;
const STAGES: usize = 3;
const STMTS_PER_STAGE: usize = 6;

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| paper_database(ROWS, 77))
}

/// A design-space pool wider than the paper's six, so subsets exercise
/// multi-column prefixes and overlapping leading columns.
fn pool() -> Vec<IndexSpec> {
    vec![
        IndexSpec::new("t", &["a"]),
        IndexSpec::new("t", &["b"]),
        IndexSpec::new("t", &["c"]),
        IndexSpec::new("t", &["d"]),
        IndexSpec::new("t", &["a", "b"]),
        IndexSpec::new("t", &["c", "d"]),
        IndexSpec::new("t", &["b", "c"]),
    ]
}

fn random_stmt(rng: &mut Prng, domain: i64) -> Dml {
    let cols = ["a", "b", "c", "d"];
    let col = cols[rng.gen_range(0..4usize)];
    let col2 = cols[rng.gen_range(0..4usize)];
    let v = rng.gen_range(0..domain);
    let sql = match rng.gen_range(0..8u32) {
        0 | 1 => format!("SELECT * FROM t WHERE {col} = {v}"),
        2 => format!("SELECT {col2} FROM t WHERE {col} = {v}"),
        3 => format!(
            "SELECT * FROM t WHERE {col} BETWEEN {v} AND {}",
            v + domain / 20
        ),
        4 => format!("SELECT COUNT(*) FROM t WHERE {col} = {v}"),
        5 => format!("SELECT MIN({col}) FROM t"),
        6 => format!("UPDATE t SET {col2} = {v} WHERE {col} = {v}"),
        _ => format!("DELETE FROM t WHERE {col} = {v}"),
    };
    match cdpd::sql::parse(&sql).expect("template is valid SQL") {
        cdpd::sql::Statement::Select(s) => Dml::Select(s),
        cdpd::sql::Statement::Update(u) => Dml::Update(u),
        cdpd::sql::Statement::Delete(d) => Dml::Delete(d),
        _ => unreachable!("templates are DML"),
    }
}

const WIDE_ROWS: i64 = 3_000;
const WIDE_COLS: usize = 8;

fn wide_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| common::wide_database(WIDE_ROWS, WIDE_COLS, 31))
}

/// ≥128 candidate structures over the wide table: every single and
/// ordered pair, plus three-column specs *leading with c4..c7* — the
/// columns the wide workload never touches, so the relevant set stays
/// well under the old 64-structure encoding cap.
fn wide_pool() -> Vec<IndexSpec> {
    let col = |i: usize| format!("c{i}");
    let mut out = Vec::new();
    for a in 0..WIDE_COLS {
        out.push(IndexSpec::new("w", &[col(a).as_str()]));
    }
    for a in 0..WIDE_COLS {
        for b in 0..WIDE_COLS {
            if a != b {
                out.push(IndexSpec::new("w", &[col(a).as_str(), col(b).as_str()]));
            }
        }
    }
    'triples: for a in 4..WIDE_COLS {
        for b in 0..WIDE_COLS {
            for c in 0..WIDE_COLS {
                if a == b || b == c || a == c {
                    continue;
                }
                out.push(IndexSpec::new(
                    "w",
                    &[col(a).as_str(), col(b).as_str(), col(c).as_str()],
                ));
                if out.len() >= 140 {
                    break 'triples;
                }
            }
        }
    }
    out
}

props! {
    config: PropConfig::with_cases(8);

    fn oracle_layers_are_bit_identical(seed in 0u64..1_000_000, subset in 1u64..128) {
        let db = db();
        let mut rng = Prng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ subset);
        let structures: Vec<IndexSpec> = pool()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| subset & (1 << i) != 0)
            .map(|(_, s)| s)
            .collect();
        let m = structures.len();

        let stmts: Vec<Dml> = (0..STAGES * STMTS_PER_STAGE)
            .map(|_| random_stmt(&mut rng, ROWS / 5))
            .collect();
        let workload =
            summarize(&Trace::new("t", stmts), STMTS_PER_STAGE).expect("aligned windows");

        let mk = || {
            EngineOracle::new(
                WhatIfEngine::snapshot(db, "t").expect("analyzed"),
                structures.clone(),
                &workload,
            )
            .expect("valid oracle")
        };
        let raw = mk();
        let shared = mk().into_shared();
        let dense = mk().into_dense();

        // EXEC: full sweep of every configuration at every stage.
        for stage in 0..STAGES {
            for bits in 0..1u64 << m {
                let cfg = Config::from_bits(bits);
                let want = raw.exec(stage, &cfg);
                assert_eq!(want, shared.exec(stage, &cfg), "EXEC stage {stage} cfg {cfg:?}");
                assert_eq!(want, dense.exec(stage, &cfg), "EXEC stage {stage} cfg {cfg:?}");
            }
        }
        // TRANS and SIZE: sampled configuration pairs.
        for _ in 0..24 {
            let x = Config::from_bits(rng.gen_range(0..1u64 << m));
            let y = Config::from_bits(rng.gen_range(0..1u64 << m));
            let t = raw.trans(&x, &y);
            assert_eq!(t, shared.trans(&x, &y), "TRANS {x:?} -> {y:?}");
            assert_eq!(t, dense.trans(&x, &y), "TRANS {x:?} -> {y:?}");
            let s = raw.size(&x);
            assert_eq!(s, shared.size(&x), "SIZE {x:?}");
            assert_eq!(s, dense.size(&x), "SIZE {x:?}");
        }
    }

    /// The CoPhy decomposition claim, checked against the real engine:
    /// a ≥128-candidate instance whose statements only ever use a
    /// narrow (≤64) relevant subset solves bit-identically to the
    /// narrow reference instance built from just that subset — same
    /// costs, same configurations under the rename, same index specs.
    fn wide_vocabulary_solve_matches_projected_narrow_reference(
        seed in 0u64..1_000_000,
        k in 0usize..3,
    ) {
        let db = wide_db();
        let mut rng = Prng::seed_from_u64(seed.wrapping_mul(0xA24B_AED4_963E_E407) | 1);
        let structures = wide_pool();
        assert!(structures.len() >= 128, "pool is the point of this test");

        // SELECT-only statements over c0..c2: the relevant structures
        // are exactly those leading with a touched column.
        let domain = WIDE_ROWS / 5;
        let stmts: Vec<Dml> = (0..STAGES * STMTS_PER_STAGE)
            .map(|_| {
                let j = rng.gen_range(0..3u32);
                let v = rng.gen_range(0..domain);
                let sql = format!("SELECT * FROM w WHERE c{j} = {v}");
                match cdpd::sql::parse(&sql).expect("template is valid SQL") {
                    cdpd::sql::Statement::Select(s) => Dml::Select(s),
                    _ => unreachable!(),
                }
            })
            .collect();
        let workload =
            summarize(&Trace::new("w", stmts), STMTS_PER_STAGE).expect("aligned windows");
        let wide = EngineOracle::new(
            WhatIfEngine::snapshot(db, "w").expect("analyzed"),
            structures.clone(),
            &workload,
        )
        .expect("valid oracle")
        .into_shared();

        let problem = Problem::default();
        let decomp = Decomposition::from_oracle(&wide, &problem, &[]);
        assert!(decomp.n_local() <= 64, "relevant set must fit the old encoding");
        assert!(decomp.n_local() < structures.len(), "decomposition must bite");

        // Reference: the narrow instance over only the relevant
        // structures, in the same relative order — the instance the
        // pre-width-agnostic pipeline could already represent.
        let narrow_structures: Vec<IndexSpec> = decomp
            .members()
            .iter()
            .map(|&g| structures[g].clone())
            .collect();
        let narrow = EngineOracle::new(
            WhatIfEngine::snapshot(db, "w").expect("analyzed"),
            narrow_structures,
            &workload,
        )
        .expect("valid oracle")
        .into_shared();

        let local = decomp.local_oracle(&wide);
        let local_problem = decomp.localize_problem(&problem);
        let cands = decompose::candidate_configs(&local, &local_problem).expect("candidates");
        let narrow_cands = decompose::candidate_configs(&narrow, &problem).expect("candidates");
        assert_eq!(cands, narrow_cands, "candidate derivation must agree");

        let wide_local = kaware::solve(&local, &local_problem, &cands, *k).expect("solvable");
        let narrow_sched = kaware::solve(&narrow, &problem, &narrow_cands, *k).expect("solvable");
        assert_eq!(wide_local.total_cost(), narrow_sched.total_cost());
        assert_eq!(wide_local.configs, narrow_sched.configs, "bit-identical schedules");

        let wide_sched = decomp.globalize_schedule(wide_local);
        for (wc, nc) in wide_sched.configs.iter().zip(&narrow_sched.configs) {
            assert_eq!(
                wide.inner().specs_of(wc),
                narrow.inner().specs_of(nc),
                "renamed configurations must resolve to the same indexes"
            );
        }
    }
}

//! Definition 1 covers "queries *and updates*": these tests exercise
//! the advisor on workloads with writes, where indexes are no longer
//! free — every index pays per-row maintenance during update-heavy
//! phases, so a good dynamic design sheds hot-column indexes before an
//! ETL window and rebuilds them afterwards.

mod common;

use cdpd::engine::IndexSpec;
use cdpd::replay::replay_recommendation;
use cdpd::workload::{generate, QueryMix, Template, Trace, WorkloadSpec};
use cdpd::{Advisor, AdvisorOptions, Algorithm};
use common::{paper_database, ROWS_PER_VALUE};

const ROWS: i64 = 15_000;
const WINDOW: usize = 100;

/// Three phases: read b-heavy, ETL (updates writing b, predicated on
/// a), read b-heavy again.
fn etl_workload() -> Trace {
    let domain = ROWS / ROWS_PER_VALUE;
    let reads = QueryMix::new("reads", &[("b", 80), ("a", 20)]).expect("weights");
    let etl = QueryMix::with_templates(
        "etl",
        vec![
            (
                Template::Update {
                    set_column: "b".into(),
                    where_column: "a".into(),
                },
                85,
            ),
            (Template::Point { column: "a".into() }, 15),
        ],
    )
    .expect("weights");
    let mut windows = Vec::new();
    for _ in 0..6 {
        windows.push(reads.clone());
    }
    for _ in 0..6 {
        windows.push(etl.clone());
    }
    for _ in 0..6 {
        windows.push(reads.clone());
    }
    let spec = WorkloadSpec::new("t", domain, WINDOW, windows).expect("valid spec");
    generate(&spec, 77)
}

fn structures() -> Vec<IndexSpec> {
    vec![IndexSpec::new("t", &["a"]), IndexSpec::new("t", &["b"])]
}

fn options(k: Option<usize>) -> AdvisorOptions {
    AdvisorOptions {
        k,
        window_len: WINDOW,
        structures: Some(structures()),
        max_structures_per_config: Some(1),
        end_empty: true,
        algorithm: Algorithm::KAware,
        ..Default::default()
    }
}

#[test]
fn advisor_sheds_hot_index_during_etl() {
    let db = paper_database(ROWS, 31);
    let trace = etl_workload();
    assert!(trace.write_fraction() > 0.2, "workload has real writes");

    let rec = Advisor::new(&db, "t")
        .options(options(Some(2)))
        .recommend(&trace)
        .expect("advisor runs");

    let label = |w: usize| -> String {
        let specs = rec.specs_at(w);
        specs
            .first()
            .map(|s| s.display_short())
            .unwrap_or_else(|| "-".into())
    };

    // Read phases want I(b) (the queried column).
    assert_eq!(label(0), "I(b)", "{}", rec.describe());
    assert_eq!(label(17), "I(b)", "{}", rec.describe());
    // The ETL phase must NOT hold I(b): every update would pay double
    // maintenance on it. I(a) (locate column, never written) is ideal.
    for w in 6..12 {
        assert_ne!(label(w), "I(b)", "window {w}: {}", rec.describe());
    }
    assert_eq!(label(8), "I(a)", "{}", rec.describe());
    assert_eq!(rec.schedule.changes, 2);
}

#[test]
fn maintenance_makes_write_phase_config_matter_in_replay() {
    // Replay the ETL trace twice on identically loaded databases: once
    // under the advisor's schedule, once pinned to I(b) throughout.
    // Holding I(b) through the write phase must measurably lose.
    let trace = etl_workload();
    let rec = {
        let db = paper_database(ROWS, 32);
        Advisor::new(&db, "t")
            .options(options(Some(2)))
            .recommend(&trace)
            .expect("advisor runs")
    };

    let db_good = paper_database(ROWS, 33);
    let good = replay_recommendation(&db_good, &trace, &rec).expect("replay");

    let db_bad = paper_database(ROWS, 33);
    let stages = trace.len().div_ceil(WINDOW);
    let pinned: Vec<Vec<IndexSpec>> = vec![vec![IndexSpec::new("t", &["b"])]; stages];
    let bad = cdpd::replay::replay(&db_bad, &trace, WINDOW, &pinned, Some(&[])).expect("replay");

    assert!(
        good.total_io() < bad.total_io(),
        "advisor schedule {} I/Os must beat pinned I(b) {} I/Os",
        good.total_io(),
        bad.total_io()
    );
    // Same trace on identically seeded databases ⇒ same affected rows.
    assert_eq!(good.row_checksum, bad.row_checksum);
}

#[test]
fn write_trace_roundtrips_through_sql_text() {
    let trace = etl_workload();
    let dir = std::env::temp_dir().join("cdpd_write_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("etl.sql");
    trace.save(&path).unwrap();
    let loaded = Trace::load(&path).unwrap();
    assert_eq!(trace, loaded);
    assert!(loaded.write_fraction() > 0.2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn unconstrained_design_reacts_to_writes_too() {
    let db = paper_database(ROWS, 34);
    let trace = etl_workload();
    let rec = Advisor::new(&db, "t")
        .options(options(None))
        .recommend(&trace)
        .expect("advisor runs");
    // Even unconstrained, no window in the ETL phase should keep I(b).
    for w in 6..12 {
        let specs = rec.specs_at(w);
        assert!(
            !specs.iter().any(|s| s.display_short() == "I(b)"),
            "window {w}: {}",
            rec.describe()
        );
    }
}
